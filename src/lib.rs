//! Umbrella crate for the FOSS reproduction workspace.
//!
//! Re-exports the public surface of every member crate so examples,
//! integration tests and downstream users can depend on one crate:
//!
//! ```
//! use foss_repro::prelude::*;
//!
//! let wl = joblite::build(WorkloadSpec::tiny(1)).unwrap();
//! let plan = wl.optimizer.optimize(&wl.train[0]).unwrap();
//! assert!(plan.is_left_deep());
//! ```

pub use foss_baselines as baselines;
pub use foss_catalog as catalog;
pub use foss_common as common;
pub use foss_core as core;
pub use foss_executor as executor;
pub use foss_harness as harness;
pub use foss_nn as nn;
pub use foss_optimizer as optimizer;
pub use foss_query as query;
pub use foss_rl as rl;
pub use foss_service as service;
pub use foss_storage as storage;
pub use foss_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use foss_baselines::{
        BalsaLite, Bao, HybridQo, LearnedOptimizer, LogerLite, PostgresBaseline,
    };
    pub use foss_common::{
        FaultPlan, FaultPlanBuilder, FaultRule, FaultSite, FaultStats, FossError, QueryId, Result,
        TableId, FAULT_SITES,
    };
    pub use foss_core::{
        Foss, FossConfig, PlannerSnapshot, SnapshotCell, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
    };
    pub use foss_executor::{CachingExecutor, Database, Executor};
    pub use foss_harness::{evaluate_on, Experiment, FossAdapter};
    pub use foss_optimizer::{Icp, JoinMethod, PhysicalPlan, TraditionalOptimizer};
    pub use foss_query::{Predicate, Query, QueryBuilder};
    pub use foss_service::{
        BreakerConfig, BreakerState, CircuitBreaker, FallbackReason, MetricsSnapshot, PlanClient,
        PlanDecision, PlanDoctor, PlanOutcome, PlanReply, PlanRequest, PlanServer, Priority,
        QueryRequest, Rejection, ServiceConfig, WireError,
    };
    pub use foss_workloads::{
        dsblite, joblite, skewstress, stacklite, tpcdslite, Workload, WorkloadSpec, WORKLOAD_NAMES,
    };
}
