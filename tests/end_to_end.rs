//! Cross-crate integration tests: the full pipeline from workload
//! generation through expert planning, execution, FOSS training and
//! inference, plus semantic correctness guarantees.

use foss_repro::prelude::*;
use std::sync::Arc;

fn tiny_workload() -> Workload {
    tpcdslite::build(WorkloadSpec {
        seed: 9,
        scale: 0.05,
    })
    .unwrap()
}

#[test]
fn every_plan_variant_preserves_query_semantics() {
    // The single most important invariant of the whole system: no matter
    // how a plan is steered (hints, method restrictions, leading prefixes),
    // its result cardinality must equal the expert plan's.
    let wl = tiny_workload();
    let exec = CachingExecutor::new(wl.db.clone(), *wl.optimizer.cost_model());
    for q in wl.train.iter().take(6) {
        let expert = wl.optimizer.optimize(q).unwrap();
        let truth = exec.execute(q, &expert, None).unwrap().rows;
        // Hint round trip.
        let icp = expert.extract_icp().unwrap();
        let hinted = wl.optimizer.optimize_with_hint(q, &icp).unwrap();
        assert_eq!(exec.execute(q, &hinted, None).unwrap().rows, truth);
        // Every single-method restriction.
        for m in foss_repro::optimizer::ALL_JOIN_METHODS {
            let plan = wl.optimizer.optimize_with_methods(q, &[m]).unwrap();
            assert_eq!(
                exec.execute(q, &plan, None).unwrap().rows,
                truth,
                "method {m}"
            );
        }
        // A leading-prefix hint.
        let lead = vec![icp.order[icp.order.len() - 1]];
        let plan = wl.optimizer.optimize_with_leading(q, &lead).unwrap();
        assert_eq!(exec.execute(q, &plan, None).unwrap().rows, truth);
    }
}

#[test]
fn foss_end_to_end_on_real_workload() {
    let wl = tiny_workload();
    let executor = Arc::new(CachingExecutor::new(
        wl.db.clone(),
        *wl.optimizer.cost_model(),
    ));
    let cfg = FossConfig {
        episodes_per_update: 10,
        ..FossConfig::tiny()
    };
    let mut foss = Foss::new(
        wl.optimizer.clone(),
        executor.clone(),
        wl.max_relations,
        wl.table_rows(),
        cfg,
    );
    let train: Vec<Query> = wl.train.iter().take(6).cloned().collect();
    let reports = foss.train(&train, 1).unwrap();
    assert_eq!(reports.len(), 2, "bootstrap + 1 iteration");
    assert!(reports[1].buffer_plans >= reports[0].buffer_plans);

    // Inference on unseen queries must produce semantically correct plans.
    for q in wl.test.iter().take(3) {
        let plan = foss.optimize(q).unwrap();
        let expert = wl.optimizer.optimize(q).unwrap();
        let a = executor.execute(q, &plan, None).unwrap();
        let b = executor.execute(q, &expert, None).unwrap();
        assert_eq!(a.rows, b.rows, "FOSS changed query semantics on {}", q.id);
    }
}

#[test]
fn foss_never_catastrophically_regresses_with_selector() {
    // The plan-doctor guarantee the paper highlights: because the original
    // plan is always among the candidates, FOSS's selected plan can only be
    // much worse than the expert when the AAM actively mispredicts; with a
    // bootstrap-trained AAM, total latency stays within a small factor.
    let wl = tiny_workload();
    let executor = Arc::new(CachingExecutor::new(
        wl.db.clone(),
        *wl.optimizer.cost_model(),
    ));
    let cfg = FossConfig {
        episodes_per_update: 12,
        ..FossConfig::tiny()
    };
    let mut foss = Foss::new(
        wl.optimizer.clone(),
        executor.clone(),
        wl.max_relations,
        wl.table_rows(),
        cfg,
    );
    let train: Vec<Query> = wl.train.iter().take(8).cloned().collect();
    foss.train(&train, 1).unwrap();
    let mut learned = 0.0;
    let mut expert = 0.0;
    for q in &train {
        let plan = foss.optimize(q).unwrap();
        let e = wl.optimizer.optimize(q).unwrap();
        learned += executor.execute(q, &plan, None).unwrap().latency;
        expert += executor.execute(q, &e, None).unwrap().latency;
    }
    assert!(
        learned < expert * 3.0,
        "FOSS total latency {learned:.0} vs expert {expert:.0}"
    );
}

#[test]
fn baselines_share_the_trait_and_plan_correctly() {
    let wl = tiny_workload();
    let exec = Arc::new(CachingExecutor::new(
        wl.db.clone(),
        *wl.optimizer.cost_model(),
    ));
    let encoder = foss_repro::core::encoding::PlanEncoder::new(wl.table_count(), wl.table_rows());
    let mut methods: Vec<Box<dyn LearnedOptimizer>> = vec![
        Box::new(PostgresBaseline::new(wl.optimizer.clone())),
        Box::new(Bao::new(
            wl.optimizer.clone(),
            exec.clone(),
            encoder.clone(),
            1,
        )),
        Box::new(BalsaLite::new(
            wl.optimizer.clone(),
            exec.clone(),
            encoder.clone(),
            2,
        )),
        Box::new(LogerLite::new(
            wl.optimizer.clone(),
            exec.clone(),
            encoder.clone(),
            3,
        )),
        Box::new(HybridQo::new(
            wl.optimizer.clone(),
            exec.clone(),
            encoder.clone(),
            4,
        )),
    ];
    let train: Vec<Query> = wl.train.iter().take(4).cloned().collect();
    for m in methods.iter_mut() {
        m.train_round(&train).unwrap();
        for q in &train {
            let plan = m.plan(q).unwrap();
            let expert = wl.optimizer.optimize(q).unwrap();
            let a = exec.execute(q, &plan, None).unwrap().rows;
            let b = exec.execute(q, &expert, None).unwrap().rows;
            assert_eq!(a, b, "{} broke semantics", m.name());
        }
    }
}

#[test]
fn joblite_expert_leaves_doctoring_headroom() {
    // The reproduction's premise: on the skewed JOB-lite data, *some*
    // expert plans can be improved by a one-step doctored ICP. Note the
    // honest scope (see EXPERIMENTS.md): our deterministic executor shares
    // the expert's cost constants and always pushes filters down, so the
    // expert sits much closer to optimal here than PostgreSQL does on real
    // IMDb — headroom exists but is far smaller than the paper's 6×.
    use foss_repro::core::actions::ActionSpace;
    let wl = joblite::build(WorkloadSpec {
        seed: 4,
        scale: 0.06,
    })
    .unwrap();
    let exec = CachingExecutor::new(wl.db.clone(), *wl.optimizer.cost_model());
    let mut improvable = 0;
    let mut checked = 0;
    for q in wl.train.iter().filter(|q| q.relation_count() >= 3).take(20) {
        let expert = wl.optimizer.optimize(q).unwrap();
        let orig = exec.execute(q, &expert, None).unwrap().latency;
        let icp = expert.extract_icp().unwrap();
        checked += 1;
        let space = ActionSpace::new(q.relation_count().max(2));
        let mask = space.mask(q, &icp, None);
        for (a, &allowed) in mask.iter().enumerate() {
            if !allowed {
                continue;
            }
            let mut cand = icp.clone();
            space.apply(space.decode(a), &mut cand).unwrap();
            let plan = wl.optimizer.optimize_with_hint(q, &cand).unwrap();
            if let Ok(o) = exec.execute(q, &plan, Some(orig * 2.0)) {
                if o.latency < orig * 0.9 {
                    improvable += 1;
                    break;
                }
            }
        }
    }
    assert!(
        improvable >= 1,
        "no query of {checked} has ≥10% one-step headroom — substrate lost its premise"
    );
}
