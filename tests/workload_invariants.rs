//! Workload invariants, property-tested over every registered workload.
//!
//! These are the contracts the rest of the system builds on:
//!
//! * **Determinism** — two builds from the same seed are bit-identical:
//!   same per-table row counts, same column contents, same query text.
//!   Training, snapshots and the differential executor tests all assume a
//!   workload is a pure function of its spec.
//! * **Splits** — train and test are non-empty and disjoint (a leaked test
//!   query would silently inflate every learned method's score).
//! * **Action-space sizing** — `max_relations` equals the widest query, so
//!   the trainer's `ActionSpace` is exactly large enough for every episode.
//! * **Executability** — every query plans and executes without error on
//!   the chunked engine (sampled by proptest, ≥32 cases per workload).

use foss_repro::executor::Executor;
use foss_repro::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One small instance of each registered workload, shared across proptest
/// cases so each case only pays for query execution.
fn workloads() -> &'static Vec<Workload> {
    static WL: OnceLock<Vec<Workload>> = OnceLock::new();
    WL.get_or_init(|| {
        WORKLOAD_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                Workload::by_name(
                    name,
                    WorkloadSpec {
                        seed: 21 + i as u64,
                        scale: 0.05,
                    },
                )
                .unwrap()
            })
            .collect()
    })
}

/// Everything observable about a build, flattened for equality comparison.
fn fingerprint(wl: &Workload) -> (Vec<u64>, Vec<i64>, Vec<String>) {
    let rows = wl.table_rows();
    let schema = wl.db.schema();
    let mut col_sums = Vec::new();
    for t in 0..schema.table_count() {
        let tid = foss_repro::common::TableId::new(t);
        let table = wl.db.table(tid);
        for c in 0..schema.table(tid).columns.len() {
            col_sums.push(table.column(c).values().iter().sum::<i64>());
        }
    }
    let texts = wl.all_queries().iter().map(|q| format!("{q:?}")).collect();
    (rows, col_sums, texts)
}

#[test]
fn builds_are_bit_identical_across_two_builds() {
    for name in WORKLOAD_NAMES {
        let spec = WorkloadSpec {
            seed: 77,
            scale: 0.08,
        };
        let a = Workload::by_name(name, spec).unwrap();
        let b = Workload::by_name(name, spec).unwrap();
        let (rows_a, cols_a, texts_a) = fingerprint(&a);
        let (rows_b, cols_b, texts_b) = fingerprint(&b);
        assert_eq!(rows_a, rows_b, "{name}: row counts differ across builds");
        assert_eq!(cols_a, cols_b, "{name}: column data differs across builds");
        assert_eq!(texts_a, texts_b, "{name}: query text differs across builds");
    }
}

#[test]
fn splits_are_disjoint_and_nonempty() {
    for wl in workloads() {
        assert!(!wl.train.is_empty(), "{}: empty train split", wl.name);
        assert!(!wl.test.is_empty(), "{}: empty test split", wl.name);
        for tq in &wl.test {
            assert!(
                !wl.train.contains(tq),
                "{}: test query {} leaked into the train split",
                wl.name,
                tq.id
            );
        }
    }
}

#[test]
fn max_relations_matches_widest_query() {
    for wl in workloads() {
        let widest = wl
            .all_queries()
            .iter()
            .map(|q| q.relation_count())
            .max()
            .unwrap();
        assert_eq!(
            wl.max_relations, widest,
            "{}: max_relations {} != widest query {}",
            wl.name, wl.max_relations, widest
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A sampled query from *each* workload plans with the expert and
    /// executes without error on the chunked engine — 32 cases × 5
    /// workloads ≥ 32 executions per workload.
    #[test]
    fn every_query_plans_and_executes_on_the_chunked_engine(
        q_pick in 0usize..10_000,
    ) {
        for wl in workloads() {
            let split = if q_pick % 2 == 0 { &wl.train } else { &wl.test };
            let query = &split[(q_pick / 2) % split.len()];
            let exec = Executor::new(&wl.db, *wl.optimizer.cost_model());
            let plan = wl.optimizer.optimize(query).unwrap();
            let out = exec.execute(query, &plan, None).unwrap();
            prop_assert!(
                out.latency > 0.0,
                "{}: query {} executed with non-positive latency",
                wl.name,
                query.id
            );
        }
    }
}
