//! Wire-path regression guards for the networked PlanDoctor: decisions
//! served over the socket must be identical (fingerprint, fallback flag,
//! fallback reason, error codes) to in-process `submit()`, and a
//! serving-only process booted from a saved [`PlannerSnapshot`] file must
//! plan bit-identically to the trainer that wrote it.

use std::sync::Arc;

use foss_repro::prelude::*;
use foss_repro::service::wire::reason_str;

/// A trained snapshot plus everything needed to serve it.
struct Trained {
    exp: Experiment,
    snapshot: PlannerSnapshot,
}

fn train_tiny(seed: u64) -> Trained {
    let exp = Experiment::new("tpcdslite", WorkloadSpec::tiny(seed)).unwrap();
    let cfg = FossConfig {
        episodes_per_update: 6,
        seed,
        ..FossConfig::tiny()
    };
    let mut adapter = FossAdapter::new(exp.foss(cfg));
    let train: Vec<_> = exp.workload.train.iter().take(4).cloned().collect();
    adapter.train_round(&train).unwrap();
    adapter.train_round(&train).unwrap();
    let snapshot = adapter.snapshot().as_ref().clone();
    Trained { exp, snapshot }
}

#[test]
fn socket_decisions_match_in_process_submit() {
    let t = train_tiny(7);
    // Two doctors built from the same snapshot: one behind the socket, one
    // driven directly. They share the executor, so both see the same data.
    let served = Arc::new(PlanDoctor::new(
        t.snapshot.clone(),
        t.exp.executor.clone(),
        ServiceConfig::default(),
    ));
    let direct = PlanDoctor::new(
        t.snapshot.clone(),
        t.exp.executor.clone(),
        ServiceConfig::default(),
    );
    let pool = t.exp.workload.all_queries();
    let server = PlanServer::start(served, pool.clone(), "127.0.0.1:0").unwrap();
    let client = server.client();

    for (idx, q) in pool.iter().enumerate().take(8) {
        let outcome = client.plan(&PlanRequest::for_index(idx)).unwrap();
        let reply = match outcome {
            PlanOutcome::Decision(reply) => reply,
            PlanOutcome::Rejected(r) => panic!("query {idx} rejected over the wire: {r:?}"),
        };
        let local = direct.submit(QueryRequest::new(q.clone())).unwrap();
        assert_eq!(
            reply.fingerprint,
            local.plan.fingerprint(),
            "query {idx}: socket-served plan diverged from in-process submit"
        );
        assert_eq!(reply.fallback, local.fallback, "query {idx}: fallback flag");
        assert_eq!(
            reply.reason,
            reason_str(local.reason),
            "query {idx}: fallback reason"
        );
        assert_eq!(reply.selected_step, local.selected_step);
    }

    // A zero planning budget forces the planning-timeout fallback on both
    // paths — and the wire reports the same stable reason string.
    let starved = client
        .plan(&PlanRequest {
            planning_budget_us: Some(0.0),
            ..PlanRequest::for_index(0)
        })
        .unwrap();
    let local = direct
        .submit(QueryRequest::new(pool[0].clone()).with_planning_budget_us(0.0))
        .unwrap();
    match starved {
        PlanOutcome::Decision(reply) => {
            assert!(reply.fallback);
            assert_eq!(reply.reason, "planning_timeout");
            assert_eq!(reply.reason, reason_str(local.reason));
            assert_eq!(reply.fingerprint, local.plan.fingerprint());
        }
        PlanOutcome::Rejected(r) => panic!("budget-starved request rejected: {r:?}"),
    }

    // Error surface: an out-of-pool index maps to the documented typed code,
    // exactly as `FossError::UnknownName` does in process.
    match client
        .plan(&PlanRequest::for_index(pool.len() + 3))
        .unwrap()
    {
        PlanOutcome::Rejected(r) => {
            assert_eq!(r.status, 404);
            assert_eq!(r.code, "unknown_name");
            assert!(!r.retryable);
        }
        PlanOutcome::Decision(_) => panic!("out-of-pool index must be rejected"),
    }

    server.shutdown();
}

#[test]
fn snapshot_survives_save_load_serve_round_trip() {
    let t = train_tiny(13);
    let path = std::env::temp_dir().join(format!("foss-wire-parity-{}.fsnp", std::process::id()));
    t.snapshot.save(&path).unwrap();

    // A serving-only process: no trainer, just the snapshot file and the
    // deterministically rebuilt expert optimizer for the same workload.
    let loaded = PlannerSnapshot::load(&path, t.exp.workload.optimizer.clone()).unwrap();
    std::fs::remove_file(&path).unwrap();

    let doctor = Arc::new(PlanDoctor::new(
        loaded,
        t.exp.executor.clone(),
        ServiceConfig::default(),
    ));
    let pool = t.exp.workload.all_queries();
    let server = PlanServer::start(doctor, pool.clone(), "127.0.0.1:0").unwrap();
    let client = server.client();

    for (idx, q) in pool.iter().enumerate().take(8) {
        let reply = match client.plan(&PlanRequest::for_index(idx)).unwrap() {
            PlanOutcome::Decision(reply) => reply,
            PlanOutcome::Rejected(r) => panic!("query {idx} rejected: {r:?}"),
        };
        // Bit-identical to what the trainer's in-memory snapshot plans.
        let trained = t.snapshot.optimize_detailed(q).unwrap();
        assert_eq!(
            reply.fingerprint,
            trained.plan.fingerprint(),
            "query {idx}: loaded-snapshot plan diverged from the trainer's"
        );
        assert_eq!(reply.generation, 0);
    }

    let health = client.healthz().unwrap();
    assert_eq!(
        health
            .get("queries")
            .and_then(foss_repro::service::Json::as_usize),
        Some(pool.len())
    );
    server.shutdown();
}
