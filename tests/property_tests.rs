//! Property-based tests over the core invariants, using proptest.

use foss_repro::core::actions::{order_is_connected, Action, ActionSpace};
use foss_repro::core::advantage::AdvantageScale;
use foss_repro::prelude::*;
use foss_repro::workloads::metrics::QueryOutcome;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;
use std::sync::OnceLock;

/// Workload shared across `extract_then_rehint_is_fixpoint` cases so the 64
/// generated cases don't each pay the workload-construction cost.
fn fixpoint_workload() -> &'static Workload {
    static WL: OnceLock<Workload> = OnceLock::new();
    WL.get_or_init(|| {
        tpcdslite::build(WorkloadSpec {
            seed: 3,
            scale: 0.04,
        })
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Action encode/decode is a bijection for any space size.
    #[test]
    fn action_space_bijection(max_n in 2usize..12) {
        let sp = ActionSpace::new(max_n);
        for a in 0..sp.len() {
            prop_assert_eq!(sp.encode(sp.decode(a)), a);
        }
        prop_assert_eq!(sp.len(), max_n * (max_n - 1) / 2 + 3 * (max_n - 1));
    }

    /// `min_steps_from` is symmetric, zero only at identity, and any single
    /// action moves the distance by at most one.
    #[test]
    fn min_steps_metric_properties(
        perm in prop::sample::subsequence((0..6usize).collect::<Vec<_>>(), 6),
        methods in prop::collection::vec(0usize..3, 5),
        action_idx in 0usize..33,
    ) {
        // `subsequence` of full length is the identity; build a permutation
        // by rotating it by the first method value instead.
        let mut order: Vec<usize> = perm;
        if order.len() != 6 { order = (0..6).collect(); }
        order.rotate_left(methods[0] % 6);
        let ms: Vec<JoinMethod> = methods
            .iter()
            .map(|&m| foss_repro::optimizer::ALL_JOIN_METHODS[m])
            .collect();
        let base = Icp::new((0..6).collect(), vec![JoinMethod::Hash; 5]).unwrap();
        let other = Icp::new(order, ms).unwrap();
        prop_assert_eq!(other.min_steps_from(&base), base.min_steps_from(&other));
        prop_assert_eq!(base.min_steps_from(&base), 0);
        if other != base {
            prop_assert!(other.min_steps_from(&base) >= 1);
        }
        // Applying one action changes the distance by at most 1.
        let sp = ActionSpace::new(6);
        let action = sp.decode(action_idx % sp.len());
        let mut moved = other.clone();
        if sp.apply(action, &mut moved).is_ok() {
            let before = other.min_steps_from(&base) as i64;
            let after = moved.min_steps_from(&base) as i64;
            prop_assert!((after - before).abs() <= 1, "action {:?} jumped {} → {}", action, before, after);
        }
    }

    /// Advantage discretisation is monotone in the latency ratio and the
    /// boundary semantics match Eq. 2.
    #[test]
    fn advantage_scale_monotone(lat_l in 1.0f64..1e6, ratio_a in 0.001f64..10.0, ratio_b in 0.001f64..10.0) {
        let scale = AdvantageScale::paper_default();
        let (fast, slow) = if ratio_a < ratio_b { (ratio_a, ratio_b) } else { (ratio_b, ratio_a) };
        let s_fast = scale.score_latencies(lat_l, lat_l * fast);
        let s_slow = scale.score_latencies(lat_l, lat_l * slow);
        prop_assert!(s_fast >= s_slow, "faster plan scored lower");
        prop_assert!(s_fast <= 2);
    }

    /// GMRL/WRL basic laws: scaling every learned latency by `k` scales
    /// GMRL by `k`; both equal 1 when learned == expert.
    #[test]
    fn metric_scaling_laws(lats in prop::collection::vec(1.0f64..1e5, 1..20), k in 0.1f64..10.0) {
        let base: Vec<QueryOutcome> = lats
            .iter()
            .map(|&l| QueryOutcome {
                learned_latency: l,
                expert_latency: l,
                learned_opt_time: 0.0,
                expert_opt_time: 0.0,
            })
            .collect();
        let gmrl = foss_repro::workloads::geometric_mean_relevant_latency(&base);
        prop_assert!((gmrl - 1.0).abs() < 1e-9);
        let scaled: Vec<QueryOutcome> = base
            .iter()
            .map(|o| QueryOutcome { learned_latency: o.learned_latency * k, ..*o })
            .collect();
        let g2 = foss_repro::workloads::geometric_mean_relevant_latency(&scaled);
        prop_assert!((g2 - k).abs() < k * 1e-6);
        let w2 = foss_repro::workloads::workload_relevant_latency(&scaled);
        prop_assert!((w2 - k).abs() < k * 1e-6);
    }

    /// `Icp::new` accepts exactly the well-formed (order, methods) pairs:
    /// non-empty order that is a permutation of `0..n` with `n - 1` methods.
    #[test]
    fn icp_new_rejects_malformed(
        order in prop::collection::vec(0usize..10, 0..8),
        method_ids in prop::collection::vec(0usize..3, 0..8),
    ) {
        let methods: Vec<JoinMethod> = method_ids
            .iter()
            .map(|&m| foss_repro::optimizer::ALL_JOIN_METHODS[m])
            .collect();
        let n = order.len();
        let mut seen = vec![false; n];
        let is_perm = !order.is_empty()
            && order.iter().all(|&r| {
                let fresh = r < n && !seen[r];
                if fresh {
                    seen[r] = true;
                }
                fresh
            });
        let well_formed = is_perm && methods.len() + 1 == n;
        let built = Icp::new(order.clone(), methods.clone());
        prop_assert_eq!(
            built.is_ok(),
            well_formed,
            "Icp::new({:?}, {} methods) validity mismatch",
            order,
            methods.len()
        );
        if let Ok(icp) = built {
            prop_assert_eq!(icp.order, order.clone());
            prop_assert_eq!(icp.methods, methods.clone());
        }
        // Random vectors are almost never well-formed, so also derive a
        // guaranteed-valid ICP from the same inputs: a permutation of
        // 0..k built by applying the drawn values as transpositions.
        let k = method_ids.len() + 1;
        let mut perm: Vec<usize> = (0..k).collect();
        for (i, &v) in order.iter().enumerate() {
            perm.swap(i % k, v % k);
        }
        let ok = Icp::new(perm.clone(), methods.clone());
        prop_assert!(ok.is_ok(), "well-formed ICP rejected: {:?}", perm);
        let icp = ok.unwrap();
        prop_assert_eq!(icp.order, perm);
        prop_assert_eq!(icp.methods, methods);
    }

    /// `extract_icp ∘ optimize_with_hint` is a fixpoint: steering the expert
    /// optimizer with any valid ICP yields a plan whose extracted ICP is that
    /// hint, and re-steering with the extracted ICP reproduces the same plan.
    #[test]
    fn extract_then_rehint_is_fixpoint(seed in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let wl = fixpoint_workload();
        let q = &wl.train[(seed as usize) % wl.train.len()];
        let mut rng = StdRng::seed_from_u64(seed);
        let order = foss_repro::baselines::random_connected_order(q, &mut rng);
        let n = order.len();
        let methods: Vec<JoinMethod> = (0..n.saturating_sub(1))
            .map(|i| foss_repro::optimizer::ALL_JOIN_METHODS[(seed as usize + i) % 3])
            .collect();
        let icp = Icp::new(order, methods).unwrap();
        let plan = wl.optimizer.optimize_with_hint(q, &icp).unwrap();
        let extracted = plan.extract_icp().unwrap();
        prop_assert_eq!(&extracted, &icp, "hint was not honoured verbatim");
        let replanned = wl.optimizer.optimize_with_hint(q, &extracted).unwrap();
        prop_assert_eq!(
            replanned.extract_icp().unwrap(),
            extracted,
            "re-steering drifted from the fixpoint"
        );
        prop_assert!(
            (replanned.est_cost() - plan.est_cost()).abs()
                <= f64::EPSILON * plan.est_cost().abs().max(1.0)
        );
        // The expert's own plan is also a fixpoint of the round-trip.
        let expert = wl.optimizer.optimize(q).unwrap();
        let expert_icp = expert.extract_icp().unwrap();
        let rehinted = wl.optimizer.optimize_with_hint(q, &expert_icp).unwrap();
        prop_assert_eq!(rehinted.extract_icp().unwrap(), expert_icp);
    }

    /// Histogram selectivities are proper probabilities and range
    /// selectivity is superset-monotone.
    #[test]
    fn histogram_selectivity_properties(
        values in prop::collection::vec(-1000i64..1000, 1..300),
        lo in -1000i64..1000,
        width in 0i64..500,
    ) {
        let stats = foss_repro::catalog::ColumnStats::analyze(&values, 16);
        let hi = lo + width;
        let sel = stats.selectivity_range(lo, hi);
        prop_assert!((0.0..=1.0).contains(&sel));
        let wider = stats.selectivity_range(lo - 10, hi + 10);
        prop_assert!(wider + 1e-9 >= sel, "widening a range reduced selectivity");
        let eq = stats.selectivity_eq(lo);
        prop_assert!((0.0..=1.0).contains(&eq));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every hinted permutation of a real query preserves the result count
    /// and survives ICP round-tripping.
    #[test]
    fn hinted_plans_preserve_semantics(seed in 0u64..500) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let wl = tpcdslite::build(WorkloadSpec { seed: 3, scale: 0.04 }).unwrap();
        let exec = CachingExecutor::new(wl.db.clone(), *wl.optimizer.cost_model());
        let q = &wl.train[(seed as usize) % wl.train.len()];
        let expert = wl.optimizer.optimize(q).unwrap();
        let truth = exec.execute(q, &expert, None).unwrap().rows;
        let mut rng = StdRng::seed_from_u64(seed);
        let order = foss_repro::baselines::random_connected_order(q, &mut rng);
        prop_assert!(order_is_connected(q, &order));
        let methods = vec![JoinMethod::Hash; order.len() - 1];
        let icp = Icp::new(order, methods).unwrap();
        let plan = wl.optimizer.optimize_with_hint(q, &icp).unwrap();
        prop_assert_eq!(plan.extract_icp().unwrap(), icp);
        let out = exec.execute(q, &plan, None).unwrap();
        prop_assert_eq!(out.rows, truth);
    }

    /// Batched AAM inference is a pure batching of single-pair inference:
    /// `predict_batch(pairs)` returns exactly the classes a `predict(l, r)`
    /// loop produces, for arbitrary (ragged, repeated, asymmetric) pair sets.
    /// This is the invariant that lets the selector and trainer batch freely.
    #[test]
    fn predict_batch_equals_predict_loop(plan_seeds in prop::collection::vec(0u64..1_000_000, 2..8), pair_picks in prop::collection::vec(0usize..64, 1..24)) {
        use foss_repro::core::aam::AdvantageModel;
        use foss_repro::core::config::FossConfig;
        use foss_repro::core::encoding::EncodedPlan;

        #[allow(clippy::needless_range_loop)] // symmetric reach[i][j]/reach[j][i] fill
        fn arbitrary_plan(seed: u64) -> EncodedPlan {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
            let l: usize = rng.random_range(1..=6);
            let mut reach = vec![vec![false; l]; l];
            for i in 0..l {
                for j in 0..=i {
                    let r = i == j || rng.random_range(0..3usize) == 0;
                    reach[i][j] = r;
                    reach[j][i] = r;
                }
            }
            EncodedPlan {
                ops: (0..l).map(|_| rng.random_range(0..6usize)).collect(),
                tables: (0..l).map(|_| rng.random_range(0..4usize)).collect(),
                sels: (0..l).map(|_| rng.random_range(0..11usize)).collect(),
                rows: (0..l).map(|_| rng.random_range(0..30usize)).collect(),
                heights: (0..l).map(|_| rng.random_range(0..32usize)).collect(),
                structures: (0..l).map(|_| rng.random_range(0..4usize)).collect(),
                reach,
                step: rng.random_range(0.0..1.0f64) as f32,
            }
        }

        static MODEL: OnceLock<AdvantageModel> = OnceLock::new();
        let aam = MODEL.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(77);
            AdvantageModel::new(4, &FossConfig::tiny(), &mut rng)
        });
        let plans: Vec<EncodedPlan> = plan_seeds.iter().map(|&s| arbitrary_plan(s)).collect();
        // Pair picks index into the cross product, so the set contains
        // repeats, self-pairs and both orientations.
        let n = plans.len();
        let pairs: Vec<(&EncodedPlan, &EncodedPlan)> = pair_picks
            .iter()
            .map(|&p| (&plans[p % n], &plans[(p / n) % n]))
            .collect();
        let batched = aam.predict_batch(&pairs);
        let looped: Vec<usize> = pairs.iter().map(|(l, r)| aam.predict(l, r)).collect();
        prop_assert_eq!(batched, looped);
    }

    /// The action mask only admits actions that keep the ICP valid and the
    /// join order connected.
    #[test]
    fn mask_admits_only_valid_actions(seed in 0u64..200) {
        let wl = tpcdslite::build(WorkloadSpec { seed: 3, scale: 0.04 }).unwrap();
        let q = &wl.train[(seed as usize) % wl.train.len()];
        if q.relation_count() < 2 { return Ok(()); }
        let expert = wl.optimizer.optimize(q).unwrap();
        let icp = expert.extract_icp().unwrap();
        let sp = ActionSpace::new(wl.max_relations);
        let mask = sp.mask(q, &icp, None);
        prop_assert!(mask.iter().any(|&m| m));
        for (a, &allowed) in mask.iter().enumerate() {
            if !allowed { continue; }
            let action = sp.decode(a);
            let mut cand = icp.clone();
            prop_assert!(sp.apply(action, &mut cand).is_ok(), "masked-in action failed: {:?}", action);
            prop_assert!(order_is_connected(q, &cand.order), "action {:?} disconnected the order", action);
            if let Action::Override { i, j } = action {
                prop_assert!(cand.methods[i - 1] == foss_repro::optimizer::ALL_JOIN_METHODS[j - 1]);
                prop_assert!(cand != icp, "same-method override not masked");
            }
        }
    }
}
