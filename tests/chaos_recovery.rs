//! Chaos harness: deterministic fault injection against the full
//! PlanDoctor service, asserting the robustness contracts of the serving
//! layer:
//!
//! * correlated learned-path failures open the circuit breaker within its
//!   configured window, and an open breaker stops paying learned-path
//!   cost;
//! * once a fault burst is spent, the service recovers through the
//!   half-open probe back to the [`FallbackReason::None`] steady state;
//! * under saturation, low-priority requests are shed before
//!   high-priority ones, and sheds are typed ([`FossError::Overloaded`]),
//!   not panics;
//! * a fault plan supplied through `FOSS_FAULTS` (the CI chaos step sets
//!   one) drives a survivable run with honest accounting.
//!
//! Every fault decision is a pure function of the plan's seed and the
//! per-site event index, so these tests replay bit-identically.

use foss_repro::prelude::*;
use std::sync::Arc;

struct Chaos {
    exp: Experiment,
    doctor: PlanDoctor,
}

/// A trained service over tpcds-lite with fault plans attached at the
/// service layer (`svc_faults`: stalls, exec faults, publish failures)
/// and/or the serving executor (`exec_faults`: cache errors, slowdowns).
/// The serving executor is separate from the training executor so training
/// never consumes injection budget from burst-capped rules.
fn chaos_service(
    cfg: ServiceConfig,
    svc_faults: Option<Arc<FaultPlan>>,
    exec_faults: Option<Arc<FaultPlan>>,
) -> Chaos {
    let spec = WorkloadSpec {
        seed: 42,
        scale: 0.05,
    };
    let exp = Experiment::new("tpcdslite", spec).unwrap();
    let mut adapter = FossAdapter::new(exp.foss(FossConfig {
        episodes_per_update: 6,
        seed: spec.seed,
        ..FossConfig::tiny()
    }));
    let train = &exp.workload.train;
    adapter.train_round(&train[..train.len().min(4)]).unwrap();
    let mut exec = CachingExecutor::new(
        exp.workload.db.clone(),
        *exp.workload.optimizer.cost_model(),
    );
    if let Some(f) = exec_faults {
        exec = exec.with_fault_plan(f);
    }
    let mut doctor = PlanDoctor::new(adapter.snapshot().as_ref().clone(), Arc::new(exec), cfg);
    if let Some(f) = svc_faults {
        doctor = doctor.with_fault_plan(f);
    }
    Chaos { exp, doctor }
}

/// A breaker small enough to open (and recover) within a handful of
/// submissions.
fn tight_breaker() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        min_samples: 4,
        failure_threshold: 0.5,
        cooldown: 2,
        probes: 1,
    }
}

#[test]
fn plan_stall_failures_open_the_breaker_within_the_window() {
    // Every learned planning pass stalls 10ms against a 2ms budget: a
    // deterministic PlanningTimeout per submission.
    let faults = Arc::new(
        FaultPlan::builder(5)
            .fault_param(FaultSite::PlanStall, 1.0, 10_000.0)
            .build(),
    );
    let cfg = ServiceConfig {
        planning_budget_us: Some(2_000.0),
        min_confidence: 0,
        breaker: tight_breaker(),
        ..ServiceConfig::default()
    };
    let c = chaos_service(cfg, Some(faults.clone()), None);
    let q = c.exp.workload.train[0].clone();
    for i in 0..4 {
        let d = c.doctor.submit(QueryRequest::new(q.clone())).unwrap();
        assert_eq!(
            d.reason,
            FallbackReason::PlanningTimeout,
            "stall {i} must bust the planning budget"
        );
    }
    let m = c.doctor.metrics();
    assert_eq!(
        m.breaker_state,
        BreakerState::Open,
        "min_samples consecutive failures must open the breaker"
    );
    assert_eq!(m.breaker_times_opened, 1);
    assert_eq!(m.planning_timeouts, 4);
    // While open, the learned path is skipped entirely: no stall fires
    // because no learned planning runs.
    let stalls_before = faults.stats().injected_at(FaultSite::PlanStall);
    let d = c.doctor.submit(QueryRequest::new(q)).unwrap();
    assert_eq!(d.reason, FallbackReason::BreakerOpen);
    assert!(d.fallback);
    assert_eq!(
        faults.stats().injected_at(FaultSite::PlanStall),
        stalls_before,
        "an open breaker must not pay learned-path cost"
    );
}

#[test]
fn service_recovers_to_steady_state_after_fault_burst() {
    // A burst of 4 cache-layer faults, then the site heals for good.
    let faults = Arc::new(
        FaultPlan::builder(9)
            .fault(FaultSite::CacheError, 1.0)
            .burst(FaultSite::CacheError, 4)
            .build(),
    );
    let cfg = ServiceConfig {
        min_confidence: 0,
        breaker: tight_breaker(),
        ..ServiceConfig::default()
    };
    let c = chaos_service(cfg, None, Some(faults.clone()));
    let q = c.exp.workload.train[0].clone();
    // The burst: 4 consecutive submissions fail outright (the executor
    // errors before any result exists), each feeding the breaker.
    for i in 0..4 {
        let e = c.doctor.submit(QueryRequest::new(q.clone()));
        assert!(
            matches!(e, Err(FossError::Transient(_))),
            "burst submission {i} must fail transiently, got {e:?}"
        );
    }
    let m = c.doctor.metrics();
    assert_eq!(m.errors, 4);
    assert_eq!(m.submitted, 0);
    assert_eq!(m.breaker_state, BreakerState::Open);
    // Burst spent: the bypass serves the expert plan cleanly, the recovery
    // probe succeeds, and traffic returns to FallbackReason::None.
    let d = c.doctor.submit(QueryRequest::new(q.clone())).unwrap();
    assert_eq!(d.reason, FallbackReason::BreakerOpen, "cooldown bypass");
    let d = c.doctor.submit(QueryRequest::new(q.clone())).unwrap();
    assert_eq!(d.reason, FallbackReason::None, "successful recovery probe");
    assert_eq!(c.doctor.metrics().breaker_state, BreakerState::Closed);
    let d = c.doctor.submit(QueryRequest::new(q)).unwrap();
    assert_eq!(d.reason, FallbackReason::None, "steady state restored");
    assert_eq!(faults.stats().injected_total(), 4, "burst cap held");
    let m = c.doctor.metrics();
    assert_eq!(m.errors, 4);
    assert_eq!(m.submitted, 3);
    assert_eq!(m.breaker_times_opened, 1);
}

#[test]
fn low_priority_sheds_before_high_under_slow_executor_chaos() {
    // Every execution crawls (200ms) and the gate admits one query: the
    // service saturates the moment anything is in flight.
    let faults = Arc::new(
        FaultPlan::builder(3)
            .fault_param(FaultSite::ExecSlow, 1.0, 200_000.0)
            .build(),
    );
    let cfg = ServiceConfig {
        max_in_flight: 1,
        ..ServiceConfig::default()
    };
    let c = chaos_service(cfg, None, Some(faults));
    let q = c.exp.workload.train[0].clone();
    std::thread::scope(|scope| {
        let doctor = &c.doctor;
        let slow_query = q.clone();
        scope.spawn(move || doctor.submit(QueryRequest::new(slow_query)).unwrap());
        // Wait until the slow request holds the only permit (the high-water
        // mark moves at admission, long before its 200ms executions end).
        while doctor.metrics().in_flight_high_water == 0 {
            std::thread::yield_now();
        }
        // Low priority sheds immediately; high priority waits out its
        // deadline first, then sheds too.
        let low = doctor.submit(QueryRequest::new(q.clone()).with_priority(Priority::Low));
        assert!(
            matches!(
                low,
                Err(FossError::Overloaded {
                    low_priority: true,
                    ..
                })
            ),
            "low must shed first, got {low:?}"
        );
        let high = doctor.submit(QueryRequest::new(q.clone()).with_deadline_us(5_000.0));
        match high {
            Err(FossError::Overloaded {
                low_priority,
                waited_us,
            }) => {
                assert!(!low_priority);
                assert!(waited_us >= 5_000, "high waits its deadline out");
            }
            other => panic!("saturated high with deadline must shed, got {other:?}"),
        }
        let m = doctor.metrics();
        assert_eq!((m.shed_low, m.shed_high), (1, 1));
    });
    // Load drained: the same low-priority request is served normally.
    let d = c
        .doctor
        .submit(QueryRequest::new(q).with_priority(Priority::Low))
        .unwrap();
    assert!(d.latency > 0.0);
    let m = c.doctor.metrics();
    assert_eq!(m.sheds, 2);
    assert_eq!(m.errors, 0, "sheds are not errors");
}

#[test]
fn foss_faults_env_drives_a_survivable_chaos_run() {
    // The CI chaos step sets FOSS_FAULTS for this suite; default to the
    // same representative burst-capped spec so the test bites locally too.
    // (The suite assumes burst-capped rules: every fault eventually dries
    // up and the service must return to steady state.)
    if std::env::var("FOSS_FAULTS").is_err() {
        std::env::set_var(
            "FOSS_FAULTS",
            "plan_stall:0.5@6000#6;cache_error:0.25#3;seed=11",
        );
    }
    let faults = Arc::new(
        FaultPlan::from_env()
            .expect("FOSS_FAULTS must parse")
            .expect("FOSS_FAULTS is set"),
    );
    let cfg = ServiceConfig {
        planning_budget_us: Some(3_000.0),
        min_confidence: 0,
        breaker: tight_breaker(),
        ..ServiceConfig::default()
    };
    // One plan, one seed, attached at both layers so every site can fire.
    let c = chaos_service(cfg, Some(faults.clone()), Some(faults.clone()));
    let queries = c.exp.workload.all_queries();
    let (mut served, mut errors) = (0u64, 0u64);
    for i in 0..32 {
        match c
            .doctor
            .submit(QueryRequest::new(queries[i % queries.len()].clone()))
        {
            Ok(_) => served += 1,
            Err(FossError::Overloaded { .. }) => {}
            Err(_) => errors += 1,
        }
    }
    // Honest accounting under chaos: completions + errors cover every
    // non-shed attempt, and the snapshot agrees with the plan's counters.
    let m = c.doctor.metrics();
    assert_eq!(m.submitted, served);
    assert_eq!(m.errors, errors);
    assert_eq!(served + errors, 32);
    assert_eq!(m.faults_injected, faults.stats().injected_total());
    assert!(served > 0, "a burst-capped plan cannot fail everything");
    // All bursts are spent well before 32 submissions; whatever the chaos
    // did (including opening the breaker), the service must have recovered.
    let d = c
        .doctor
        .submit(QueryRequest::new(queries[0].clone()))
        .unwrap();
    assert_eq!(d.reason, FallbackReason::None, "steady state after chaos");
    assert_eq!(c.doctor.metrics().breaker_state, BreakerState::Closed);
}
