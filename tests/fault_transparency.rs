//! Fault-layer transparency: attaching [`FaultPlan::none`] must be
//! invisible.
//!
//! The robustness layer's contract is that every fault hook is a single
//! branch on `None`/an inactive plan: a service built *with* a no-op fault
//! plan attached (to both the doctor and its executor) must produce
//! bit-identical outcomes to a service built without the fault layer at
//! all — same plan fingerprints, same latency bits, same fallback
//! reasons, same metrics counters and latency-percentile bits — across
//! every registered workload and request shape (priority classes,
//! generous deadlines).
//!
//! Wall-clock fields (`planning_us` and its percentiles) are the one
//! deliberate exclusion: they are nondeterministic in any build.

use foss_repro::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

struct Pair {
    plain: PlanDoctor,
    nulled: PlanDoctor,
    queries: Vec<Query>,
}

/// A trained doctor over `name`; `with_null_plan` attaches
/// [`FaultPlan::none`] to both the service and a fresh serving executor.
/// Training is fully seeded, so the two doctors of a pair hold identical
/// snapshots and start from identical cache state.
fn build_doctor(name: &str, seed: u64, with_null_plan: bool) -> (PlanDoctor, Vec<Query>) {
    let spec = WorkloadSpec { seed, scale: 0.05 };
    let exp = Experiment::new(name, spec).unwrap();
    let mut adapter = FossAdapter::new(exp.foss(FossConfig {
        episodes_per_update: 6,
        seed,
        ..FossConfig::tiny()
    }));
    let train = &exp.workload.train;
    adapter.train_round(&train[..train.len().min(4)]).unwrap();
    let mut exec = CachingExecutor::new(
        exp.workload.db.clone(),
        *exp.workload.optimizer.cost_model(),
    );
    if with_null_plan {
        exec = exec.with_fault_plan(Arc::new(FaultPlan::none()));
    }
    let mut doctor = PlanDoctor::new(
        adapter.snapshot().as_ref().clone(),
        Arc::new(exec),
        ServiceConfig::default(),
    );
    if with_null_plan {
        doctor = doctor.with_fault_plan(Arc::new(FaultPlan::none()));
    }
    (doctor, exp.workload.all_queries())
}

/// One (plain, null-fault-plan) service pair per registered workload,
/// shared across proptest cases. Cases submit to both services of a pair
/// in lockstep, so their cache and metrics state evolve identically.
fn pairs() -> &'static Vec<Pair> {
    static PAIRS: OnceLock<Vec<Pair>> = OnceLock::new();
    PAIRS.get_or_init(|| {
        WORKLOAD_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let seed = 51 + i as u64;
                let (plain, queries) = build_doctor(name, seed, false);
                let (nulled, _) = build_doctor(name, seed, true);
                Pair {
                    plain,
                    nulled,
                    queries,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every observable, deterministic piece of a service outcome — the
    /// decision and the metrics deltas it causes — is bit-identical with
    /// and without an inactive fault layer.
    #[test]
    fn null_fault_plan_is_bit_transparent(
        wl in 0usize..16,
        qi in 0usize..256,
        low in 0u8..2,
        deadline in 0u8..2,
    ) {
        let (low_priority, with_deadline) = (low == 1, deadline == 1);
        let pair = &pairs()[wl % pairs().len()];
        let query = pair.queries[qi % pair.queries.len()].clone();
        let request = || {
            let mut r = QueryRequest::new(query.clone());
            if low_priority {
                r = r.with_priority(Priority::Low);
            }
            if with_deadline {
                // Generous (≈17 min): exercises the deadline plumbing
                // without ever expiring.
                r = r.with_deadline_us(1e9);
            }
            r
        };
        let a = pair.plain.submit(request()).unwrap();
        let b = pair.nulled.submit(request()).unwrap();
        prop_assert_eq!(a.plan.fingerprint(), b.plan.fingerprint());
        prop_assert_eq!(a.latency.to_bits(), b.latency.to_bits());
        prop_assert_eq!(a.reason, b.reason);
        prop_assert_eq!(
            (a.fallback, a.selected_step, a.candidates, a.retries),
            (b.fallback, b.selected_step, b.candidates, b.retries)
        );

        let (ma, mb) = (pair.plain.metrics(), pair.nulled.metrics());
        prop_assert_eq!(ma.submitted, mb.submitted);
        prop_assert_eq!(ma.errors, mb.errors);
        prop_assert_eq!(ma.fallbacks, mb.fallbacks);
        prop_assert_eq!(ma.planning_timeouts, mb.planning_timeouts);
        prop_assert_eq!(ma.low_confidence, mb.low_confidence);
        prop_assert_eq!(ma.exec_timeouts, mb.exec_timeouts);
        prop_assert_eq!(ma.exec_errors, mb.exec_errors);
        prop_assert_eq!(ma.breaker_open_served, mb.breaker_open_served);
        prop_assert_eq!(ma.deadline_exceeded, mb.deadline_exceeded);
        prop_assert_eq!((ma.shed_low, ma.shed_high), (mb.shed_low, mb.shed_high));
        prop_assert_eq!(ma.retries, mb.retries);
        prop_assert_eq!(ma.breaker_state, mb.breaker_state);
        prop_assert_eq!(ma.breaker_transitions, mb.breaker_transitions);
        prop_assert_eq!(ma.fallback_rate.to_bits(), mb.fallback_rate.to_bits());
        prop_assert_eq!(ma.latency_p50.to_bits(), mb.latency_p50.to_bits());
        prop_assert_eq!(ma.latency_p95.to_bits(), mb.latency_p95.to_bits());
        prop_assert_eq!(ma.latency_p99.to_bits(), mb.latency_p99.to_bits());
        prop_assert_eq!(
            (ma.cache.executions, ma.cache.hits, ma.cache.evictions, ma.cache.entries),
            (mb.cache.executions, mb.cache.hits, mb.cache.evictions, mb.cache.entries)
        );
        // The inactive plan never fires, by construction.
        prop_assert_eq!(mb.faults_injected, 0);
        prop_assert_eq!(ma.faults_injected, 0, "no plan at all");
    }
}
