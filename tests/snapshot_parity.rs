//! Serving-path regression guard: plans served from a published
//! [`PlannerSnapshot`] (the `FossAdapter`/`PlanDoctor` path) must be
//! bit-identical to direct trainer inference on the tpcdslite tiny split.
//! This pins the API redesign to the pre-redesign planning behaviour.

use foss_repro::prelude::*;

#[test]
fn snapshot_plans_bit_identical_to_trainer_on_tpcdslite_tiny() {
    let exp = Experiment::new("tpcdslite", WorkloadSpec::tiny(7)).unwrap();
    let cfg = FossConfig {
        episodes_per_update: 6,
        seed: 7,
        ..FossConfig::tiny()
    };
    let mut adapter = FossAdapter::new(exp.foss(cfg));
    let train: Vec<_> = exp.workload.train.iter().take(4).cloned().collect();
    adapter.train_round(&train).unwrap(); // bootstrap
    adapter.train_round(&train).unwrap(); // one update round

    let snapshot = adapter.snapshot().clone();
    let queries: Vec<_> = exp
        .workload
        .test
        .iter()
        .take(6)
        .chain(train.iter())
        .cloned()
        .collect();
    for q in &queries {
        let served = snapshot.optimize_detailed(q).unwrap();
        let direct = adapter.foss.optimize_detailed(q).unwrap();
        assert_eq!(
            served.plan.fingerprint(),
            direct.plan.fingerprint(),
            "query {:?}: snapshot plan diverged from trainer inference",
            q.id
        );
        assert_eq!(served.selected_step, direct.selected_step);
        assert_eq!(served.aam_confidence, direct.aam_confidence);
        // And through the LearnedOptimizer facade (what evaluate_on uses).
        assert_eq!(
            adapter.plan(q).unwrap().fingerprint(),
            direct.plan.fingerprint()
        );
    }
}

#[test]
fn plan_doctor_serves_snapshot_plans_end_to_end() {
    let exp = Experiment::new("tpcdslite", WorkloadSpec::tiny(11)).unwrap();
    let cfg = FossConfig {
        episodes_per_update: 6,
        seed: 11,
        ..FossConfig::tiny()
    };
    let mut adapter = FossAdapter::new(exp.foss(cfg));
    let train: Vec<_> = exp.workload.train.iter().take(3).cloned().collect();
    adapter.train_round(&train).unwrap();

    let doctor = PlanDoctor::new(
        adapter.snapshot().as_ref().clone(),
        exp.executor.clone(),
        ServiceConfig::default(),
    );
    for q in exp.workload.test.iter().take(4) {
        let decision = doctor.submit(QueryRequest::new(q.clone())).unwrap();
        if !decision.fallback {
            assert_eq!(
                decision.plan.fingerprint(),
                adapter.plan(q).unwrap().fingerprint(),
                "service must serve exactly the snapshot's plan"
            );
        }
        assert!(decision.latency > 0.0);
    }
    let metrics = doctor.metrics();
    assert_eq!(metrics.submitted, 4);
    assert!(metrics.latency_p50 <= metrics.latency_p99);
}
