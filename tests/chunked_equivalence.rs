//! Differential property tests for the executor engines: chunk-at-a-time
//! execution must be indistinguishable from the scalar reference — same
//! result tuples in the same order, bit-identical work-unit latency, and
//! identical timeout accounting — across all five workloads (including the
//! correlated-data DSB-lite and the heavy-tail skew-stress, whose hash
//! joins hammer a single bucket), for expert plans and for randomly
//! perturbed (often catastrophic) plans alike.

use foss_repro::executor::{ExecMode, Executor};
use foss_repro::optimizer::ALL_JOIN_METHODS;
use foss_repro::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One small instance of each registered workload, shared across cases so
/// the generated cases don't each pay the workload-construction cost.
fn workloads() -> &'static Vec<Workload> {
    static WL: OnceLock<Vec<Workload>> = OnceLock::new();
    WL.get_or_init(|| {
        WORKLOAD_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                Workload::by_name(
                    name,
                    WorkloadSpec {
                        seed: 11 + i as u64,
                        scale: 0.05,
                    },
                )
                .unwrap()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunked == scalar on the expert plan and on a random ICP mutation of
    /// it (rotated join order, re-rolled join methods), run under a budget
    /// so catastrophic mutations compare their timeout accounting instead
    /// of running to completion.
    #[test]
    fn chunked_execution_equals_scalar(
        wl_idx in 0usize..WORKLOAD_NAMES.len(),
        q_pick in 0usize..10_000,
        rot in 0usize..8,
        mcode in 0usize..19_683, // 3^9: a method draw per possible join
    ) {
        let wl = &workloads()[wl_idx];
        let split = if q_pick % 2 == 0 { &wl.train } else { &wl.test };
        let query = &split[(q_pick / 2) % split.len()];
        let cost = *wl.optimizer.cost_model();
        let chunked = Executor::with_mode(&wl.db, cost, ExecMode::Chunked);
        let scalar = Executor::with_mode(&wl.db, cost, ExecMode::Scalar);

        // Expert plan, unbounded: full result sets must match exactly.
        let expert = wl.optimizer.optimize(query).unwrap();
        let (co, cr) = chunked.execute_rows(query, &expert, None).unwrap();
        let (so, sr) = scalar.execute_rows(query, &expert, None).unwrap();
        prop_assert_eq!(co, so);
        prop_assert_eq!(cr.rels, sr.rels);
        prop_assert_eq!(cr.data, sr.data);

        // Perturbed plan: rotate the join order, re-roll every method.
        let base = expert.extract_icp().unwrap();
        let n = base.order.len();
        let mut order = base.order.clone();
        order.rotate_left(rot % n);
        let mut methods = Vec::with_capacity(n.saturating_sub(1));
        let mut code = mcode;
        for _ in 0..n.saturating_sub(1) {
            methods.push(ALL_JOIN_METHODS[code % 3]);
            code /= 3;
        }
        let icp = Icp::new(order, methods).unwrap();
        let plan = wl.optimizer.optimize_with_hint(query, &icp).unwrap();
        let budget = Some(co.latency * 25.0);
        match (
            chunked.execute_rows(query, &plan, budget),
            scalar.execute_rows(query, &plan, budget),
        ) {
            (Ok((po, pr)), Ok((qo, qr))) => {
                prop_assert_eq!(po, qo);
                prop_assert_eq!(pr.rels, qr.rels);
                prop_assert_eq!(pr.data, qr.data);
            }
            (
                Err(FossError::Timeout { spent: cs, budget: cb }),
                Err(FossError::Timeout { spent: ss, budget: sb }),
            ) => {
                prop_assert_eq!(cs, ss);
                prop_assert_eq!(cb, sb);
            }
            (c, s) => {
                return Err(TestCaseError::fail(format!(
                    "engines diverged on perturbed plan: chunked={c:?} scalar={s:?}"
                )));
            }
        }
    }
}
