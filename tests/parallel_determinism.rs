//! Differential property tests for the morsel-driven parallel engine: at
//! every worker count the chunked engine must be indistinguishable from its
//! own single-threaded run and from the scalar reference — same result
//! tuples in the same order, bit-identical work-unit latency, and identical
//! timeout accounting — across all five workloads. The workloads here are
//! built at a larger scale than `chunked_equivalence` so the fact tables
//! clear the parallel dispatch threshold (2 morsels) and the worker pool,
//! partitioned hash joins and hot-key broadcast actually engage; a forced-
//! replication configuration (every build key broadcast) is compared too,
//! which bites hardest on the heavy-tailed `skewstress` workload.

use foss_repro::executor::{ExecMode, Executor, ParallelConfig};
use foss_repro::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One instance of each registered workload, shared across cases. Scale 0.3
/// puts thousands of rows in the fact tables — several morsels' worth.
fn workloads() -> &'static Vec<Workload> {
    static WL: OnceLock<Vec<Workload>> = OnceLock::new();
    WL.get_or_init(|| {
        WORKLOAD_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                Workload::by_name(
                    name,
                    WorkloadSpec {
                        seed: 21 + i as u64,
                        scale: 0.3,
                    },
                )
                .unwrap()
            })
            .collect()
    })
}

/// The configurations under test: 1, 2 and 4 workers on single-chunk
/// morsels, plus a 4-worker config with hot-key replication forced on for
/// every build key (threshold floor of one row).
fn configs() -> [ParallelConfig; 4] {
    let base = ParallelConfig {
        workers: 1,
        morsel_chunks: 1,
        ..ParallelConfig::sequential()
    };
    [
        base,
        ParallelConfig { workers: 2, ..base },
        ParallelConfig { workers: 4, ..base },
        ParallelConfig {
            workers: 4,
            hot_key_fraction: 0.0,
            hot_key_min: 1,
            ..base
        },
    ]
}

/// Guard against silently testing nothing: the chosen scale must put at
/// least one table in every workload past the parallel dispatch threshold
/// (2 single-chunk morsels = 2048 rows), so the worker pool really engages.
#[test]
fn workloads_clear_the_parallel_dispatch_threshold() {
    for (wl, name) in workloads().iter().zip(WORKLOAD_NAMES) {
        let max_rows = wl.db.stats().iter().map(|s| s.row_count).max().unwrap();
        assert!(
            max_rows >= 2048,
            "{name}: largest table has {max_rows} rows — below the parallel threshold"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Parallel == single-threaded chunked == scalar, on the expert plan:
    /// full results unbounded, then timeout accounting under a budget a
    /// third of the true latency.
    #[test]
    fn parallel_engine_is_bit_identical(
        wl_idx in 0usize..WORKLOAD_NAMES.len(),
        q_pick in 0usize..10_000,
    ) {
        let wl = &workloads()[wl_idx];
        let split = if q_pick % 2 == 0 { &wl.train } else { &wl.test };
        let query = &split[(q_pick / 2) % split.len()];
        let cost = *wl.optimizer.cost_model();
        let plan = wl.optimizer.optimize(query).unwrap();

        let chunked = Executor::with_mode(&wl.db, cost, ExecMode::Chunked)
            .with_parallelism(ParallelConfig::sequential());
        let scalar = Executor::with_mode(&wl.db, cost, ExecMode::Scalar);
        let (co, cr) = chunked.execute_rows(query, &plan, None).unwrap();
        let (so, sr) = scalar.execute_rows(query, &plan, None).unwrap();
        prop_assert_eq!(co, so);
        prop_assert_eq!(&cr.rels, &sr.rels);
        prop_assert_eq!(&cr.data, &sr.data);

        let tight = Some(co.latency / 3.0);
        let FossError::Timeout { spent: ts, budget: tb } =
            chunked.execute_rows(query, &plan, tight).unwrap_err()
        else {
            panic!("budget below the true latency must time out");
        };

        for par in configs() {
            let pex = Executor::with_mode(&wl.db, cost, ExecMode::Chunked)
                .with_parallelism(par);
            let (po, pr) = pex.execute_rows(query, &plan, None).unwrap();
            prop_assert_eq!(
                po.latency.to_bits(),
                co.latency.to_bits(),
                "latency diverged at {:?}",
                par
            );
            prop_assert_eq!(po.rows, co.rows);
            prop_assert_eq!(&pr.rels, &cr.rels);
            prop_assert_eq!(&pr.data, &cr.data, "tuples diverged at {:?}", par);

            let FossError::Timeout { spent, budget } =
                pex.execute_rows(query, &plan, tight).unwrap_err()
            else {
                panic!("budget below the true latency must time out");
            };
            prop_assert_eq!((spent, budget), (ts, tb), "timeout accounting diverged at {:?}", par);
        }
    }
}
