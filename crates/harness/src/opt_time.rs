//! Fig. 6 — optimisation-time distribution (box plots) on the JOB workload:
//! time from query input to execution-plan output, per method.

use foss_baselines::{BalsaLite, Bao, HybridQo, LearnedOptimizer, LogerLite, PostgresBaseline};
use foss_common::Result;
use foss_core::FossConfig;

use crate::table1::RunConfig;
use crate::{evaluate_on, percentile, Experiment, FossAdapter};

/// Box-plot summary of per-query optimisation times (µs).
#[derive(Debug, Clone)]
pub struct OptTimeBox {
    /// Method name.
    pub method: String,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

/// Measure optimisation times on the full workload for every method.
pub fn run(workload: &str, cfg: &RunConfig) -> Result<Vec<OptTimeBox>> {
    let exp = Experiment::with_exec_mode(workload, cfg.spec, cfg.exec_mode)?;
    let queries = exp.workload.all_queries();
    let train = exp.workload.train.clone();
    let encoder = exp.encoder();
    let opt = exp.workload.optimizer.clone();
    let exec = exp.executor.clone();
    let seed = cfg.spec.seed;
    let foss_cfg = FossConfig {
        episodes_per_update: cfg.foss_episodes,
        seed,
        ..FossConfig::tiny()
    };

    let mut methods: Vec<Box<dyn LearnedOptimizer>> = vec![
        Box::new(PostgresBaseline::new(opt.clone())),
        Box::new(Bao::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 21,
        )),
        Box::new(BalsaLite::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 22,
        )),
        Box::new(LogerLite::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 23,
        )),
        Box::new(HybridQo::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 24,
        )),
        Box::new(FossAdapter::new(exp.foss(foss_cfg))),
    ];

    let mut boxes = Vec::new();
    for method in methods.iter_mut() {
        for _ in 0..cfg.baseline_rounds.min(1) {
            method.train_round(&train)?;
        }
        let eval = evaluate_on(&exp, &**method, &queries)?;
        let s = &eval.opt_times_us;
        boxes.push(OptTimeBox {
            method: method.name().to_string(),
            min: percentile(s, 0.0),
            p25: percentile(s, 25.0),
            p50: percentile(s, 50.0),
            p75: percentile(s, 75.0),
            max: percentile(s, 100.0),
        });
    }
    Ok(boxes)
}

/// Render the box-plot table.
pub fn render(workload: &str, boxes: &[OptTimeBox]) -> String {
    let mut out =
        format!("Fig.6 — optimisation time on {workload} (µs): min / p25 / p50 / p75 / max\n");
    for b in boxes {
        out.push_str(&format!(
            "{:<12} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>10.0}\n",
            b.method, b.min, b.p25, b.p50, b.p75, b.max,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_workloads_run_through_the_runner() {
        // The registry is the only name interpreter, so every runner takes
        // the new workloads; guard it on the cheapest one.
        let mut cfg = RunConfig::smoke();
        cfg.spec.scale = 0.04;
        cfg.foss_episodes = 4;
        for name in ["dsblite", "skewstress"] {
            let boxes = run(name, &cfg).unwrap();
            assert_eq!(boxes.len(), 6, "{name}");
            assert!(boxes.iter().all(|b| b.max >= b.min), "{name}");
        }
    }

    #[test]
    fn boxes_are_ordered() {
        let mut cfg = RunConfig::smoke();
        cfg.spec.scale = 0.05;
        let boxes = run("tpcdslite", &cfg).unwrap();
        assert_eq!(boxes.len(), 6);
        for b in &boxes {
            assert!(b.min <= b.p25 && b.p25 <= b.p50);
            assert!(b.p50 <= b.p75 && b.p75 <= b.max);
        }
        // Learned optimizers pay model-inference overhead over the expert.
        let pg = boxes.iter().find(|b| b.method == "PostgreSQL").unwrap();
        let foss = boxes.iter().find(|b| b.method == "FOSS").unwrap();
        assert!(foss.p50 >= pg.p50);
    }
}
