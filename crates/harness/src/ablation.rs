//! Table II, Fig. 7 and Fig. 9 — design-choice ablations of FOSS.

use std::time::Instant;

use foss_baselines::LearnedOptimizer;
use foss_common::Result;
use foss_core::FossConfig;

use crate::table1::RunConfig;
use crate::{evaluate_on, Experiment, FossAdapter};

/// The paper's eight configurations (Table II).
pub fn configurations(base_episodes: usize, seed: u64) -> Vec<(String, FossConfig)> {
    let base = FossConfig {
        episodes_per_update: base_episodes,
        seed,
        ..FossConfig::tiny()
    };
    vec![
        (
            "2-Maxsteps".into(),
            FossConfig {
                max_steps: 2,
                ..base.clone()
            },
        ),
        ("3-Maxsteps (FOSS)".into(), base.clone()),
        (
            "4-Maxsteps".into(),
            FossConfig {
                max_steps: 4,
                ..base.clone()
            },
        ),
        (
            "5-Maxsteps".into(),
            FossConfig {
                max_steps: 5,
                ..base.clone()
            },
        ),
        (
            "Off-Simulated".into(),
            FossConfig {
                use_simulated_env: false,
                // The paper cuts episodes to 200/900 of the default to keep
                // real-environment training feasible; same ratio here.
                episodes_per_update: (base_episodes * 2 / 9).max(2),
                ..base.clone()
            },
        ),
        (
            "Off-Penalty".into(),
            FossConfig {
                penalty_gamma: 0.0,
                ..base.clone()
            },
        ),
        (
            "Off-Validation".into(),
            FossConfig {
                validate_promising: false,
                ..base.clone()
            },
        ),
        (
            "2-Agents".into(),
            FossConfig {
                num_agents: 2,
                ..base
            },
        ),
    ]
}

/// One Table II row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration name.
    pub name: String,
    /// Wall-clock training time (seconds).
    pub training_time_s: f64,
    /// Mean per-query optimisation time (µs).
    pub opt_time_us: f64,
    /// GMRL on the full workload.
    pub gmrl: f64,
    /// GMRL after each training iteration (Fig. 9 curve).
    pub gmrl_curve: Vec<f64>,
    /// Distribution of the selected plan's step index (Fig. 7), indexed by
    /// step (0 = original plan kept).
    pub step_histogram: Vec<usize>,
}

/// Run every configuration on `workload`.
pub fn run(workload: &str, cfg: &RunConfig) -> Result<Vec<AblationRow>> {
    let exp = Experiment::with_exec_mode(workload, cfg.spec, cfg.exec_mode)?;
    let train = exp.workload.train.clone();
    let all = exp.workload.all_queries();
    let mut rows = Vec::new();
    for (name, foss_cfg) in configurations(cfg.foss_episodes, cfg.spec.seed) {
        let max_steps = foss_cfg.max_steps;
        let mut adapter = FossAdapter::new(exp.foss(foss_cfg));
        let t0 = Instant::now();
        let mut gmrl_curve = Vec::new();
        for _ in 0..=cfg.foss_iterations {
            adapter.train_round(&train)?;
            let eval = evaluate_on(&exp, &adapter, &train)?;
            gmrl_curve.push(eval.gmrl);
        }
        let training_time_s = t0.elapsed().as_secs_f64();
        let eval = evaluate_on(&exp, &adapter, &all)?;
        // Fig. 7: where on the episode the selected plan sits — read from
        // the adapter's published snapshot, like the serving path does.
        let snapshot = adapter.snapshot().clone();
        let mut step_histogram = vec![0usize; max_steps + 1];
        for q in &all {
            let inf = snapshot.optimize_detailed(q)?;
            step_histogram[inf.selected_step.min(max_steps)] += 1;
        }
        let opt_time_us =
            eval.opt_times_us.iter().sum::<f64>() / eval.opt_times_us.len().max(1) as f64;
        rows.push(AblationRow {
            name,
            training_time_s,
            opt_time_us,
            gmrl: eval.gmrl,
            gmrl_curve,
            step_histogram,
        });
    }
    Ok(rows)
}

/// Render Table II.
pub fn render_table2(workload: &str, rows: &[AblationRow]) -> String {
    let mut out = format!(
        "Table II — configuration comparison on {workload}\n{:<20} {:>12} {:>14} {:>8}\n",
        "experiment", "train time(s)", "opt time(µs)", "GMRL"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:>12.1} {:>14.0} {:>8.3}\n",
            r.name, r.training_time_s, r.opt_time_us, r.gmrl
        ));
    }
    out
}

/// Render Fig. 9 (GMRL per iteration).
pub fn render_fig9(workload: &str, rows: &[AblationRow]) -> String {
    let mut out = format!("Fig.9 — GMRL during training on {workload}\n");
    for r in rows {
        let pts: Vec<String> = r.gmrl_curve.iter().map(|g| format!("{g:.3}")).collect();
        out.push_str(&format!("{:<20} [{}]\n", r.name, pts.join(", ")));
    }
    out
}

/// Render Fig. 7 (step distribution for the maxsteps configurations only).
pub fn render_fig7(workload: &str, rows: &[AblationRow]) -> String {
    let mut out = format!("Fig.7 — selected-plan step distribution on {workload}\n");
    for r in rows.iter().filter(|r| r.name.contains("Maxsteps")) {
        let total: usize = r.step_histogram.len();
        let pts: Vec<String> = r
            .step_histogram
            .iter()
            .enumerate()
            .map(|(s, c)| format!("step{s}:{c}"))
            .collect();
        out.push_str(&format!("{:<20} {}\n", r.name, pts.join("  ")));
        let _ = total;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_configurations_match_table2() {
        let cfgs = configurations(90, 1);
        assert_eq!(cfgs.len(), 8);
        let names: Vec<&str> = cfgs.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"3-Maxsteps (FOSS)"));
        assert!(names.contains(&"Off-Simulated"));
        assert!(names.contains(&"2-Agents"));
        // Off-Simulated cuts episodes by the paper's 900→200 ratio.
        let off_sim = &cfgs.iter().find(|(n, _)| n == "Off-Simulated").unwrap().1;
        assert_eq!(off_sim.episodes_per_update, 20);
        assert!(!off_sim.use_simulated_env);
        let off_pen = &cfgs.iter().find(|(n, _)| n == "Off-Penalty").unwrap().1;
        assert_eq!(off_pen.penalty_gamma, 0.0);
    }

    #[test]
    fn ablation_smoke_runs_two_configs() {
        // Run only the cheapest two configurations through the machinery by
        // shrinking the workload hard.
        let mut cfg = RunConfig::smoke();
        cfg.spec.scale = 0.04;
        cfg.foss_iterations = 0;
        cfg.foss_episodes = 4;
        let exp = Experiment::new("tpcdslite", cfg.spec).unwrap();
        let train: Vec<_> = exp.workload.train.iter().take(2).cloned().collect();
        for (name, foss_cfg) in configurations(cfg.foss_episodes, 1).into_iter().take(2) {
            let mut adapter = FossAdapter::new(exp.foss(foss_cfg));
            adapter.train_round(&train).unwrap();
            let eval = evaluate_on(&exp, &adapter, &train).unwrap();
            assert!(eval.gmrl > 0.0, "{name} failed");
        }
    }
}
