//! Table I — performance of all methods on all workloads — and Fig. 4,
//! which is derived from the same runs (relative total-latency speedups).

use foss_baselines::{BalsaLite, Bao, HybridQo, LearnedOptimizer, LogerLite, PostgresBaseline};
use foss_common::Result;
use foss_core::FossConfig;
use foss_executor::ExecMode;
use foss_workloads::WorkloadSpec;

use crate::{evaluate_on, Experiment, FossAdapter, SplitEval};

/// One method's row of Table I for one workload.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// Method name.
    pub method: String,
    /// Training-split evaluation.
    pub train: SplitEval,
    /// Test-split evaluation.
    pub test: SplitEval,
}

/// All rows for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadTable {
    /// Workload name.
    pub workload: String,
    /// Per-method rows (PostgreSQL first, FOSS last).
    pub rows: Vec<MethodRow>,
}

/// Knobs bounding experiment cost.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Workload seed + scale.
    pub spec: WorkloadSpec,
    /// Training rounds for the baselines.
    pub baseline_rounds: usize,
    /// FOSS training iterations (after bootstrap).
    pub foss_iterations: usize,
    /// Simulated episodes per FOSS iteration.
    pub foss_episodes: usize,
    /// Executor engine all methods are measured against (chunked by
    /// default; scalar is the differential-testing reference).
    pub exec_mode: ExecMode,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            spec: WorkloadSpec::default(),
            baseline_rounds: 4,
            foss_iterations: 4,
            foss_episodes: 120,
            exec_mode: ExecMode::default(),
        }
    }
}

impl RunConfig {
    /// A configuration small enough for CI smoke runs.
    pub fn smoke() -> Self {
        Self {
            spec: WorkloadSpec {
                seed: 42,
                scale: 0.08,
            },
            baseline_rounds: 1,
            foss_iterations: 1,
            foss_episodes: 12,
            exec_mode: ExecMode::default(),
        }
    }
}

/// Run Table I for one workload.
pub fn run_workload(name: &str, cfg: &RunConfig) -> Result<WorkloadTable> {
    let exp = Experiment::with_exec_mode(name, cfg.spec, cfg.exec_mode)?;
    let train = exp.workload.train.clone();
    let test = exp.workload.test.clone();
    let encoder = exp.encoder();
    let opt = exp.workload.optimizer.clone();
    let exec = exp.executor.clone();
    let seed = cfg.spec.seed;

    let mut methods: Vec<Box<dyn LearnedOptimizer>> = vec![
        Box::new(PostgresBaseline::new(opt.clone())),
        Box::new(Bao::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 0xBA0,
        )),
        Box::new(BalsaLite::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 0xBA15A,
        )),
        Box::new(LogerLite::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 0x106E5,
        )),
        Box::new(HybridQo::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 0x4B1D,
        )),
    ];

    let mut rows = Vec::new();
    for method in methods.iter_mut() {
        for _ in 0..cfg.baseline_rounds {
            method.train_round(&train)?;
        }
        rows.push(MethodRow {
            method: method.name().to_string(),
            train: evaluate_on(&exp, &**method, &train)?,
            test: evaluate_on(&exp, &**method, &test)?,
        });
    }

    // FOSS.
    let foss_cfg = FossConfig {
        episodes_per_update: cfg.foss_episodes,
        seed,
        ..FossConfig::tiny()
    };
    let mut foss = FossAdapter::new(exp.foss(foss_cfg));
    for _ in 0..=cfg.foss_iterations {
        foss.train_round(&train)?;
    }
    rows.push(MethodRow {
        method: "FOSS".to_string(),
        train: evaluate_on(&exp, &foss, &train)?,
        test: evaluate_on(&exp, &foss, &test)?,
    });

    Ok(WorkloadTable {
        workload: name.to_string(),
        rows,
    })
}

/// Run Table I across every registered workload.
pub fn run(cfg: &RunConfig) -> Result<Vec<WorkloadTable>> {
    foss_workloads::WORKLOAD_NAMES
        .iter()
        .map(|n| run_workload(n, cfg))
        .collect()
}

/// Render the table in the paper's layout.
pub fn render(tables: &[WorkloadTable]) -> String {
    let mut out = String::new();
    out.push_str(
        "method          | wl         | WRL/tr  GMRL/tr | WRL/te  GMRL/te | runtime(s) tr/te\n",
    );
    out.push_str(&"-".repeat(92));
    out.push('\n');
    for t in tables {
        for r in &t.rows {
            out.push_str(&format!(
                "{:<15} | {:<10} | {:>6.2}  {:>6.2}  | {:>6.2}  {:>6.2}  | {:>8.3} / {:>8.3}\n",
                r.method,
                t.workload,
                r.train.wrl,
                r.train.gmrl,
                r.test.wrl,
                r.test.gmrl,
                r.train.runtime_s,
                r.test.runtime_s,
            ));
        }
    }
    out
}

/// Fig. 4: relative speedup of FOSS over each method per workload
/// (`WRL_method / WRL_FOSS` on total latency, train and test).
pub fn render_fig4(tables: &[WorkloadTable]) -> String {
    let mut out = String::new();
    out.push_str("Fig.4 — relative speedup of FOSS vs other methods (total latency)\n");
    for t in tables {
        let foss = t
            .rows
            .iter()
            .find(|r| r.method == "FOSS")
            .expect("FOSS row present");
        for r in &t.rows {
            if r.method == "FOSS" {
                continue;
            }
            out.push_str(&format!(
                "{:<10} vs {:<12} train {:>6.2}x   test {:>6.2}x\n",
                t.workload,
                r.method,
                r.train.runtime_s / foss.train.runtime_s.max(1e-9),
                r.test.runtime_s / foss.test.runtime_s.max(1e-9),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_single_workload() {
        let mut cfg = RunConfig::smoke();
        cfg.spec.scale = 0.05;
        let table = run_workload("tpcdslite", &cfg).unwrap();
        assert_eq!(table.rows.len(), 6);
        assert_eq!(table.rows[0].method, "PostgreSQL");
        assert_eq!(table.rows[5].method, "FOSS");
        // The expert row scores GMRL exactly 1 against itself.
        assert!((table.rows[0].train.gmrl - 1.0).abs() < 1e-9);
        let text = render(std::slice::from_ref(&table));
        assert!(text.contains("FOSS"));
        let fig4 = render_fig4(&[table]);
        assert!(fig4.contains("vs"));
    }
}
