//! Fig. 8 — known best plans: for each learned optimizer, the best plan it
//! ever produced per query across several runs, ranked by time savings
//! relative to the expert plan (`1 − lat_best / lat_expert`).

use foss_baselines::{BalsaLite, Bao, HybridQo, LearnedOptimizer, LogerLite};
use foss_common::{FossError, Result};
use foss_core::FossConfig;

use crate::table1::RunConfig;
use crate::{Experiment, FossAdapter, EVAL_TIMEOUT_FACTOR};

/// Savings series for one method, sorted descending (the figure's x-axis is
/// the per-method ranking).
#[derive(Debug, Clone)]
pub struct SavingsSeries {
    /// Method name.
    pub method: String,
    /// Sorted time-savings ratios, one per query (can be negative when even
    /// the best found plan is worse than the expert's).
    pub savings: Vec<f64>,
}

impl SavingsSeries {
    /// Queries with at least `threshold` savings (Fig. 8's ≥25% / ≥75%
    /// counts).
    pub fn count_at_least(&self, threshold: f64) -> usize {
        self.savings.iter().filter(|&&s| s >= threshold).count()
    }
}

/// Run each method `runs` times with different seeds; keep the best latency
/// observed per query.
pub fn run(workload: &str, cfg: &RunConfig, runs: usize) -> Result<Vec<SavingsSeries>> {
    let exp = Experiment::with_exec_mode(workload, cfg.spec, cfg.exec_mode)?;
    let queries = exp.workload.all_queries();
    let train = exp.workload.train.clone();
    let encoder = exp.encoder();
    let opt = exp.workload.optimizer.clone();
    let exec = exp.executor.clone();

    let method_names = ["Bao", "Balsa", "Loger", "HybridQO", "FOSS"];
    let mut all = Vec::new();
    for name in method_names {
        let mut best: Vec<f64> = vec![f64::INFINITY; queries.len()];
        let mut expert: Vec<f64> = vec![0.0; queries.len()];
        for run_idx in 0..runs {
            let seed = cfg.spec.seed ^ ((run_idx as u64 + 1) << 8);
            let mut method: Box<dyn LearnedOptimizer> = match name {
                "Bao" => Box::new(Bao::new(opt.clone(), exec.clone(), encoder.clone(), seed)),
                "Balsa" => Box::new(BalsaLite::new(
                    opt.clone(),
                    exec.clone(),
                    encoder.clone(),
                    seed,
                )),
                "Loger" => Box::new(LogerLite::new(
                    opt.clone(),
                    exec.clone(),
                    encoder.clone(),
                    seed,
                )),
                "HybridQO" => Box::new(HybridQo::new(
                    opt.clone(),
                    exec.clone(),
                    encoder.clone(),
                    seed,
                )),
                "FOSS" => {
                    let foss_cfg = FossConfig {
                        episodes_per_update: cfg.foss_episodes,
                        seed,
                        ..FossConfig::tiny()
                    };
                    Box::new(FossAdapter::new(exp.foss(foss_cfg)))
                }
                _ => unreachable!(),
            };
            for _ in 0..cfg.baseline_rounds.max(1) {
                method.train_round(&train)?;
            }
            for (i, q) in queries.iter().enumerate() {
                let expert_plan = exp.workload.optimizer.optimize(q)?;
                let e = exp.executor.execute(q, &expert_plan, None)?;
                expert[i] = e.latency;
                let plan = method.plan(q)?;
                let budget = e.latency * EVAL_TIMEOUT_FACTOR;
                let lat = match exp.executor.execute(q, &plan, Some(budget)) {
                    Ok(out) => out.latency,
                    Err(FossError::Timeout { .. }) => budget,
                    Err(e) => return Err(e),
                };
                if lat < best[i] {
                    best[i] = lat;
                }
            }
        }
        let mut savings: Vec<f64> = best
            .iter()
            .zip(&expert)
            .map(|(b, e)| 1.0 - b / e.max(1e-9))
            .collect();
        savings.sort_by(|a, b| b.total_cmp(a));
        all.push(SavingsSeries {
            method: name.to_string(),
            savings,
        });
    }
    Ok(all)
}

/// Render the ranking plus the paper's ≥25% / ≥75% counts.
pub fn render(workload: &str, series: &[SavingsSeries]) -> String {
    let mut out = format!("Fig.8 — known-best-plan time savings ranking on {workload}\n");
    for s in series {
        let head: Vec<String> = s
            .savings
            .iter()
            .take(8)
            .map(|v| format!("{:+.2}", v))
            .collect();
        out.push_str(&format!(
            "{:<10} ≥25%: {:>3} queries  ≥75%: {:>3} queries  top: [{}]\n",
            s.method,
            s.count_at_least(0.25),
            s.count_at_least(0.75),
            head.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_are_sorted_descending() {
        let mut cfg = RunConfig::smoke();
        cfg.spec.scale = 0.05;
        let series = run("tpcdslite", &cfg, 1).unwrap();
        assert_eq!(series.len(), 5);
        for s in &series {
            for w in s.savings.windows(2) {
                assert!(w[0] >= w[1]);
            }
            assert!(s.savings.iter().all(|&v| v <= 1.0));
            assert!(s.count_at_least(0.25) >= s.count_at_least(0.75));
        }
    }
}
