//! Fig. 5 — training curves: test-split speedup relative to the expert as a
//! function of wall-clock training time, for each learned optimizer.

use std::time::Instant;

use foss_baselines::{BalsaLite, Bao, HybridQo, LearnedOptimizer, LogerLite};
use foss_common::Result;
use foss_core::FossConfig;

use crate::table1::RunConfig;
use crate::{evaluate_on, Experiment, FossAdapter};

/// One point on a training curve.
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    /// Cumulative training wall time (seconds).
    pub train_time_s: f64,
    /// Speedup of total test latency vs the expert (>1 is better).
    pub test_speedup: f64,
}

/// One method's curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Method name.
    pub method: String,
    /// Snapshot after every training round.
    pub points: Vec<CurvePoint>,
}

/// Train every learned method for `rounds`, snapshotting test speedup after
/// each round.
pub fn run(workload: &str, cfg: &RunConfig, rounds: usize) -> Result<Vec<Curve>> {
    let exp = Experiment::with_exec_mode(workload, cfg.spec, cfg.exec_mode)?;
    let train = exp.workload.train.clone();
    let test = exp.workload.test.clone();
    let encoder = exp.encoder();
    let opt = exp.workload.optimizer.clone();
    let exec = exp.executor.clone();
    let seed = cfg.spec.seed;

    let foss_cfg = FossConfig {
        episodes_per_update: cfg.foss_episodes,
        seed,
        ..FossConfig::tiny()
    };
    let mut methods: Vec<Box<dyn LearnedOptimizer>> = vec![
        Box::new(Bao::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 1,
        )),
        Box::new(BalsaLite::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 2,
        )),
        Box::new(LogerLite::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 3,
        )),
        Box::new(HybridQo::new(
            opt.clone(),
            exec.clone(),
            encoder.clone(),
            seed ^ 4,
        )),
        Box::new(FossAdapter::new(exp.foss(foss_cfg))),
    ];

    let mut curves = Vec::new();
    for method in methods.iter_mut() {
        let mut points = Vec::with_capacity(rounds);
        let mut train_time = 0.0f64;
        for _ in 0..rounds {
            let t0 = Instant::now();
            method.train_round(&train)?;
            train_time += t0.elapsed().as_secs_f64();
            let eval = evaluate_on(&exp, &**method, &test)?;
            // Speedup on totals = 1 / WRL.
            points.push(CurvePoint {
                train_time_s: train_time,
                test_speedup: 1.0 / eval.wrl,
            });
        }
        curves.push(Curve {
            method: method.name().to_string(),
            points,
        });
    }
    Ok(curves)
}

/// Render curves as aligned text series.
pub fn render(workload: &str, curves: &[Curve]) -> String {
    let mut out = format!("Fig.5 — training curves on {workload} (test speedup vs expert)\n");
    for c in curves {
        out.push_str(&format!("{:<10}", c.method));
        for p in &c.points {
            out.push_str(&format!(
                "  t={:>6.1}s → {:>5.2}x",
                p.train_time_s, p.test_speedup
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_one_point_per_round() {
        let mut cfg = RunConfig::smoke();
        cfg.spec.scale = 0.05;
        let curves = run("tpcdslite", &cfg, 2).unwrap();
        assert_eq!(curves.len(), 5);
        for c in &curves {
            assert_eq!(c.points.len(), 2);
            assert!(c.points[1].train_time_s >= c.points[0].train_time_s);
            assert!(c.points.iter().all(|p| p.test_speedup > 0.0));
        }
        assert!(render("tpcdslite", &curves).contains("FOSS"));
    }
}
