//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§VI) on the synthetic substrates.
//!
//! | Paper artefact | Runner | Binary (`foss-bench`) |
//! |---|---|---|
//! | Table I (WRL/GMRL/runtime, 3 workloads × 6 methods) | [`table1::run`] | `table1` |
//! | Fig. 4 (relative speedups) | derived from Table I | `fig4` |
//! | Fig. 5 (training curves) | [`curves::run`] | `fig5` |
//! | Fig. 6 (optimisation-time box plots) | [`opt_time::run`] | `fig6` |
//! | Fig. 7 (step distribution vs maxsteps) | [`ablation::render_fig7`] | `fig7` |
//! | Fig. 8 (known-best-plan savings ranking) | [`best_plans::run`] | `fig8` |
//! | Fig. 9 (GMRL curves per configuration) | [`ablation::run`] | `fig9` |
//! | Table II (design-choice ablations) | [`ablation::run`] | `table2` |
//!
//! **Unit convention**: execution latency is deterministic executor work
//! units, which we equate to microseconds when combining with measured
//! wall-clock optimisation time in WRL (see EXPERIMENTS.md).
//!
//! **Snapshot-based planning**: since the serving redesign, every runner
//! evaluates FOSS through read-only [`foss_core::PlannerSnapshot`]s — the
//! [`FossAdapter`] refreshes its snapshot after each training round and
//! [`LearnedOptimizer::plan`] is `&self` for all methods, so evaluation
//! exercises exactly the code path the `PlanDoctor` service serves.

pub mod ablation;
pub mod best_plans;
pub mod curves;
pub mod opt_time;
pub mod table1;

use std::sync::Arc;
use std::time::Instant;

use foss_baselines::LearnedOptimizer;
use foss_common::{FossError, Result};
use foss_core::encoding::PlanEncoder;
use foss_core::{Foss, FossConfig, PlannerSnapshot};
use foss_executor::CachingExecutor;
use foss_query::Query;
use foss_workloads::{
    geometric_mean_relevant_latency, workload_relevant_latency, QueryOutcome, Workload,
    WorkloadSpec,
};

/// Hard cap on how much worse than the expert an evaluated plan may run
/// (bounds catastrophic Balsa plans exactly like the paper's TLE handling).
pub const EVAL_TIMEOUT_FACTOR: f64 = 10.0;

/// A workload plus the shared executor every method measures against.
pub struct Experiment {
    /// The benchmark.
    pub workload: Workload,
    /// Shared caching executor (all methods see identical latencies).
    pub executor: Arc<CachingExecutor>,
}

impl Experiment {
    /// Materialise a benchmark by registry name (any of
    /// [`foss_workloads::WORKLOAD_NAMES`]) over the default chunk-at-a-time
    /// executor.
    pub fn new(name: &str, spec: WorkloadSpec) -> Result<Self> {
        Self::with_exec_mode(name, spec, foss_executor::ExecMode::default())
    }

    /// Like [`Experiment::new`] with an explicit executor engine, so every
    /// table/figure runner can be replayed against the scalar reference
    /// (`FOSS_EXEC=scalar` in the `foss-bench` binaries).
    pub fn with_exec_mode(
        name: &str,
        spec: WorkloadSpec,
        mode: foss_executor::ExecMode,
    ) -> Result<Self> {
        let workload = Workload::by_name(name, spec)?;
        let executor = Arc::new(CachingExecutor::with_mode(
            workload.db.clone(),
            *workload.optimizer.cost_model(),
            mode,
        ));
        Ok(Self { workload, executor })
    }

    /// A plan encoder matching this workload's schema.
    pub fn encoder(&self) -> PlanEncoder {
        PlanEncoder::new(self.workload.table_count(), self.workload.table_rows())
    }

    /// A FOSS instance wired to this experiment.
    pub fn foss(&self, cfg: FossConfig) -> Foss {
        Foss::new(
            self.workload.optimizer.clone(),
            self.executor.clone(),
            self.workload.max_relations,
            self.workload.table_rows(),
            cfg,
        )
    }
}

/// Adapter so [`Foss`] can be driven through the common baseline trait.
///
/// Mirrors the serving architecture in miniature: training mutates the
/// wrapped [`Foss`], and after every round the adapter publishes a fresh
/// read-only [`PlannerSnapshot`] that [`LearnedOptimizer::plan`] serves
/// from — the same snapshot type the `PlanDoctor` service front end holds.
pub struct FossAdapter {
    /// The wrapped system.
    pub foss: Foss,
    snapshot: Arc<PlannerSnapshot>,
    iteration: usize,
}

impl FossAdapter {
    /// Wrap a FOSS instance (publishing an initial, untrained snapshot).
    pub fn new(foss: Foss) -> Self {
        let snapshot = Arc::new(foss.snapshot());
        Self {
            foss,
            snapshot,
            iteration: 0,
        }
    }

    /// The snapshot currently served by [`LearnedOptimizer::plan`]
    /// (refreshed after every training round).
    pub fn snapshot(&self) -> &Arc<PlannerSnapshot> {
        &self.snapshot
    }
}

impl LearnedOptimizer for FossAdapter {
    fn name(&self) -> &'static str {
        "FOSS"
    }

    fn train_round(&mut self, queries: &[Query]) -> Result<()> {
        if self.iteration == 0 {
            self.foss.bootstrap(queries, 1)?;
        } else {
            self.foss.train_iteration(queries, self.iteration)?;
        }
        self.iteration += 1;
        self.snapshot = Arc::new(self.foss.snapshot());
        Ok(())
    }

    fn plan(&self, query: &Query) -> Result<foss_optimizer::PhysicalPlan> {
        self.snapshot.optimize(query)
    }
}

/// Per-split evaluation of one method.
#[derive(Debug, Clone, Default)]
pub struct SplitEval {
    /// Workload relevant latency.
    pub wrl: f64,
    /// Geometric mean relevant latency.
    pub gmrl: f64,
    /// Total learned runtime (latency + optimisation, work units ≡ µs → s).
    pub runtime_s: f64,
    /// Per-query optimisation times (µs) — feeds Fig. 6.
    pub opt_times_us: Vec<f64>,
}

/// Evaluate `method` on `queries`, comparing against the expert.
///
/// Takes `&dyn` — evaluation only plans (read-only since the serving
/// redesign) and never trains.
pub fn evaluate_on(
    exp: &Experiment,
    method: &dyn LearnedOptimizer,
    queries: &[Query],
) -> Result<SplitEval> {
    let mut outcomes = Vec::with_capacity(queries.len());
    let mut opt_times = Vec::with_capacity(queries.len());
    for query in queries {
        // Expert measurement.
        let e0 = Instant::now();
        let expert_plan = exp.workload.optimizer.optimize(query)?;
        let expert_opt_us = e0.elapsed().as_secs_f64() * 1e6;
        let expert = exp.executor.execute(query, &expert_plan, None)?;
        // Learned method measurement.
        let t0 = Instant::now();
        let plan = method.plan(query)?;
        let opt_us = t0.elapsed().as_secs_f64() * 1e6;
        let budget = expert.latency * EVAL_TIMEOUT_FACTOR;
        let learned_latency = match exp.executor.execute(query, &plan, Some(budget)) {
            Ok(out) => out.latency,
            Err(FossError::Timeout { .. }) => budget,
            Err(e) => return Err(e),
        };
        opt_times.push(opt_us);
        outcomes.push(QueryOutcome {
            learned_latency,
            expert_latency: expert.latency,
            learned_opt_time: opt_us,
            expert_opt_time: expert_opt_us,
        });
    }
    let runtime_s = outcomes
        .iter()
        .map(|o| (o.learned_latency + o.learned_opt_time) / 1e6)
        .sum();
    Ok(SplitEval {
        wrl: workload_relevant_latency(&outcomes),
        gmrl: geometric_mean_relevant_latency(&outcomes),
        runtime_s,
        opt_times_us: opt_times,
    })
}

/// Simple percentile over a sample (linear interpolation), shared with the
/// serving metrics via [`foss_common::percentile`]. Returns `0.0` for an
/// empty sample set — a defined value instead of the panic this used to be,
/// so figure runners and metrics reporters tolerate empty splits.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    foss_common::percentile(samples, p).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_baselines::PostgresBaseline;

    #[test]
    fn experiment_builds_and_expert_scores_unity() {
        let exp = Experiment::new("tpcdslite", WorkloadSpec::tiny(3)).unwrap();
        let pg = PostgresBaseline::new(exp.workload.optimizer.clone());
        let queries: Vec<_> = exp.workload.test.iter().take(4).cloned().collect();
        let eval = evaluate_on(&exp, &pg, &queries).unwrap();
        // The expert against itself: latency ratios are exactly 1; WRL only
        // differs through measured planning wall time.
        assert!((eval.gmrl - 1.0).abs() < 1e-9, "gmrl={}", eval.gmrl);
        assert!(eval.wrl > 0.5 && eval.wrl < 2.0, "wrl={}", eval.wrl);
        assert_eq!(eval.opt_times_us.len(), 4);
    }

    #[test]
    fn unknown_workload_rejected_with_name_listing() {
        let err = match Experiment::new("nope", WorkloadSpec::tiny(1)) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("bogus workload name should not build"),
        };
        // The registry error teaches the valid names.
        assert!(
            err.contains("dsblite") && err.contains("skewstress"),
            "{err}"
        );
    }

    #[test]
    fn new_workloads_build_experiments() {
        for name in ["dsblite", "skewstress"] {
            let exp = Experiment::new(name, WorkloadSpec::tiny(4)).unwrap();
            assert_eq!(exp.workload.name, name);
            assert!(!exp.workload.test.is_empty());
        }
    }

    #[test]
    fn percentile_interpolates() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert!((percentile(&s, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_of_empty_samples_is_zero() {
        // Used to panic; the serving metrics registry needs a defined value
        // when no queries have completed yet.
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
    }

    #[test]
    fn foss_adapter_trains_and_plans() {
        let exp = Experiment::new("tpcdslite", WorkloadSpec::tiny(5)).unwrap();
        let cfg = FossConfig {
            episodes_per_update: 4,
            ..FossConfig::tiny()
        };
        let mut foss = FossAdapter::new(exp.foss(cfg));
        let queries: Vec<_> = exp.workload.train.iter().take(3).cloned().collect();
        foss.train_round(&queries).unwrap(); // bootstrap
        foss.train_round(&queries).unwrap(); // one iteration
        let eval = evaluate_on(&exp, &foss, &queries[..2]).unwrap();
        assert!(eval.gmrl > 0.0);
    }

    #[test]
    fn foss_adapter_plans_match_trainer_inference_exactly() {
        // The redesign's regression guard: the snapshot the adapter serves
        // must produce bit-identical plans to direct trainer inference.
        let exp = Experiment::new("tpcdslite", WorkloadSpec::tiny(9)).unwrap();
        let cfg = FossConfig {
            episodes_per_update: 4,
            ..FossConfig::tiny()
        };
        let mut foss = FossAdapter::new(exp.foss(cfg));
        let queries: Vec<_> = exp.workload.train.iter().take(2).cloned().collect();
        foss.train_round(&queries).unwrap();
        for q in exp.workload.test.iter().take(3) {
            let served = foss.plan(q).unwrap();
            let direct = foss.foss.optimize(q).unwrap();
            assert_eq!(served.fingerprint(), direct.fingerprint());
        }
    }
}
