//! Statistical acceptance tests for the correlation-planting generators.
//!
//! [`Distribution::Correlated`] and [`Distribution::ZipfJoint`] exist to
//! plant *measurable* skew and cross-column dependence (the properties DSB
//! adds on top of TPC-DS). These tests verify, under a deterministic seed,
//! that the generated data actually carries the requested statistics:
//!
//! * Spearman rank correlation between a `Correlated` column and its source
//!   tracks the requested `rho`,
//! * a `ZipfJoint` column's marginal passes a chi-square goodness-of-fit
//!   test against the requested Zipf law (and the same test *rejects* a
//!   uniform law, so the check has power),
//! * conditioning on the source column concentrates `ZipfJoint` join keys —
//!   the dependence that breaks independence-assuming estimators.

use foss_storage::{ColumnSpec, Distribution, Table, TableGenerator};

fn gen(seed: u64, rows: usize, specs: &[ColumnSpec]) -> Table {
    TableGenerator::new(seed)
        .generate("stat_t", rows, specs)
        .unwrap()
}

/// Average ranks (ties share the mean rank), 1-based.
fn average_ranks(vals: &[i64]) -> Vec<f64> {
    let n = vals.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| vals[i]);
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && vals[idx[j + 1]] == vals[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's rho: Pearson correlation of the rank vectors.
fn spearman(a: &[i64], b: &[i64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let (ra, rb) = (average_ranks(a), average_ranks(b));
    let n = ra.len() as f64;
    let (ma, mb) = (ra.iter().sum::<f64>() / n, rb.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

/// Chi-square statistic of observed key counts against a probability vector,
/// with tail categories pooled so every expected count is ≥ 5. Returns
/// `(statistic, degrees_of_freedom)`.
fn chi_square(observed: &[i64], probs: &[f64]) -> (f64, usize) {
    let total: f64 = observed.len() as f64;
    let mut counts = vec![0u64; probs.len()];
    for &v in observed {
        counts[v as usize] += 1;
    }
    let mut stat = 0.0;
    let mut bins = 0usize;
    let mut pool_obs = 0.0;
    let mut pool_exp = 0.0;
    for (k, &p) in probs.iter().enumerate() {
        pool_obs += counts[k] as f64;
        pool_exp += p * total;
        if pool_exp >= 5.0 {
            stat += (pool_obs - pool_exp).powi(2) / pool_exp;
            bins += 1;
            pool_obs = 0.0;
            pool_exp = 0.0;
        }
    }
    if pool_exp > 0.0 {
        stat += (pool_obs - pool_exp).powi(2) / pool_exp;
        bins += 1;
    }
    (stat, bins.saturating_sub(1))
}

/// Zipf pmf over ranks `[0, n)` with exponent `s`.
fn zipf_pmf(n: usize, s: f64) -> Vec<f64> {
    let mut p: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = p.iter().sum();
    for v in &mut p {
        *v /= total;
    }
    p
}

#[test]
fn correlated_rho_dials_rank_correlation() {
    let rows = 8000;
    let specs = |rho: f64| {
        [
            ColumnSpec::new("src", Distribution::Uniform { lo: 0, hi: 99 }),
            ColumnSpec::new(
                "cor",
                Distribution::Correlated {
                    source: 0,
                    lo: 0,
                    hi: 99,
                    rho,
                },
            ),
        ]
    };
    let mut measured = Vec::new();
    for rho in [0.0, 0.5, 0.9] {
        let t = gen(1234, rows, &specs(rho));
        measured.push(spearman(t.column(0).values(), t.column(1).values()));
    }
    assert!(
        measured[0].abs() < 0.08,
        "rho=0 should be uncorrelated, got {}",
        measured[0]
    );
    assert!(
        measured[2] > 0.8,
        "rho=0.9 should be strongly rank-correlated, got {}",
        measured[2]
    );
    assert!(
        measured[0] < measured[1] && measured[1] < measured[2],
        "rank correlation must increase with rho: {measured:?}"
    );
}

#[test]
fn zipf_joint_marginal_passes_chi_square_against_requested_law() {
    // Source Zipf-skewed over the same domain ⇒ the ZipfJoint marginal is a
    // mixture of two identical Zipf laws, i.e. exactly the requested law.
    let (n, s, rows) = (50u64, 1.2f64, 20_000usize);
    let t = gen(
        777,
        rows,
        &[
            ColumnSpec::new("src", Distribution::ForeignKeyZipf { target_rows: n, s }),
            ColumnSpec::new(
                "fk",
                Distribution::ZipfJoint {
                    target_rows: n,
                    s,
                    source: 0,
                    rho: 0.6,
                },
            ),
        ],
    );
    let fk = t.column(1).values();
    let probs = zipf_pmf(n as usize, s);
    let (stat, df) = chi_square(fk, &probs);
    // ~5σ above the mean of a χ²(df) distribution — astronomically unlikely
    // to trip by chance under the requested law, but a uniform or wrongly
    // skewed generator lands orders of magnitude above it (checked below).
    let threshold = df as f64 + 5.0 * (2.0 * df as f64).sqrt();
    assert!(
        stat < threshold,
        "chi-square {stat:.1} exceeds {threshold:.1} (df={df})"
    );
    // Power check: the same data must *fail* a uniform-law test decisively.
    let uniform = vec![1.0 / n as f64; n as usize];
    let (ustat, udf) = chi_square(fk, &uniform);
    let uthreshold = udf as f64 + 5.0 * (2.0 * udf as f64).sqrt();
    assert!(
        ustat > 4.0 * uthreshold,
        "test has no power: uniform chi-square only {ustat:.1} (df={udf})"
    );
}

#[test]
fn zipf_joint_conditioning_concentrates_join_keys() {
    // The estimation-breaking property: among rows whose *source* value is
    // hot, the join key is far more concentrated than unconditionally.
    let (n, s) = (100u64, 1.1f64);
    let t = gen(
        4242,
        15_000,
        &[
            ColumnSpec::new("src", Distribution::ForeignKeyZipf { target_rows: n, s }),
            ColumnSpec::new(
                "fk",
                Distribution::ZipfJoint {
                    target_rows: n,
                    s,
                    source: 0,
                    rho: 0.7,
                },
            ),
        ],
    );
    let (src, fk) = (t.column(0).values(), t.column(1).values());
    let hot_rows: Vec<usize> = (0..src.len()).filter(|&i| src[i] == 0).collect();
    assert!(hot_rows.len() > 100, "hot source value too rare to test");
    let cond = hot_rows.iter().filter(|&&i| fk[i] == 0).count() as f64 / hot_rows.len() as f64;
    let uncond = fk.iter().filter(|&&v| v == 0).count() as f64 / fk.len() as f64;
    assert!(
        cond >= 0.7,
        "coupling lost: P(fk=0 | src=0) = {cond:.2} < rho"
    );
    assert!(
        cond > 1.5 * uncond,
        "conditioning barely moves the key distribution: {cond:.2} vs {uncond:.2}"
    );
}

#[test]
fn correlation_generators_are_deterministic_and_rho_preserves_the_stream() {
    let specs = |rho: f64| {
        [
            ColumnSpec::new("src", Distribution::Zipf { n: 40, s: 1.0 }),
            ColumnSpec::new(
                "cor",
                Distribution::Correlated {
                    source: 0,
                    lo: 0,
                    hi: 39,
                    rho,
                },
            ),
            ColumnSpec::new(
                "fk",
                Distribution::ZipfJoint {
                    target_rows: 40,
                    s: 1.3,
                    source: 0,
                    rho,
                },
            ),
            ColumnSpec::new("after", Distribution::Uniform { lo: 0, hi: 999 }),
        ]
    };
    let a = gen(9, 500, &specs(0.8));
    let b = gen(9, 500, &specs(0.8));
    for c in 0..4 {
        assert_eq!(a.column(c).values(), b.column(c).values(), "column {c}");
    }
    // Changing rho must not reshuffle RNG draws feeding *later* columns.
    let c = gen(9, 500, &specs(0.1));
    assert_eq!(a.column(0).values(), c.column(0).values());
    assert_eq!(a.column(3).values(), c.column(3).values());
    assert_ne!(a.column(1).values(), c.column(1).values());
}
