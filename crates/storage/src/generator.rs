//! Synthetic data generation.
//!
//! The paper's workloads (IMDb/JOB, TPC-DS, Stack) are hard for traditional
//! optimizers because value frequencies are heavy-tailed and columns are
//! correlated across joins, which breaks the uniformity and independence
//! assumptions of textbook cardinality estimation. The generators here plant
//! exactly those properties:
//!
//! * [`Distribution::Zipf`] — heavy-tailed attribute values (IMDb keywords,
//!   Stack tags),
//! * [`Distribution::ForeignKeyZipf`] — skewed join fan-outs (a few movies
//!   have thousands of cast entries),
//! * [`Distribution::Derived`] — intra-table correlation (production year
//!   correlates with company id), which compounds estimation error when both
//!   columns are filtered.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::column::Column;
use crate::table::Table;
use foss_common::Result;

/// How one column's values are drawn.
#[derive(Debug, Clone)]
pub enum Distribution {
    /// `0, 1, 2, ...` — primary keys.
    SequentialId,
    /// Uniform integers in `[lo, hi]`.
    Uniform { lo: i64, hi: i64 },
    /// Zipf-distributed ranks in `[0, n)`; `s` is the skew exponent
    /// (s = 0 degenerates to uniform, s ≈ 1 is classic Zipf).
    Zipf { n: u64, s: f64 },
    /// Foreign key referencing `[0, target_rows)` uniformly.
    ForeignKeyUniform { target_rows: u64 },
    /// Foreign key referencing `[0, target_rows)` with Zipf skew: low ids are
    /// referenced far more often, giving a few "hub" rows huge join fan-out.
    ForeignKeyZipf { target_rows: u64, s: f64 },
    /// Deterministic function of another column in the same table plus noise:
    /// `v = (base * mul + offset + U[0, noise]) % modulus`. Creates the
    /// cross-column correlation that defeats independence assumptions.
    Derived {
        /// Index of the source column (must precede this one in the spec list).
        source: usize,
        /// Multiplier applied to the source value.
        mul: i64,
        /// Constant offset.
        offset: i64,
        /// Uniform noise magnitude (0 = perfectly correlated).
        noise: u64,
        /// Values are reduced modulo this (must be > 0).
        modulus: u64,
    },
    /// Mixture with *tunable* correlation strength: with probability `rho`
    /// the value is the source column's value folded monotonically into
    /// `[lo, hi]` (`lo + source mod span`), otherwise an independent uniform
    /// draw over the same domain. Unlike [`Distribution::Derived`] (a pure
    /// function plus additive noise), `rho` dials the rank correlation
    /// continuously from 0 (independent) to ~1 (functional dependency) —
    /// the knob DSB turns on its correlated column pairs.
    Correlated {
        /// Index of the source column (must precede this one in the spec list).
        source: usize,
        /// Inclusive domain lower bound.
        lo: i64,
        /// Inclusive domain upper bound.
        hi: i64,
        /// Probability of copying the (folded) source value; in `[0, 1]`.
        rho: f64,
    },
    /// Jointly-skewed foreign key: a Zipf draw over `[0, target_rows)` that
    /// is, with probability `rho`, replaced by the source column's value
    /// folded into the key domain. When the source is itself Zipf-skewed
    /// over the same domain the marginal stays Zipf while the two columns
    /// become strongly dependent — hot filter values co-occur with hot join
    /// keys, so a predicate on the source column concentrates the join
    /// fan-out exactly where an independence-assuming estimator least
    /// expects it.
    ZipfJoint {
        /// Referenced table's row count; keys land in `[0, target_rows)`.
        target_rows: u64,
        /// Zipf exponent of the independent component.
        s: f64,
        /// Index of the source column (must precede this one in the spec list).
        source: usize,
        /// Probability of coupling to the source; in `[0, 1]`.
        rho: f64,
    },
}

/// Specification for one generated column.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Sampling distribution.
    pub dist: Distribution,
}

impl ColumnSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, dist: Distribution) -> Self {
        Self {
            name: name.into(),
            dist,
        }
    }
}

/// Draws Zipf ranks via inverse-CDF over a precomputed table.
///
/// Workload tables are ≤ ~200k rows, so an explicit CDF is both exact and
/// cheap; sampling is a binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over ranks `[0, n)` with exponent `s ≥ 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Sample one rank in `[0, n)`.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Generates whole tables from column specs with a fixed seed.
#[derive(Debug, Clone, Copy)]
pub struct TableGenerator {
    seed: u64,
}

impl TableGenerator {
    /// A generator rooted at `seed`; each table derives its own RNG from the
    /// table name so schema changes do not reshuffle sibling tables.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generate `rows` rows for table `name` from `specs`.
    pub fn generate(&self, name: &str, rows: usize, specs: &[ColumnSpec]) -> Result<Table> {
        let stream = foss_common::SeedStream::new(self.seed);
        let mut rng = StdRng::seed_from_u64(stream.derive_indexed("table", hash_name(name)));
        let mut columns: Vec<(String, Column)> = Vec::with_capacity(specs.len());
        let mut raw: Vec<Vec<i64>> = Vec::with_capacity(specs.len());
        for (ci, spec) in specs.iter().enumerate() {
            let mut vals = Vec::with_capacity(rows);
            match &spec.dist {
                Distribution::SequentialId => {
                    vals.extend(0..rows as i64);
                }
                Distribution::Uniform { lo, hi } => {
                    for _ in 0..rows {
                        vals.push(rng.random_range(*lo..=*hi));
                    }
                }
                Distribution::Zipf { n, s } => {
                    let z = ZipfSampler::new(*n, *s);
                    for _ in 0..rows {
                        vals.push(z.sample(&mut rng) as i64);
                    }
                }
                Distribution::ForeignKeyUniform { target_rows } => {
                    let hi = (*target_rows).max(1) as i64 - 1;
                    for _ in 0..rows {
                        vals.push(rng.random_range(0..=hi));
                    }
                }
                Distribution::ForeignKeyZipf { target_rows, s } => {
                    let z = ZipfSampler::new((*target_rows).max(1), *s);
                    for _ in 0..rows {
                        vals.push(z.sample(&mut rng) as i64);
                    }
                }
                Distribution::Derived {
                    source,
                    mul,
                    offset,
                    noise,
                    modulus,
                } => {
                    assert!(
                        *source < ci,
                        "Derived column must reference an earlier column"
                    );
                    assert!(*modulus > 0, "Derived modulus must be positive");
                    let src = &raw[*source];
                    for &base in src.iter().take(rows) {
                        let jitter = if *noise == 0 {
                            0
                        } else {
                            rng.random_range(0..*noise) as i64
                        };
                        let v = base.wrapping_mul(*mul).wrapping_add(*offset + jitter);
                        vals.push(v.rem_euclid(*modulus as i64));
                    }
                }
                Distribution::Correlated {
                    source,
                    lo,
                    hi,
                    rho,
                } => {
                    assert!(
                        *source < ci,
                        "Correlated column must reference an earlier column"
                    );
                    assert!(lo <= hi, "Correlated domain must be non-empty");
                    assert!((0.0..=1.0).contains(rho), "rho must be a probability");
                    let span = hi - lo + 1;
                    let src = &raw[*source];
                    for &base in src.iter().take(rows) {
                        // Draw both branches unconditionally so the RNG
                        // stream (and thus every later column) is identical
                        // for every rho.
                        let fresh = rng.random_range(*lo..=*hi);
                        let u: f64 = rng.random();
                        vals.push(if u < *rho {
                            lo + base.rem_euclid(span)
                        } else {
                            fresh
                        });
                    }
                }
                Distribution::ZipfJoint {
                    target_rows,
                    s,
                    source,
                    rho,
                } => {
                    assert!(
                        *source < ci,
                        "ZipfJoint column must reference an earlier column"
                    );
                    assert!((0.0..=1.0).contains(rho), "rho must be a probability");
                    let n = (*target_rows).max(1);
                    let z = ZipfSampler::new(n, *s);
                    let src = &raw[*source];
                    for &base in src.iter().take(rows) {
                        let fresh = z.sample(&mut rng) as i64;
                        let u: f64 = rng.random();
                        vals.push(if u < *rho {
                            base.rem_euclid(n as i64)
                        } else {
                            fresh
                        });
                    }
                }
            }
            raw.push(vals.clone());
            columns.push((spec.name.clone(), Column::new(vals)));
        }
        Table::new(name, columns)
    }
}

fn hash_name(name: &str) -> u64 {
    foss_common::fx_hash_one(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(rows: usize, specs: &[ColumnSpec]) -> Table {
        TableGenerator::new(42).generate("t", rows, specs).unwrap()
    }

    #[test]
    fn sequential_ids_are_dense() {
        let t = gen(5, &[ColumnSpec::new("id", Distribution::SequentialId)]);
        assert_eq!(t.column(0).values(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = gen(
            1000,
            &[ColumnSpec::new(
                "u",
                Distribution::Uniform { lo: -3, hi: 3 },
            )],
        );
        assert!(t.column(0).values().iter().all(|&v| (-3..=3).contains(&v)));
        assert!(t.column(0).distinct_count() > 1);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let t = gen(
            5000,
            &[ColumnSpec::new("z", Distribution::Zipf { n: 100, s: 1.2 })],
        );
        let zeros = t.column(0).values().iter().filter(|&&v| v == 0).count();
        let tails = t.column(0).values().iter().filter(|&&v| v >= 50).count();
        assert!(
            zeros > tails,
            "rank 0 ({zeros}) should dominate the tail ({tails})"
        );
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let t = gen(
            10_000,
            &[ColumnSpec::new("z", Distribution::Zipf { n: 10, s: 0.0 })],
        );
        let zeros = t.column(0).values().iter().filter(|&&v| v == 0).count();
        // ~1000 expected; allow generous slack.
        assert!((600..1600).contains(&zeros), "zeros={zeros}");
    }

    #[test]
    fn fk_values_reference_target() {
        let t = gen(
            500,
            &[ColumnSpec::new(
                "fk",
                Distribution::ForeignKeyZipf {
                    target_rows: 50,
                    s: 1.0,
                },
            )],
        );
        assert!(t.column(0).values().iter().all(|&v| (0..50).contains(&v)));
    }

    #[test]
    fn derived_column_is_correlated() {
        let t = gen(
            200,
            &[
                ColumnSpec::new("a", Distribution::Uniform { lo: 0, hi: 99 }),
                ColumnSpec::new(
                    "b",
                    Distribution::Derived {
                        source: 0,
                        mul: 1,
                        offset: 0,
                        noise: 0,
                        modulus: 100,
                    },
                ),
            ],
        );
        assert_eq!(t.column(0).values(), t.column(1).values());
    }

    #[test]
    fn generation_is_deterministic() {
        let specs = [ColumnSpec::new(
            "u",
            Distribution::Uniform { lo: 0, hi: 1000 },
        )];
        let a = TableGenerator::new(7).generate("x", 100, &specs).unwrap();
        let b = TableGenerator::new(7).generate("x", 100, &specs).unwrap();
        assert_eq!(a.column(0).values(), b.column(0).values());
        let c = TableGenerator::new(8).generate("x", 100, &specs).unwrap();
        assert_ne!(a.column(0).values(), c.column(0).values());
    }

    #[test]
    fn different_tables_get_different_streams() {
        let specs = [ColumnSpec::new(
            "u",
            Distribution::Uniform { lo: 0, hi: 1000 },
        )];
        let g = TableGenerator::new(7);
        let a = g.generate("x", 50, &specs).unwrap();
        let b = g.generate("y", 50, &specs).unwrap();
        assert_ne!(a.column(0).values(), b.column(0).values());
    }
}
