//! Per-column access-path structures.
//!
//! `HashIndex` models a hash/B-tree equality lookup (used by index
//! nested-loop joins); `SortedIndex` models a B-tree range scan. Both return
//! *row ids* so the executor can fetch sibling columns.

use foss_common::FxHashMap;

/// Equality index: value → row ids.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: FxHashMap<i64, Vec<u32>>,
}

impl HashIndex {
    /// Build from a column slice.
    pub fn build(values: &[i64]) -> Self {
        let mut map: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
        for (row, &v) in values.iter().enumerate() {
            map.entry(v).or_default().push(row as u32);
        }
        Self { map }
    }

    /// Row ids matching `value` (empty slice when absent).
    #[inline]
    pub fn lookup(&self, value: i64) -> &[u32] {
        self.map.get(&value).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Range index: (value, row id) pairs sorted by value.
#[derive(Debug, Clone, Default)]
pub struct SortedIndex {
    entries: Vec<(i64, u32)>,
}

impl SortedIndex {
    /// Build from a column slice.
    pub fn build(values: &[i64]) -> Self {
        let mut entries: Vec<(i64, u32)> = values
            .iter()
            .enumerate()
            .map(|(row, &v)| (v, row as u32))
            .collect();
        entries.sort_unstable();
        Self { entries }
    }

    /// Row ids with value in `[lo, hi]` (inclusive bounds).
    pub fn range(&self, lo: i64, hi: i64) -> impl Iterator<Item = u32> + '_ {
        let start = self.entries.partition_point(|&(v, _)| v < lo);
        self.entries[start..]
            .iter()
            .take_while(move |&&(v, _)| v <= hi)
            .map(|&(_, row)| row)
    }

    /// Row ids equal to `value`.
    pub fn equal(&self, value: i64) -> impl Iterator<Item = u32> + '_ {
        self.range(value, value)
    }

    /// Total entries (== rows in the indexed column).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_lookup() {
        let idx = HashIndex::build(&[5, 7, 5, 9]);
        assert_eq!(idx.lookup(5), &[0, 2]);
        assert_eq!(idx.lookup(7), &[1]);
        assert!(idx.lookup(42).is_empty());
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn sorted_index_range() {
        let idx = SortedIndex::build(&[30, 10, 20, 10]);
        let rows: Vec<u32> = idx.range(10, 20).collect();
        assert_eq!(rows, vec![1, 3, 2]);
        let eq: Vec<u32> = idx.equal(10).collect();
        assert_eq!(eq, vec![1, 3]);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn sorted_index_empty_range() {
        let idx = SortedIndex::build(&[1, 2, 3]);
        assert_eq!(idx.range(10, 20).count(), 0);
        // Degenerate hi < lo range.
        assert_eq!(idx.range(3, 1).count(), 0);
    }
}
