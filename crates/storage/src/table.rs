//! A named collection of equal-length columns plus optional indexes.

use foss_common::{FossError, FxHashMap, Result};

use crate::column::Column;
use crate::index::{HashIndex, SortedIndex};

/// A base table: columns by name, with lazily built per-column indexes.
///
/// Indexes model PostgreSQL's B-tree / hash access paths: the optimizer may
/// choose an index scan or an index nested-loop join when one exists.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    column_names: Vec<String>,
    columns: Vec<Column>,
    by_name: FxHashMap<String, usize>,
    hash_indexes: FxHashMap<usize, HashIndex>,
    sorted_indexes: FxHashMap<usize, SortedIndex>,
}

impl Table {
    /// Build a table; all columns must have the same length.
    pub fn new(name: impl Into<String>, columns: Vec<(String, Column)>) -> Result<Self> {
        let name = name.into();
        if let Some(first) = columns.first() {
            let n = first.1.len();
            if let Some((bad, _)) = columns.iter().find(|(_, c)| c.len() != n) {
                return Err(FossError::InvalidQuery(format!(
                    "column {bad} length differs from {n} in table {name}"
                )));
            }
        }
        let mut by_name = FxHashMap::default();
        let mut column_names = Vec::with_capacity(columns.len());
        let mut cols = Vec::with_capacity(columns.len());
        for (i, (cname, col)) in columns.into_iter().enumerate() {
            if by_name.insert(cname.clone(), i).is_some() {
                return Err(FossError::InvalidQuery(format!(
                    "duplicate column {cname} in table {name}"
                )));
            }
            column_names.push(cname);
            cols.push(col);
        }
        Ok(Self {
            name,
            column_names,
            columns: cols,
            by_name,
            hash_indexes: FxHashMap::default(),
            sorted_indexes: FxHashMap::default(),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Position of column `name`.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| FossError::UnknownName(format!("{}.{}", self.name, name)))
    }

    /// Column by position.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Build (or rebuild) a hash index on column `idx`.
    pub fn build_hash_index(&mut self, idx: usize) {
        let index = HashIndex::build(self.columns[idx].values());
        self.hash_indexes.insert(idx, index);
    }

    /// Build (or rebuild) a sorted index on column `idx`.
    pub fn build_sorted_index(&mut self, idx: usize) {
        let index = SortedIndex::build(self.columns[idx].values());
        self.sorted_indexes.insert(idx, index);
    }

    /// The hash index on column `idx`, when built.
    pub fn hash_index(&self, idx: usize) -> Option<&HashIndex> {
        self.hash_indexes.get(&idx)
    }

    /// The sorted index on column `idx`, when built.
    pub fn sorted_index(&self, idx: usize) -> Option<&SortedIndex> {
        self.sorted_indexes.get(&idx)
    }

    /// True when column `idx` has any index (the optimizer's access-path check).
    pub fn has_index(&self, idx: usize) -> bool {
        self.hash_indexes.contains_key(&idx) || self.sorted_indexes.contains_key(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Table {
        Table::new(
            "t",
            vec![
                ("id".into(), Column::new(vec![1, 2, 3])),
                ("v".into(), Column::new(vec![10, 20, 30])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let t = demo();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.column_index("v").unwrap(), 1);
        assert_eq!(t.column_by_name("id").unwrap().get(2), 3);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let r = Table::new(
            "bad",
            vec![
                ("a".into(), Column::new(vec![1])),
                ("b".into(), Column::new(vec![1, 2])),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn duplicate_column_rejected() {
        let r = Table::new(
            "bad",
            vec![
                ("a".into(), Column::new(vec![1])),
                ("a".into(), Column::new(vec![2])),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn unknown_column_errors() {
        let t = demo();
        assert!(t.column_index("nope").is_err());
    }

    #[test]
    fn index_lifecycle() {
        let mut t = demo();
        assert!(!t.has_index(0));
        t.build_hash_index(0);
        assert!(t.has_index(0));
        assert!(t.hash_index(0).is_some());
        assert!(t.sorted_index(0).is_none());
        t.build_sorted_index(1);
        assert!(t.sorted_index(1).is_some());
    }
}
