//! A single integer column.
//!
//! All synthetic workloads use dictionary-encoded `i64` values: join keys,
//! foreign keys and low-cardinality attributes. Keeping one concrete value
//! type keeps the executor's inner loops monomorphic and branch-free.

use serde::{Deserialize, Serialize};

/// A dense `i64` column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    values: Vec<i64>,
}

impl Column {
    /// Build a column from raw values.
    pub fn new(values: Vec<i64>) -> Self {
        Self { values }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the backing slice.
    #[inline]
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Value at `row`. Panics when out of bounds (executor rows are trusted).
    #[inline]
    pub fn get(&self, row: usize) -> i64 {
        self.values[row]
    }

    /// Minimum value, or `None` for an empty column.
    pub fn min(&self) -> Option<i64> {
        self.values.iter().copied().min()
    }

    /// Maximum value, or `None` for an empty column.
    pub fn max(&self) -> Option<i64> {
        self.values.iter().copied().max()
    }

    /// Exact number of distinct values (O(n log n); used at stats-build time
    /// only, never in the executor hot path).
    pub fn distinct_count(&self) -> usize {
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }
}

impl From<Vec<i64>> for Column {
    fn from(values: Vec<i64>) -> Self {
        Self::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = Column::new(vec![3, 1, 2, 1]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.get(2), 2);
        assert_eq!(c.min(), Some(1));
        assert_eq!(c.max(), Some(3));
        assert_eq!(c.distinct_count(), 3);
    }

    #[test]
    fn empty_column_edge_cases() {
        let c = Column::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.min(), None);
        assert_eq!(c.max(), None);
        assert_eq!(c.distinct_count(), 0);
    }
}
