//! In-memory columnar storage and synthetic data generation.
//!
//! The paper evaluates FOSS against PostgreSQL over IMDb, TPC-DS and Stack
//! data. This crate is the storage substrate of our substitution: integer
//! columns held in plain vectors (all workload predicates are equality /
//! range tests over dictionary-encoded values), optional hash and sorted
//! indexes, and generators for the skewed / correlated distributions that
//! make the traditional optimizer's independence assumption fail — the very
//! failure FOSS is designed to repair.

pub mod column;
pub mod generator;
pub mod index;
pub mod table;

pub use column::Column;
pub use generator::{ColumnSpec, Distribution, TableGenerator};
pub use index::{HashIndex, SortedIndex};
pub use table::Table;
