//! Scan predicates over a single relation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A predicate on one column of one relation.
///
/// Workload generators only emit conjunctions of these, matching the
/// select-project-join queries the paper's benchmarks use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// `col = value`
    Eq {
        /// Column index within the relation's table.
        column: usize,
        /// Constant compared against.
        value: i64,
    },
    /// `lo ≤ col ≤ hi` (inclusive)
    Range {
        /// Column index within the relation's table.
        column: usize,
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
}

impl Predicate {
    /// The column this predicate constrains.
    pub fn column(&self) -> usize {
        match self {
            Predicate::Eq { column, .. } | Predicate::Range { column, .. } => *column,
        }
    }

    /// Evaluate against a concrete value.
    #[inline]
    pub fn matches(&self, v: i64) -> bool {
        match *self {
            Predicate::Eq { value, .. } => v == value,
            Predicate::Range { lo, hi, .. } => (lo..=hi).contains(&v),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Eq { column, value } => write!(f, "c{column} = {value}"),
            Predicate::Range { column, lo, hi } => write!(f, "c{column} BETWEEN {lo} AND {hi}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_matches() {
        let p = Predicate::Eq {
            column: 0,
            value: 5,
        };
        assert!(p.matches(5));
        assert!(!p.matches(6));
        assert_eq!(p.column(), 0);
    }

    #[test]
    fn range_matches_inclusive() {
        let p = Predicate::Range {
            column: 2,
            lo: -1,
            hi: 3,
        };
        assert!(p.matches(-1));
        assert!(p.matches(3));
        assert!(!p.matches(4));
        assert_eq!(p.column(), 2);
    }

    #[test]
    fn display_is_sqlish() {
        assert_eq!(
            Predicate::Eq {
                column: 1,
                value: 9
            }
            .to_string(),
            "c1 = 9"
        );
        assert_eq!(
            Predicate::Range {
                column: 0,
                lo: 1,
                hi: 2
            }
            .to_string(),
            "c0 BETWEEN 1 AND 2"
        );
    }
}
