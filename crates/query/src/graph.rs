//! The query graph: relations, join edges, predicates.

use foss_catalog::Schema;
use foss_common::{FossError, QueryId, Result, TableId};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::predicate::Predicate;

/// One occurrence of a base table in a query (JOB reuses tables, so each
/// occurrence gets its own alias and relation index).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    /// The base table.
    pub table: TableId,
    /// Alias unique within the query (e.g. `mi_idx`).
    pub alias: String,
    /// Conjunctive scan predicates on this relation.
    pub predicates: Vec<Predicate>,
}

/// An equi-join edge `rel[left].columns[left_column] = rel[right].columns[right_column]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinEdge {
    /// Index into [`Query::relations`].
    pub left: usize,
    /// Column index within the left relation's table.
    pub left_column: usize,
    /// Index into [`Query::relations`].
    pub right: usize,
    /// Column index within the right relation's table.
    pub right_column: usize,
}

impl JoinEdge {
    /// The edge with endpoints swapped (same join).
    pub fn flipped(self) -> Self {
        Self {
            left: self.right,
            left_column: self.right_column,
            right: self.left,
            right_column: self.left_column,
        }
    }

    /// True when the edge touches relation `rel`.
    pub fn touches(&self, rel: usize) -> bool {
        self.left == rel || self.right == rel
    }
}

impl foss_common::Codec for JoinEdge {
    fn encode(&self, w: &mut foss_common::ByteWriter) {
        w.put_usize(self.left);
        w.put_usize(self.left_column);
        w.put_usize(self.right);
        w.put_usize(self.right_column);
    }
    fn decode(r: &mut foss_common::ByteReader<'_>) -> Result<Self> {
        Ok(Self {
            left: r.get_usize()?,
            left_column: r.get_usize()?,
            right: r.get_usize()?,
            right_column: r.get_usize()?,
        })
    }
}

/// A column reference `relations[rel].columns[column]` in a query's
/// projection or aggregation list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColRef {
    /// Index into [`Query::relations`].
    pub rel: usize,
    /// Column index within that relation's table.
    pub column: usize,
}

/// An aggregate function over the join result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` — no input column.
    Count,
    /// `SUM(col)`.
    Sum(ColRef),
    /// `MIN(col)`.
    Min(ColRef),
    /// `MAX(col)`.
    Max(ColRef),
}

impl AggFunc {
    /// The input column, if the function reads one.
    pub fn input(&self) -> Option<ColRef> {
        match *self {
            AggFunc::Count => None,
            AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) => Some(c),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::Count => write!(f, "COUNT(*)"),
            AggFunc::Sum(c) => write!(f, "SUM(r{}.c{})", c.rel, c.column),
            AggFunc::Min(c) => write!(f, "MIN(r{}.c{})", c.rel, c.column),
            AggFunc::Max(c) => write!(f, "MAX(r{}.c{})", c.rel, c.column),
        }
    }
}

/// The aggregation block of a query: an optional single group-by key and a
/// list of aggregate functions evaluated per group (or globally when no
/// group key is given). Absent on plain `COUNT(*)` queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggSpec {
    /// Group rows by this column's value; `None` aggregates globally.
    pub group_by: Option<ColRef>,
    /// Aggregates evaluated per group, in projection order.
    pub aggs: Vec<AggFunc>,
}

impl AggSpec {
    /// The default aggregation every query carries implicitly: a global
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        Self {
            group_by: None,
            aggs: vec![AggFunc::Count],
        }
    }
}

/// A select-project-join query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Stable id within its workload.
    pub id: QueryId,
    /// Template number this query was instantiated from (for reporting).
    pub template: u32,
    /// Base relations.
    pub relations: Vec<Relation>,
    /// Equi-join edges; the join graph must be connected.
    pub joins: Vec<JoinEdge>,
    /// Aggregation over the join result; `None` means plain `COUNT(*)`.
    pub agg: Option<AggSpec>,
}

impl Query {
    /// Number of relations (the paper's `n`).
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Join edges incident to relation `rel`.
    pub fn joins_of(&self, rel: usize) -> impl Iterator<Item = &JoinEdge> {
        self.joins.iter().filter(move |e| e.touches(rel))
    }

    /// True when relations `a` and `b` are directly joinable.
    pub fn joinable(&self, a: usize, b: usize) -> bool {
        self.joins
            .iter()
            .any(|e| (e.left == a && e.right == b) || (e.left == b && e.right == a))
    }

    /// All join edges between the relation set `left` and relation `right`.
    pub fn edges_between_set(&self, left: &[usize], right: usize) -> Vec<JoinEdge> {
        self.joins
            .iter()
            .filter_map(|e| {
                if e.right == right && left.contains(&e.left) {
                    Some(*e)
                } else if e.left == right && left.contains(&e.right) {
                    Some(e.flipped())
                } else {
                    None
                }
            })
            .collect()
    }

    /// The distinct columns the aggregation block projects out of the join
    /// result (group key first, then aggregate inputs, first-use order).
    /// Empty for plain `COUNT(*)` queries, which project nothing.
    pub fn projection(&self) -> Vec<ColRef> {
        let mut cols: Vec<ColRef> = Vec::new();
        if let Some(spec) = &self.agg {
            let mut push = |c: ColRef| {
                if !cols.contains(&c) {
                    cols.push(c);
                }
            };
            if let Some(g) = spec.group_by {
                push(g);
            }
            for a in &spec.aggs {
                if let Some(c) = a.input() {
                    push(c);
                }
            }
        }
        cols
    }

    /// Validate structure against a schema: column bounds, connectivity.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.relations.is_empty() {
            return Err(FossError::InvalidQuery("query with no relations".into()));
        }
        for rel in &self.relations {
            let ncols = schema.table(rel.table).columns.len();
            for p in &rel.predicates {
                if p.column() >= ncols {
                    return Err(FossError::InvalidQuery(format!(
                        "predicate column {} out of range for {}",
                        p.column(),
                        rel.alias
                    )));
                }
            }
        }
        for e in &self.joins {
            for (r, c) in [(e.left, e.left_column), (e.right, e.right_column)] {
                let rel = self.relations.get(r).ok_or_else(|| {
                    FossError::InvalidQuery(format!("join references relation {r}"))
                })?;
                if c >= schema.table(rel.table).columns.len() {
                    return Err(FossError::InvalidQuery(format!(
                        "join column {c} out of range for {}",
                        rel.alias
                    )));
                }
            }
        }
        if let Some(spec) = &self.agg {
            if spec.aggs.is_empty() {
                return Err(FossError::InvalidQuery(
                    "aggregation block with no aggregate functions".into(),
                ));
            }
            let cols = spec.group_by.iter().copied();
            for c in cols.chain(spec.aggs.iter().filter_map(|a| a.input())) {
                let rel = self.relations.get(c.rel).ok_or_else(|| {
                    FossError::InvalidQuery(format!("aggregation references relation {}", c.rel))
                })?;
                if c.column >= schema.table(rel.table).columns.len() {
                    return Err(FossError::InvalidQuery(format!(
                        "aggregation column {} out of range for {}",
                        c.column, rel.alias
                    )));
                }
            }
        }
        if !self.is_connected() {
            return Err(FossError::InvalidQuery("join graph is disconnected".into()));
        }
        Ok(())
    }

    /// True when the join graph is connected (required for left-deep plans
    /// without cross products).
    pub fn is_connected(&self) -> bool {
        let n = self.relations.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(r) = stack.pop() {
            for e in self.joins_of(r) {
                let other = if e.left == r { e.right } else { e.left };
                if !seen[other] {
                    seen[other] = true;
                    stack.push(other);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let aliases: Vec<&str> = self.relations.iter().map(|r| r.alias.as_str()).collect();
        match &self.agg {
            None => write!(f, "SELECT COUNT(*) FROM ")?,
            Some(spec) => {
                let mut items: Vec<String> = Vec::new();
                if let Some(g) = spec.group_by {
                    items.push(format!("{}.c{}", aliases[g.rel], g.column));
                }
                for a in &spec.aggs {
                    items.push(match a.input() {
                        None => "COUNT(*)".into(),
                        Some(c) => {
                            let name = match a {
                                AggFunc::Sum(_) => "SUM",
                                AggFunc::Min(_) => "MIN",
                                AggFunc::Max(_) => "MAX",
                                AggFunc::Count => unreachable!("COUNT has no input"),
                            };
                            format!("{}({}.c{})", name, aliases[c.rel], c.column)
                        }
                    });
                }
                write!(f, "SELECT {} FROM ", items.join(", "))?;
            }
        }
        write!(f, "{}", aliases.join(", "))?;
        let mut conds: Vec<String> = self
            .joins
            .iter()
            .map(|e| {
                format!(
                    "{}.c{} = {}.c{}",
                    aliases[e.left], e.left_column, aliases[e.right], e.right_column
                )
            })
            .collect();
        for r in &self.relations {
            for p in &r.predicates {
                conds.push(format!("{}.{}", r.alias, p));
            }
        }
        if !conds.is_empty() {
            write!(f, " WHERE {}", conds.join(" AND "))?;
        }
        if let Some(g) = self.agg.as_ref().and_then(|s| s.group_by) {
            write!(f, " GROUP BY {}.c{}", aliases[g.rel], g.column)?;
        }
        Ok(())
    }
}

/// Fluent builder used by workload template generators and tests.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    id: QueryId,
    template: u32,
    relations: Vec<Relation>,
    joins: Vec<JoinEdge>,
    agg: Option<AggSpec>,
}

impl QueryBuilder {
    /// Start a query with the given workload id and template number.
    pub fn new(id: QueryId, template: u32) -> Self {
        Self {
            id,
            template,
            relations: Vec::new(),
            joins: Vec::new(),
            agg: None,
        }
    }

    /// Add a relation; returns its index.
    pub fn relation(&mut self, table: TableId, alias: impl Into<String>) -> usize {
        self.relations.push(Relation {
            table,
            alias: alias.into(),
            predicates: Vec::new(),
        });
        self.relations.len() - 1
    }

    /// Add a predicate to relation `rel`.
    pub fn predicate(&mut self, rel: usize, p: Predicate) -> &mut Self {
        self.relations[rel].predicates.push(p);
        self
    }

    /// Add an equi-join edge.
    pub fn join(
        &mut self,
        left: usize,
        left_column: usize,
        right: usize,
        right_column: usize,
    ) -> &mut Self {
        self.joins.push(JoinEdge {
            left,
            left_column,
            right,
            right_column,
        });
        self
    }

    /// Group the result by `relations[rel].columns[column]` (replaces any
    /// previous group key; creates the aggregation block if absent).
    pub fn group_by(&mut self, rel: usize, column: usize) -> &mut Self {
        self.agg
            .get_or_insert_with(|| AggSpec {
                group_by: None,
                aggs: Vec::new(),
            })
            .group_by = Some(ColRef { rel, column });
        self
    }

    /// Append an aggregate function to the projection list.
    pub fn aggregate(&mut self, agg: AggFunc) -> &mut Self {
        self.agg
            .get_or_insert_with(|| AggSpec {
                group_by: None,
                aggs: Vec::new(),
            })
            .aggs
            .push(agg);
        self
    }

    /// Finalise, validating against the schema.
    pub fn build(self, schema: &Schema) -> Result<Query> {
        let q = self.build_unchecked();
        q.validate(schema)?;
        Ok(q)
    }

    /// Finalise without validation (tests for invalid structures).
    pub fn build_unchecked(self) -> Query {
        let mut agg = self.agg;
        // A group key without any aggregate still projects a count per group.
        if let Some(spec) = agg.as_mut() {
            if spec.aggs.is_empty() {
                spec.aggs.push(AggFunc::Count);
            }
        }
        Query {
            id: self.id,
            template: self.template,
            relations: self.relations,
            joins: self.joins,
            agg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, TableDef};

    fn schema3() -> Schema {
        let mut s = Schema::new();
        for name in ["a", "b", "c"] {
            s.add_table(TableDef {
                name: name.into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("fk")],
            })
            .unwrap();
        }
        s
    }

    fn chain_query(s: &Schema) -> Query {
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let a = qb.relation(s.table_id("a").unwrap(), "a");
        let b = qb.relation(s.table_id("b").unwrap(), "b");
        let c = qb.relation(s.table_id("c").unwrap(), "c");
        qb.join(a, 0, b, 1).join(b, 0, c, 1);
        qb.predicate(
            a,
            Predicate::Eq {
                column: 1,
                value: 3,
            },
        );
        qb.build(s).unwrap()
    }

    #[test]
    fn builder_produces_connected_query() {
        let s = schema3();
        let q = chain_query(&s);
        assert_eq!(q.relation_count(), 3);
        assert!(q.is_connected());
        assert!(q.joinable(0, 1));
        assert!(!q.joinable(0, 2));
    }

    #[test]
    fn disconnected_graph_rejected() {
        let s = schema3();
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        qb.relation(s.table_id("a").unwrap(), "a");
        qb.relation(s.table_id("b").unwrap(), "b");
        assert!(qb.build(&s).is_err());
    }

    #[test]
    fn bad_join_column_rejected() {
        let s = schema3();
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let a = qb.relation(s.table_id("a").unwrap(), "a");
        let b = qb.relation(s.table_id("b").unwrap(), "b");
        qb.join(a, 0, b, 99);
        assert!(qb.build(&s).is_err());
    }

    #[test]
    fn edges_between_set_flips_orientation() {
        let s = schema3();
        let q = chain_query(&s);
        // Edge (b=1 → c=2) queried from set [2] joining 1: must flip.
        let edges = q.edges_between_set(&[2], 1);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].left, 2);
        assert_eq!(edges[0].right, 1);
    }

    #[test]
    fn display_mentions_aliases_and_predicates() {
        let s = schema3();
        let q = chain_query(&s);
        let text = q.to_string();
        assert!(text.contains("FROM a, b, c"));
        assert!(text.contains("a.c1 = 3"));
    }

    #[test]
    fn single_relation_is_connected() {
        let s = schema3();
        let mut qb = QueryBuilder::new(QueryId::new(1), 1);
        qb.relation(s.table_id("a").unwrap(), "a");
        let q = qb.build(&s).unwrap();
        assert!(q.is_connected());
    }

    fn agg_chain_query(s: &Schema) -> Query {
        let mut qb = QueryBuilder::new(QueryId::new(2), 1);
        let a = qb.relation(s.table_id("a").unwrap(), "a");
        let b = qb.relation(s.table_id("b").unwrap(), "b");
        qb.join(a, 0, b, 1);
        qb.group_by(a, 1)
            .aggregate(AggFunc::Sum(ColRef { rel: b, column: 0 }))
            .aggregate(AggFunc::Count)
            .aggregate(AggFunc::Max(ColRef { rel: b, column: 1 }));
        qb.build(s).unwrap()
    }

    #[test]
    fn projection_lists_group_key_then_agg_inputs_deduped() {
        let s = schema3();
        let q = agg_chain_query(&s);
        assert_eq!(
            q.projection(),
            vec![
                ColRef { rel: 0, column: 1 },
                ColRef { rel: 1, column: 0 },
                ColRef { rel: 1, column: 1 },
            ]
        );
        // Without an agg spec the query is a bare COUNT(*): no projection.
        assert!(chain_query(&s).projection().is_empty());
    }

    #[test]
    fn display_renders_select_list_and_group_by() {
        let s = schema3();
        let text = agg_chain_query(&s).to_string();
        assert!(text.starts_with("SELECT a.c1, SUM(b.c0), COUNT(*), MAX(b.c1) FROM a, b"));
        assert!(text.ends_with("GROUP BY a.c1"));
    }

    #[test]
    fn group_by_without_aggs_defaults_to_count() {
        let s = schema3();
        let mut qb = QueryBuilder::new(QueryId::new(3), 1);
        let a = qb.relation(s.table_id("a").unwrap(), "a");
        let b = qb.relation(s.table_id("b").unwrap(), "b");
        qb.join(a, 0, b, 1);
        qb.group_by(a, 0);
        let q = qb.build(&s).unwrap();
        let spec = q.agg.as_ref().unwrap();
        assert_eq!(spec.aggs, vec![AggFunc::Count]);
        assert_eq!(spec.group_by, Some(ColRef { rel: 0, column: 0 }));
    }

    #[test]
    fn agg_referencing_bad_column_rejected() {
        let s = schema3();
        let mut qb = QueryBuilder::new(QueryId::new(4), 1);
        let a = qb.relation(s.table_id("a").unwrap(), "a");
        let b = qb.relation(s.table_id("b").unwrap(), "b");
        qb.join(a, 0, b, 1);
        qb.aggregate(AggFunc::Sum(ColRef { rel: b, column: 99 }));
        assert!(qb.build(&s).is_err());

        let mut qb = QueryBuilder::new(QueryId::new(5), 1);
        let a = qb.relation(s.table_id("a").unwrap(), "a");
        let b = qb.relation(s.table_id("b").unwrap(), "b");
        qb.join(a, 0, b, 1);
        qb.group_by(7, 0);
        assert!(qb.build(&s).is_err());
    }
}
