//! Query representation: select-project-join query graphs.
//!
//! Every benchmark query in the paper (JOB, filtered TPC-DS / Stack
//! templates) is a select-project-join block; this crate models exactly
//! that: a set of base relations (with aliases, since JOB reuses tables),
//! equi-join edges between them, and per-relation scan predicates.

pub mod graph;
pub mod predicate;

pub use graph::{AggFunc, AggSpec, ColRef, JoinEdge, Query, QueryBuilder, Relation};
pub use predicate::Predicate;
