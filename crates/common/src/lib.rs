//! Shared foundation types for the FOSS reproduction workspace.
//!
//! This crate deliberately stays tiny: strongly-typed identifiers, a fast
//! non-cryptographic hasher for hot lookup tables, a deterministic RNG
//! splitter so every experiment is reproducible from a single seed, and the
//! workspace-wide error type.

pub mod codec;
pub mod error;
pub mod faults;
pub mod hash;
pub mod ids;
pub mod par;
pub mod rng;
pub mod stats;
pub mod sync;

pub use codec::{ByteReader, ByteWriter, Codec};
pub use error::{FossError, Result};
pub use faults::{FaultPlan, FaultPlanBuilder, FaultRule, FaultSite, FaultStats, FAULT_SITES};
pub use hash::{fx_hash_one, FxHashMap, FxHashSet};
pub use ids::{ColumnId, QueryId, TableId};
pub use par::{env_workers, run_morsels, run_sharded};
pub use rng::SeedStream;
pub use stats::percentile;
