//! Workspace error type.
//!
//! The reproduction is a closed system (no I/O beyond stdout), so a small
//! enum covers every failure mode; `std::error::Error` is implemented so the
//! type composes with `?` in examples and binaries.

use std::fmt;

/// Convenience alias used by every fallible public API in the workspace.
pub type Result<T> = std::result::Result<T, FossError>;

/// All error conditions surfaced by the FOSS reproduction crates.
#[derive(Debug, Clone, PartialEq)]
pub enum FossError {
    /// A name lookup in the catalog failed.
    UnknownName(String),
    /// A query referenced a table/column that the schema does not contain.
    InvalidQuery(String),
    /// A plan or incomplete plan failed a structural invariant.
    InvalidPlan(String),
    /// An action integer was outside the legal range or masked out.
    InvalidAction(String),
    /// Execution exceeded its work-unit budget (dynamic timeout).
    Timeout {
        /// Work units spent before the executor aborted.
        spent: u64,
        /// The budget that was exceeded.
        budget: u64,
    },
    /// Shape mismatch or numeric failure inside the neural network stack.
    Numeric(String),
    /// Model (de)serialisation failure.
    Serde(String),
    /// A transient infrastructure failure (injected by the fault layer or a
    /// genuinely retryable executor hiccup). Callers with budget left are
    /// expected to retry; everything else treats it as an ordinary error.
    Transient(String),
    /// A request was shed by admission control before doing any work: the
    /// service was saturated and the request's class/deadline did not allow
    /// it to keep waiting.
    Overloaded {
        /// Whether the shed request was low-priority (low sheds first).
        low_priority: bool,
        /// Wall-clock time the request spent queued before being shed (µs).
        waited_us: u64,
    },
}

impl fmt::Display for FossError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FossError::UnknownName(n) => write!(f, "unknown name: {n}"),
            FossError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            FossError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            FossError::InvalidAction(m) => write!(f, "invalid action: {m}"),
            FossError::Timeout { spent, budget } => {
                write!(
                    f,
                    "execution timed out: spent {spent} work units of budget {budget}"
                )
            }
            FossError::Numeric(m) => write!(f, "numeric error: {m}"),
            FossError::Serde(m) => write!(f, "serialisation error: {m}"),
            FossError::Transient(m) => write!(f, "transient failure: {m}"),
            FossError::Overloaded {
                low_priority,
                waited_us,
            } => {
                let class = if *low_priority { "low" } else { "high" };
                write!(
                    f,
                    "overloaded: {class}-priority request shed after waiting {waited_us}µs"
                )
            }
        }
    }
}

impl std::error::Error for FossError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_timeout() {
        let e = FossError::Timeout {
            spent: 10,
            budget: 5,
        };
        assert_eq!(
            e.to_string(),
            "execution timed out: spent 10 work units of budget 5"
        );
    }

    #[test]
    fn display_formats_overload_and_transient() {
        let e = FossError::Overloaded {
            low_priority: true,
            waited_us: 250,
        };
        assert_eq!(
            e.to_string(),
            "overloaded: low-priority request shed after waiting 250µs"
        );
        let t = FossError::Transient("injected cache fault".into());
        assert!(t.to_string().contains("transient failure"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(FossError::UnknownName("t".into()));
        assert!(e.to_string().contains("unknown name"));
    }
}
