//! Workspace-wide synchronization facade.
//!
//! Every FOSS crate imports its lock and atomic types from here instead of
//! `std::sync`/`parking_lot` (enforced by `foss-lint`). Normally these are
//! thin non-poisoning wrappers over `std::sync` with zero runtime cost; under
//! `cfg(feature = "model-check")` they are swapped for the instrumented
//! `foss_check` shims, which yield to the model checker's cooperative
//! scheduler at every synchronization point (and transparently fall back to
//! the real primitives on threads that are not part of a model schedule).
//!
//! The API is the intersection the workspace actually uses:
//!
//! - [`Mutex`]: `new` / `lock` / `try_lock` / `get_mut` / `into_inner`,
//!   non-poisoning (`lock` returns the guard directly, matching the vendored
//!   `parking_lot` stand-in this facade replaces).
//! - [`RwLock`]: `new` / `read` / `write` / `get_mut` / `into_inner`.
//! - [`Condvar`]: `new` / `wait` / `wait_timeout` / `notify_one` /
//!   `notify_all`, where `wait_timeout` returns `(guard, timed_out)`.
//! - [`atomic`]: `AtomicBool` / `AtomicU64` / `AtomicUsize` / `Ordering`.

#[cfg(feature = "model-check")]
pub use foss_check::sync::{
    atomic, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(not(feature = "model-check"))]
pub use real::{atomic, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(feature = "model-check"))]
mod real {
    use std::time::Duration;

    pub use std::sync::atomic;

    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

    /// Non-poisoning mutex: a panic while holding the lock does not turn
    /// every later access into an error. Invariant-restoring code must not
    /// rely on poisoning (none of the workspace does).
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.inner.try_lock() {
                Ok(g) => Some(g),
                Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
                Err(std::sync::TryLockError::WouldBlock) => None,
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Non-poisoning reader-writer lock.
    #[derive(Debug, Default)]
    pub struct RwLock<T> {
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        pub fn new(value: T) -> Self {
            RwLock {
                inner: std::sync::RwLock::new(value),
            }
        }

        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.inner.read().unwrap_or_else(|e| e.into_inner())
        }

        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.inner.write().unwrap_or_else(|e| e.into_inner())
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Condition variable paired with [`Mutex`]; `wait_timeout` reports the
    /// timeout as a plain `bool` so call sites stay identical under the
    /// model-check shims (where timeouts are delivered abstractly by the
    /// scheduler rather than by the clock).
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        pub fn new() -> Self {
            Condvar {
                inner: std::sync::Condvar::new(),
            }
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
        }

        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let (guard, result) = self
                .inner
                .wait_timeout(guard, dur)
                .unwrap_or_else(|e| e.into_inner());
            (guard, result.timed_out())
        }

        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }
}
