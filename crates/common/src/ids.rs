//! Strongly-typed identifiers used across the workspace.
//!
//! Plain `usize` indices are easy to mix up when a function juggles table,
//! column and query indexes at once; newtypes make such bugs unrepresentable
//! while compiling down to the same machine code.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Wrap a raw index.
            #[inline]
            pub const fn new(raw: usize) -> Self {
                Self(raw as u32)
            }

            /// Unwrap back into a `usize` suitable for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                Self::new(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a base table inside a [`Schema`](https://docs.rs) catalog.
    TableId
);
id_type!(
    /// Identifies a column *globally* within a schema (not per table).
    ColumnId
);
id_type!(
    /// Identifies one concrete query instance inside a workload.
    QueryId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let t = TableId::new(17);
        assert_eq!(t.index(), 17);
        assert_eq!(TableId::from(17usize), t);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(QueryId::new(3).to_string(), "QueryId(3)");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ColumnId::new(1) < ColumnId::new(2));
    }
}
