//! Small shared statistics helpers.
//!
//! Lives in `foss_common` so both the experiment harness and the serving
//! metrics registry compute percentiles with one definition (linear
//! interpolation between order statistics, the same convention NumPy's
//! default and PostgreSQL's `percentile_cont` use).

/// Percentile `p` (0–100) of `samples` with linear interpolation.
///
/// Returns `None` on an empty sample set — callers decide whether that means
/// "0", "skip the row" or "report n/a"; nothing panics on an idle metrics
/// registry.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Some(if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_return_none() {
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), Some(1.0));
        assert_eq!(percentile(&s, 100.0), Some(4.0));
        assert!((percentile(&s, 50.0).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_p_is_clamped() {
        let s = [5.0, 7.0];
        assert_eq!(percentile(&s, -10.0), Some(5.0));
        assert_eq!(percentile(&s, 150.0), Some(7.0));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = [3.5];
        for p in [0.0, 25.0, 99.0] {
            assert_eq!(percentile(&s, p), Some(3.5));
        }
    }
}
