//! Deterministic seed derivation.
//!
//! Every stochastic component (data generators, query templates, PPO, weight
//! init, workload sampling) derives its own RNG from one experiment seed via
//! a labelled [`SeedStream`]. Two components can then never consume each
//! other's randomness, so adding a new component does not perturb existing
//! experiment results — the property the paper relies on when comparing runs
//! "with different random seeds".

use std::hash::Hasher;

use crate::hash::FxHasher;

/// Derives independent child seeds from a root seed and a string label.
#[derive(Debug, Clone, Copy)]
pub struct SeedStream {
    root: u64,
}

impl SeedStream {
    /// Create a stream rooted at `seed`.
    pub const fn new(seed: u64) -> Self {
        Self { root: seed }
    }

    /// The root seed this stream was created from.
    pub const fn root(&self) -> u64 {
        self.root
    }

    /// Deterministically derive a child seed for the component `label`.
    pub fn derive(&self, label: &str) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(self.root);
        h.write(label.as_bytes());
        // Avoid the all-zero seed that some PRNGs treat specially.
        h.finish() | 1
    }

    /// Derive a child seed parameterised by an index (e.g. per-query).
    pub fn derive_indexed(&self, label: &str, index: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(self.root);
        h.write(label.as_bytes());
        h.write_u64(index);
        h.finish() | 1
    }

    /// A sub-stream rooted at a derived seed, for hierarchical components.
    pub fn substream(&self, label: &str) -> SeedStream {
        SeedStream::new(self.derive(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_give_distinct_seeds() {
        let s = SeedStream::new(42);
        assert_ne!(s.derive("data"), s.derive("agent"));
    }

    #[test]
    fn derivation_is_stable() {
        let a = SeedStream::new(7).derive("x");
        let b = SeedStream::new(7).derive("x");
        assert_eq!(a, b);
    }

    #[test]
    fn indexed_derivation_varies_with_index() {
        let s = SeedStream::new(1);
        assert_ne!(s.derive_indexed("q", 0), s.derive_indexed("q", 1));
    }

    #[test]
    fn substream_differs_from_parent() {
        let s = SeedStream::new(5);
        let sub = s.substream("child");
        assert_ne!(sub.derive("x"), s.derive("x"));
    }
}
