//! Hand-rolled binary codec for snapshot serialization.
//!
//! The workspace's vendored `serde` is a no-op stand-in (the derives expand
//! to nothing), so persistent artefacts are encoded with this explicit,
//! versioned little-endian format instead. The rules are deliberately
//! boring:
//!
//! - integers are fixed-width little-endian (`usize` travels as `u64`),
//! - floats are encoded via [`f32::to_bits`]/[`f64::to_bits`] so decode is
//!   bit-exact (NaN payloads and signed zeros included),
//! - sequences are a `u64` length followed by the elements,
//! - maps and sets are canonicalised by sorting keys before writing, so the
//!   same logical snapshot always produces the same bytes.
//!
//! Each crate implements [`Codec`] for its own types (the orphan rule and
//! private fields both point the same way); this module only provides the
//! primitives and the container plumbing.

use crate::error::{FossError, Result};

/// Append-only byte sink used by [`Codec::encode`].
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a little-endian `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor over encoded bytes used by [`Codec::decode`].
///
/// Every read is bounds-checked and surfaces [`FossError::Serde`] on
/// truncation, so corrupt snapshot files fail loudly instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error out unless every byte was consumed (trailing garbage means the
    /// payload does not match the expected schema).
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(FossError::Serde(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )))
        }
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(FossError::Serde(format!(
                "truncated input: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `usize` (encoded as `u64`), rejecting values beyond this
    /// platform's address width.
    pub fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| FossError::Serde(format!("usize overflow: {v}")))
    }

    /// Read a sequence length, capped against the remaining payload so a
    /// corrupt length prefix cannot trigger a huge allocation.
    pub fn get_len(&mut self) -> Result<usize> {
        let n = self.get_usize()?;
        // Every element of any sequence occupies at least one byte.
        if n > self.remaining() {
            return Err(FossError::Serde(format!(
                "sequence length {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read an `f32` from its bit pattern.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(FossError::Serde(format!("invalid bool byte {other}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| FossError::Serde(format!("invalid utf-8 string: {e}")))
    }
}

/// Self-describing binary round trip: `decode(encode(x)) == x` for the
/// fields inference reads (training-only scratch such as gradients may be
/// reset to zero by `decode`).
pub trait Codec: Sized {
    /// Append this value to `w`.
    fn encode(&self, w: &mut ByteWriter);

    /// Reconstruct a value, consuming exactly the bytes `encode` wrote.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self>;
}

impl Codec for u8 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_u8()
    }
}

impl Codec for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_u32()
    }
}

impl Codec for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_u64()
    }
}

impl Codec for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_usize()
    }
}

impl Codec for f32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f32(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_f32()
    }
}

impl Codec for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_f64()
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bool(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_bool()
    }
}

impl Codec for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_str()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(FossError::Serde(format!("invalid option tag {other}"))),
        }
    }
}

impl Codec for crate::ids::QueryId {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Self(r.get_u32()?))
    }
}

impl Codec for crate::ids::TableId {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Self(r.get_u32()?))
    }
}

impl Codec for crate::ids::ColumnId {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Self(r.get_u32()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::QueryId;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = ByteWriter::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        r.finish().expect("all bytes consumed");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f32);
        round_trip(-0.0f64);
        round_trip(f64::INFINITY);
        round_trip(String::from("héllo"));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Option::<u32>::None);
        round_trip(Some(7u64));
        round_trip(QueryId(9));
    }

    #[test]
    fn floats_are_bit_exact() {
        let nan = f32::from_bits(0x7fc0_1234);
        let mut w = ByteWriter::new();
        nan.encode(&mut w);
        let bytes = w.into_bytes();
        let back = f32::decode(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn truncated_input_is_a_serde_error() {
        let mut w = ByteWriter::new();
        12345u64.encode(&mut w);
        let bytes = w.into_bytes();
        let err = u64::decode(&mut ByteReader::new(&bytes[..5])).unwrap_err();
        assert!(matches!(err, FossError::Serde(_)), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_usize(usize::MAX);
        let bytes = w.into_bytes();
        let err = Vec::<u8>::decode(&mut ByteReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, FossError::Serde(_)), "{err}");
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = ByteWriter::new();
        7u32.encode(&mut w);
        w.put_u8(0xFF);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        u32::decode(&mut r).unwrap();
        assert!(r.finish().is_err());
    }
}
