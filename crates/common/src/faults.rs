//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded, shared description of which failure sites
//! misbehave, how often, and for how long. Components that can fail
//! (the caching executor, the `PlanDoctor` service) hold an
//! `Option<Arc<FaultPlan>>` and consult it with [`FaultPlan::roll`] at each
//! *fault site*; with no plan attached the hook is a branch on `None` and
//! the code path is byte-for-byte the production one.
//!
//! Decisions are **deterministic**: the `n`-th event at a site injects iff
//! a hash of `(seed, site, n)` lands below the site's rate. Replaying the
//! same request sequence against the same plan reproduces the same faults
//! bit-for-bit, which is what lets the chaos suite assert exact
//! degradation/recovery envelopes instead of flaky probabilities.
//!
//! # `FOSS_FAULTS` grammar
//!
//! Plans can be parsed from a compact spec (the `FOSS_FAULTS` environment
//! variable and the `plan-doctor --faults` flag both use it):
//!
//! ```text
//! spec  := entry (';' entry)*
//! entry := 'seed=' <u64>
//!        | <site> ':' <rate> ('@' <param>)? ('#' <max>)?
//! site  := plan_stall | exec_timeout | exec_error
//!        | cache_error | exec_slow | publish_fail
//! ```
//!
//! * `rate` — injection probability per event, in `[0, 1]`.
//! * `@param` — site parameter: stall/slowdown duration in µs for
//!   `plan_stall` / `exec_slow`; ignored elsewhere.
//! * `#max` — stop after `max` injections (a *burst*: the site heals once
//!   the budget is spent, which is how recovery tests end their storms).
//!
//! Example: `plan_stall:1.0@5000#8;exec_error:0.25;seed=7` — the first 8
//! planning events stall 5 ms each, and every execution independently has a
//! 25 % chance of a transient error, all derived from seed 7.

use crate::sync::atomic::{AtomicU64, Ordering};

use crate::rng::SeedStream;

/// Places in the pipeline where a [`FaultPlan`] can inject a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Planning stalls for `param` µs (a real sleep inside the measured
    /// planning window — drives planning-budget/deadline overruns).
    PlanStall,
    /// The doctored plan's execution reports a budget timeout without
    /// running (the service falls back to the expert plan).
    ExecTimeout,
    /// The doctored plan's execution fails with a transient error
    /// (retryable; exhausted retries fall back to the expert plan).
    ExecError,
    /// The cache layer fails the lookup with a transient error before any
    /// execution happens.
    CacheError,
    /// Every (real or cached) execution is slowed by `param` µs of
    /// wall-clock sleep; metered work-unit latencies are untouched.
    ExecSlow,
    /// A snapshot publish is rejected; the service keeps serving the
    /// previous generation.
    PublishFail,
}

/// Every site, in the order used for internal indexing.
pub const FAULT_SITES: [FaultSite; 6] = [
    FaultSite::PlanStall,
    FaultSite::ExecTimeout,
    FaultSite::ExecError,
    FaultSite::CacheError,
    FaultSite::ExecSlow,
    FaultSite::PublishFail,
];

impl FaultSite {
    /// The spec-grammar name of this site.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::PlanStall => "plan_stall",
            FaultSite::ExecTimeout => "exec_timeout",
            FaultSite::ExecError => "exec_error",
            FaultSite::CacheError => "cache_error",
            FaultSite::ExecSlow => "exec_slow",
            FaultSite::PublishFail => "publish_fail",
        }
    }

    fn by_name(name: &str) -> Option<Self> {
        FAULT_SITES.iter().copied().find(|s| s.name() == name)
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// How one site misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Injection probability per event, in `[0, 1]`.
    pub rate: f64,
    /// Site-specific parameter (stall/slowdown µs; 0 where unused).
    pub param: f64,
    /// Inject at most this many times (`None` = unbounded).
    pub max_injections: Option<u64>,
}

impl FaultRule {
    /// An always-firing rule with no parameter and no burst bound.
    pub fn always() -> Self {
        Self {
            rate: 1.0,
            param: 0.0,
            max_injections: None,
        }
    }
}

/// Per-site counters, snapshotted by [`FaultPlan::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Events that consulted the plan (per site, [`FAULT_SITES`] order).
    pub events: [u64; FAULT_SITES.len()],
    /// Faults actually injected (per site, [`FAULT_SITES`] order).
    pub injected: [u64; FAULT_SITES.len()],
}

impl FaultStats {
    /// Total faults injected across every site.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Injections performed at `site`.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.injected[site.index()]
    }
}

/// A seeded, shareable description of which fault sites misbehave.
///
/// Construct with [`FaultPlan::none`], [`FaultPlan::builder`],
/// [`FaultPlan::parse`] or [`FaultPlan::from_env`]; attach behind an
/// `Option<Arc<FaultPlan>>` so disabled hooks stay zero-cost.
#[derive(Debug)]
pub struct FaultPlan {
    seed: SeedStream,
    rules: [Option<FaultRule>; FAULT_SITES.len()],
    events: [AtomicU64; FAULT_SITES.len()],
    injected: [AtomicU64; FAULT_SITES.len()],
}

impl FaultPlan {
    fn with_rules(seed: u64, rules: [Option<FaultRule>; FAULT_SITES.len()]) -> Self {
        Self {
            seed: SeedStream::new(seed).substream("faults"),
            rules,
            events: Default::default(),
            injected: Default::default(),
        }
    }

    /// A plan that never injects anything. Attaching it must be
    /// indistinguishable from attaching no plan at all (the
    /// fault-transparency proptest holds the workspace to that).
    pub fn none() -> Self {
        Self::with_rules(0, Default::default())
    }

    /// Start building a plan rooted at `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            rules: Default::default(),
        }
    }

    /// Whether any site has a rule (used to short-circuit reporting, never
    /// correctness: `roll` is already a no-op without rules).
    pub fn is_active(&self) -> bool {
        self.rules.iter().any(Option::is_some)
    }

    /// Consult the plan for the next event at `site`. Returns the rule to
    /// apply when a fault should be injected, `None` otherwise.
    pub fn roll(&self, site: FaultSite) -> Option<FaultRule> {
        let i = site.index();
        let rule = self.rules[i]?;
        let n = self.events[i].fetch_add(1, Ordering::Relaxed);
        // Hash (seed, site, n) to a uniform in [0, 1).
        let u = (self.seed.derive_indexed(site.name(), n) >> 11) as f64 / (1u64 << 53) as f64;
        if u >= rule.rate {
            return None;
        }
        match rule.max_injections {
            None => {
                self.injected[i].fetch_add(1, Ordering::Relaxed);
            }
            Some(max) => {
                // Claim one injection slot atomically so a burst never
                // over-fires under concurrent rolls.
                let claimed = self.injected[i]
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        (v < max).then_some(v + 1)
                    })
                    .is_ok();
                if !claimed {
                    return None;
                }
            }
        }
        Some(rule)
    }

    /// Counters so far (events seen and faults injected, per site).
    pub fn stats(&self) -> FaultStats {
        let mut s = FaultStats::default();
        for i in 0..FAULT_SITES.len() {
            s.events[i] = self.events[i].load(Ordering::Relaxed);
            s.injected[i] = self.injected[i].load(Ordering::Relaxed);
        }
        s
    }

    /// Parse the [`FOSS_FAULTS` grammar](self) into a plan.
    /// `default_seed` applies unless the spec carries a `seed=` entry.
    /// Errors are human-readable (the `plan-doctor` bin prints them
    /// verbatim and exits non-zero).
    pub fn parse(spec: &str, default_seed: u64) -> std::result::Result<FaultPlan, String> {
        let mut seed = default_seed;
        let mut rules: [Option<FaultRule>; FAULT_SITES.len()] = Default::default();
        for raw in spec.split(';') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(v) = entry.strip_prefix("seed=") {
                seed = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid fault spec: seed must be a u64, got `{v}`"))?;
                continue;
            }
            let (site_name, rest) = entry.split_once(':').ok_or_else(|| {
                format!("invalid fault spec entry `{entry}`: expected `site:rate[@param][#max]`")
            })?;
            let site = FaultSite::by_name(site_name.trim()).ok_or_else(|| {
                let valid: Vec<_> = FAULT_SITES.iter().map(|s| s.name()).collect();
                format!(
                    "invalid fault spec: unknown site `{}` (valid sites: {})",
                    site_name.trim(),
                    valid.join(", ")
                )
            })?;
            let (rest, max_injections) = match rest.split_once('#') {
                Some((head, max)) => {
                    let max = max.trim().parse().map_err(|_| {
                        format!("invalid fault spec entry `{entry}`: `#max` must be a count")
                    })?;
                    (head, Some(max))
                }
                None => (rest, None),
            };
            let (rate_str, param) = match rest.split_once('@') {
                Some((rate, param)) => {
                    let param: f64 = param.trim().parse().map_err(|_| {
                        format!("invalid fault spec entry `{entry}`: `@param` must be a number")
                    })?;
                    (rate, param)
                }
                None => (rest, 0.0),
            };
            let rate: f64 = rate_str.trim().parse().map_err(|_| {
                format!("invalid fault spec entry `{entry}`: rate must be a number in [0, 1]")
            })?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!(
                    "invalid fault spec entry `{entry}`: rate {rate} outside [0, 1]"
                ));
            }
            rules[site.index()] = Some(FaultRule {
                rate,
                param,
                max_injections,
            });
        }
        Ok(FaultPlan::with_rules(seed, rules))
    }

    /// Parse the `FOSS_FAULTS` environment variable, if set. `Ok(None)`
    /// when unset or blank; `Err` carries the readable parse failure.
    pub fn from_env() -> std::result::Result<Option<FaultPlan>, String> {
        match std::env::var("FOSS_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec, 42).map(Some),
            _ => Ok(None),
        }
    }
}

/// Builder returned by [`FaultPlan::builder`].
#[derive(Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    rules: [Option<FaultRule>; FAULT_SITES.len()],
}

impl FaultPlanBuilder {
    /// Inject at `site` with probability `rate` (no parameter, unbounded).
    #[must_use]
    pub fn fault(self, site: FaultSite, rate: f64) -> Self {
        self.rule(
            site,
            FaultRule {
                rate,
                param: 0.0,
                max_injections: None,
            },
        )
    }

    /// Inject at `site` with probability `rate` and site parameter `param`.
    #[must_use]
    pub fn fault_param(self, site: FaultSite, rate: f64, param: f64) -> Self {
        self.rule(
            site,
            FaultRule {
                rate,
                param,
                max_injections: None,
            },
        )
    }

    /// Full-control rule installation.
    #[must_use]
    pub fn rule(mut self, site: FaultSite, rule: FaultRule) -> Self {
        self.rules[site.index()] = Some(rule);
        self
    }

    /// Cap the number of injections at `site` (a burst that then heals).
    ///
    /// # Panics
    /// If no rule was installed at `site` first.
    #[must_use]
    pub fn burst(mut self, site: FaultSite, max: u64) -> Self {
        let rule = self.rules[site.index()]
            .as_mut()
            .expect("burst() requires a rule at the site first");
        rule.max_injections = Some(max);
        self
    }

    /// Finish the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan::with_rules(self.seed, self.rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_injects_and_counts_no_events() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for site in FAULT_SITES {
            for _ in 0..10 {
                assert_eq!(plan.roll(site), None);
            }
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn rate_one_always_injects_and_counts() {
        let plan = FaultPlan::builder(1)
            .fault(FaultSite::ExecError, 1.0)
            .build();
        assert!(plan.is_active());
        for _ in 0..5 {
            assert!(plan.roll(FaultSite::ExecError).is_some());
        }
        assert_eq!(plan.roll(FaultSite::ExecTimeout), None, "other sites idle");
        let s = plan.stats();
        assert_eq!(s.injected_at(FaultSite::ExecError), 5);
        assert_eq!(s.injected_total(), 5);
        assert_eq!(s.events[FaultSite::ExecError.index()], 5);
        assert_eq!(s.events[FaultSite::ExecTimeout.index()], 0);
    }

    #[test]
    fn decisions_are_deterministic_across_plans() {
        let mk = || {
            FaultPlan::builder(99)
                .fault(FaultSite::CacheError, 0.3)
                .build()
        };
        let (a, b) = (mk(), mk());
        let seq_a: Vec<bool> = (0..200)
            .map(|_| a.roll(FaultSite::CacheError).is_some())
            .collect();
        let seq_b: Vec<bool> = (0..200)
            .map(|_| b.roll(FaultSite::CacheError).is_some())
            .collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same faults");
        let hits = seq_a.iter().filter(|&&h| h).count();
        assert!(
            (20..=90).contains(&hits),
            "rate 0.3 over 200 events should land near 60, got {hits}"
        );
    }

    #[test]
    fn seeds_change_the_injection_pattern() {
        let a = FaultPlan::builder(1)
            .fault(FaultSite::ExecError, 0.5)
            .build();
        let b = FaultPlan::builder(2)
            .fault(FaultSite::ExecError, 0.5)
            .build();
        let seq = |p: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|_| p.roll(FaultSite::ExecError).is_some())
                .collect()
        };
        assert_ne!(seq(&a), seq(&b));
    }

    #[test]
    fn bursts_stop_after_max_injections() {
        let plan = FaultPlan::builder(3)
            .fault(FaultSite::PublishFail, 1.0)
            .burst(FaultSite::PublishFail, 3)
            .build();
        let fired: Vec<bool> = (0..10)
            .map(|_| plan.roll(FaultSite::PublishFail).is_some())
            .collect();
        let expected: Vec<bool> = (0..10).map(|i| i < 3).collect();
        assert_eq!(fired, expected);
        assert_eq!(plan.stats().injected_at(FaultSite::PublishFail), 3);
    }

    #[test]
    fn burst_cap_holds_under_concurrent_rolls() {
        let plan = FaultPlan::builder(4)
            .fault(FaultSite::ExecError, 1.0)
            .burst(FaultSite::ExecError, 16)
            .build();
        let injected: usize = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let plan = &plan;
                    scope.spawn(move || {
                        (0..100)
                            .filter(|_| plan.roll(FaultSite::ExecError).is_some())
                            .count()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(injected, 16, "burst budget must never over-fire");
    }

    #[test]
    fn grammar_round_trips() {
        let plan = FaultPlan::parse("plan_stall:1.0@5000#8; exec_error:0.25; seed=7", 42).unwrap();
        assert_eq!(
            plan.rules[FaultSite::PlanStall.index()],
            Some(FaultRule {
                rate: 1.0,
                param: 5000.0,
                max_injections: Some(8),
            })
        );
        assert_eq!(
            plan.rules[FaultSite::ExecError.index()],
            Some(FaultRule {
                rate: 0.25,
                param: 0.0,
                max_injections: None,
            })
        );
        assert_eq!(plan.seed.root(), SeedStream::new(7).derive("faults"));
    }

    #[test]
    fn grammar_rejects_garbage_readably() {
        let unknown = FaultPlan::parse("planstall:1.0", 1).unwrap_err();
        assert!(unknown.contains("unknown site `planstall`"));
        assert!(
            unknown.contains("plan_stall"),
            "error must list valid sites"
        );
        let rate = FaultPlan::parse("exec_error:1.5", 1).unwrap_err();
        assert!(rate.contains("outside [0, 1]"));
        let shape = FaultPlan::parse("exec_error", 1).unwrap_err();
        assert!(shape.contains("expected `site:rate"));
        let seed = FaultPlan::parse("seed=notanumber", 1).unwrap_err();
        assert!(seed.contains("seed must be a u64"));
    }

    #[test]
    fn empty_spec_parses_to_inactive_plan() {
        let plan = FaultPlan::parse("  ", 1).unwrap();
        assert!(!plan.is_active());
    }
}
