//! A fast, non-cryptographic hasher for hot lookup tables.
//!
//! The Rust performance guide recommends replacing SipHash with an
//! FxHash-style multiply-xor hash when HashDoS is not a concern. The
//! `rustc-hash` crate is not on the allowed dependency list, so the ~30-line
//! algorithm is reimplemented here (it is the same function rustc itself
//! uses) and exposed through the familiar `FxHashMap` / `FxHashSet` aliases.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The multiply-rotate hash function used by rustc, specialised for 64-bit
/// words with a byte-tail fallback.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash an arbitrary value once with [`FxHasher`]; used for plan fingerprints.
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(fx_hash_one(&(1u32, "x")), fx_hash_one(&(1u32, "x")));
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Values differing only in the last (non 8-aligned) bytes must differ.
        let a = fx_hash_one(&[1u8, 2, 3]);
        let b = fx_hash_one(&[1u8, 2, 4]);
        assert_ne!(a, b);
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        s.insert(7);
        assert_eq!(s.len(), 1);
    }
}
