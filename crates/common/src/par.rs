//! Deterministic scoped fan-out.
//!
//! The parallel paths in this workspace (AAM gradient shards, pair-labelling
//! workers) all follow one shape: split work into shards whose boundaries
//! depend only on the input size — never on the host's core count — run the
//! shards on scoped threads, and consume the results **in shard order** so
//! the merged outcome is bit-for-bit reproducible regardless of scheduling.

/// Run `work(0..shards)` on scoped worker threads and return the results in
/// shard order. With zero or one shard no thread is spawned — the closure
/// runs inline, which keeps tiny inputs cheap and the output identical.
pub fn run_sharded<T, F>(shards: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if shards <= 1 {
        return (0..shards).map(&work).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|si| {
                let work = &work;
                scope.spawn(move || work(si))
            })
            .collect();
        // Joining in spawn order makes the collection order (and any merge
        // the caller performs) independent of thread scheduling.
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_shard_order() {
        let out = run_sharded(8, |si| si * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn zero_and_single_shard_run_inline() {
        assert_eq!(run_sharded(0, |si| si), Vec::<usize>::new());
        assert_eq!(run_sharded(1, |si| si + 5), vec![5]);
    }
}
