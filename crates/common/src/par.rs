//! Deterministic scoped fan-out.
//!
//! The parallel paths in this workspace (AAM gradient shards, pair-labelling
//! workers) all follow one shape: split work into shards whose boundaries
//! depend only on the input size — never on the host's core count — run the
//! shards on scoped threads, and consume the results **in shard order** so
//! the merged outcome is bit-for-bit reproducible regardless of scheduling.

/// Run `work(0..shards)` on scoped worker threads and return the results in
/// shard order. With zero or one shard no thread is spawned — the closure
/// runs inline, which keeps tiny inputs cheap and the output identical.
pub fn run_sharded<T, F>(shards: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if shards <= 1 {
        return (0..shards).map(&work).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|si| {
                let work = &work;
                scope.spawn(move || work(si))
            })
            .collect();
        // Joining in spawn order makes the collection order (and any merge
        // the caller performs) independent of thread scheduling.
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Run `work(0..count)` on a pool of at most `workers` scoped threads fed by
/// a shared atomic morsel counter, and return the results in **morsel
/// order** regardless of which worker picked up which morsel.
///
/// This extends [`run_sharded`]'s discipline to the morsel-driven executor:
/// morsel boundaries come from the input size alone, workers race only over
/// *which* morsel they grab next, and the index-ordered merge makes the
/// collected output independent of scheduling. With one worker (or one
/// morsel) everything runs inline on the caller's thread.
pub fn run_morsels<T, F>(workers: usize, count: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || count <= 1 {
        return (0..count).map(&work).collect();
    }
    use crate::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let spawn = workers.min(count);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spawn)
            .map(|_| {
                let work = &work;
                let next = &next;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        done.push((i, work(i)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, value) in h.join().expect("morsel worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("morsel result missing"))
        .collect()
}

/// Worker count for the parallel executor paths, from the `FOSS_WORKERS`
/// environment variable. Defaults to 1 (sequential) when unset or
/// unparsable; the value is read once and cached for the process lifetime
/// so concurrent readers always agree.
pub fn env_workers() -> usize {
    use std::sync::OnceLock;
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("FOSS_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_shard_order() {
        let out = run_sharded(8, |si| si * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn zero_and_single_shard_run_inline() {
        assert_eq!(run_sharded(0, |si| si), Vec::<usize>::new());
        assert_eq!(run_sharded(1, |si| si + 5), vec![5]);
    }

    #[test]
    fn morsel_results_arrive_in_morsel_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_morsels(workers, 37, |i| i * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn morsel_pool_caps_threads_at_count() {
        // More workers than morsels must not panic or drop results.
        let out = run_morsels(16, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn zero_morsels_yield_empty() {
        assert_eq!(run_morsels(4, 0, |i| i), Vec::<usize>::new());
    }
}
