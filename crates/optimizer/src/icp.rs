//! The *incomplete plan* (ICP): join order + join methods of a left-deep tree.
//!
//! Section III of the paper: "We refer to such a tree structure containing
//! only the join order and join methods as the incomplete plan ICP." The
//! planner mutates ICPs; `pg_hint_plan`-style steering turns an ICP back into
//! a complete plan.
//!
//! A left-deep tree over `n` relations is fully described by
//! * `order` — the leaf tables bottom-up: `order[0]` is the paper's `T1`
//!   (deepest left leaf), `order[1]` is `T2` (deepest right leaf), and
//!   `order[k]` (k ≥ 2) is `T(k+1)`, the right input of join `O(k-1)`;
//! * `methods` — join methods bottom-up: `methods[0]` is `O1`, etc.

use foss_common::{fx_hash_one, ByteReader, ByteWriter, Codec, FossError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical join methods available in the expert engine (`Op` in the paper,
/// `|Op| = 3` as in PostgreSQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinMethod {
    /// Build a hash table on the inner side, probe with the outer.
    Hash,
    /// Sort both sides (unless already sorted) and merge.
    Merge,
    /// For each outer row scan (or index-probe) the inner side.
    NestLoop,
}

/// All join methods, in the fixed encoding order used by the action space.
pub const ALL_JOIN_METHODS: [JoinMethod; 3] =
    [JoinMethod::Hash, JoinMethod::Merge, JoinMethod::NestLoop];

impl JoinMethod {
    /// Stable index of this method inside [`ALL_JOIN_METHODS`].
    pub fn index(self) -> usize {
        match self {
            JoinMethod::Hash => 0,
            JoinMethod::Merge => 1,
            JoinMethod::NestLoop => 2,
        }
    }

    /// Inverse of [`JoinMethod::index`].
    pub fn from_index(i: usize) -> Option<Self> {
        ALL_JOIN_METHODS.get(i).copied()
    }
}

impl fmt::Display for JoinMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinMethod::Hash => "HashJoin",
            JoinMethod::Merge => "MergeJoin",
            JoinMethod::NestLoop => "NestLoop",
        };
        f.write_str(s)
    }
}

/// Incomplete plan: left-deep join order + join methods.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Icp {
    /// Relation indexes (into `Query::relations`) in bottom-up leaf order.
    pub order: Vec<usize>,
    /// Join methods bottom-up; `methods.len() == order.len() - 1`.
    pub methods: Vec<JoinMethod>,
}

impl Icp {
    /// Construct, validating the shape invariants.
    pub fn new(order: Vec<usize>, methods: Vec<JoinMethod>) -> Result<Self> {
        if order.is_empty() {
            return Err(FossError::InvalidPlan("ICP with no relations".into()));
        }
        if methods.len() + 1 != order.len() {
            return Err(FossError::InvalidPlan(format!(
                "ICP has {} leaves but {} join methods",
                order.len(),
                methods.len()
            )));
        }
        let mut seen = vec![false; order.len()];
        for &r in &order {
            if r >= order.len() || seen[r] {
                return Err(FossError::InvalidPlan(format!(
                    "ICP order is not a permutation: {:?}",
                    order
                )));
            }
            seen[r] = true;
        }
        Ok(Self { order, methods })
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.order.len()
    }

    /// Number of joins (`n - 1`).
    pub fn join_count(&self) -> usize {
        self.methods.len()
    }

    /// The paper's `Swap(Tl, Tr)`: exchange the leaf tables at 1-based
    /// positions `l` and `r` (labels `T_l`, `T_r`).
    pub fn swap(&mut self, l: usize, r: usize) -> Result<()> {
        let n = self.order.len();
        if l == 0 || r == 0 || l > n || r > n || l == r {
            return Err(FossError::InvalidAction(format!(
                "Swap(T{l}, T{r}) out of range (n={n})"
            )));
        }
        self.order.swap(l - 1, r - 1);
        Ok(())
    }

    /// The paper's `Override(Oi, Op_j)`: set join `O_i` (1-based, bottom-up)
    /// to the `j`-th join method (1-based index into [`ALL_JOIN_METHODS`]).
    pub fn override_method(&mut self, i: usize, j: usize) -> Result<()> {
        if i == 0 || i > self.methods.len() {
            return Err(FossError::InvalidAction(format!(
                "Override(O{i}, _) out of range (joins={})",
                self.methods.len()
            )));
        }
        let m = JoinMethod::from_index(
            j.checked_sub(1)
                .ok_or_else(|| FossError::InvalidAction("join method index is 1-based".into()))?,
        )
        .ok_or_else(|| FossError::InvalidAction(format!("no join method #{j}")))?;
        self.methods[i - 1] = m;
        Ok(())
    }

    /// Leaf positions (1-based labels `T_k`) adjacent to join `O_i`:
    /// `O_1` joins `T_1, T_2`; `O_i` (i ≥ 2) has right leaf `T_{i+1}`.
    pub fn leaves_under_join(i: usize) -> (Option<usize>, usize) {
        if i == 1 {
            (Some(1), 2)
        } else {
            (None, i + 1)
        }
    }

    /// The join `O_i` that is the *parent* of leaf `T_k` (1-based): `T_1` and
    /// `T_2` hang under `O_1`; `T_k` (k ≥ 3) hangs under `O_{k-1}`.
    pub fn parent_join_of_leaf(k: usize) -> usize {
        if k <= 2 {
            1
        } else {
            k - 1
        }
    }

    /// Stable fingerprint for caches and episode-buffer membership tests.
    pub fn fingerprint(&self) -> u64 {
        fx_hash_one(&(&self.order, &self.methods))
    }

    /// Minimum number of Swap/Override steps to reach `self` from `from`.
    ///
    /// Used by the paper's penalty term `minsteps(ICP)`:
    /// * swaps are transpositions, so the minimum swap count is
    ///   `n − cycles(π)` where `π` maps `from`'s leaf slots to `self`'s;
    /// * each join slot whose method differs needs exactly one Override.
    pub fn min_steps_from(&self, from: &Icp) -> usize {
        debug_assert_eq!(self.order.len(), from.order.len());
        let n = self.order.len();
        // Map relation -> slot in `self`, then express π over slots.
        let mut slot_of = vec![0usize; n];
        for (slot, &rel) in self.order.iter().enumerate() {
            slot_of[rel] = slot;
        }
        let perm: Vec<usize> = from.order.iter().map(|&rel| slot_of[rel]).collect();
        let mut seen = vec![false; n];
        let mut cycles = 0usize;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            cycles += 1;
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cur = perm[cur];
            }
        }
        let swaps = n - cycles;
        let overrides = self
            .methods
            .iter()
            .zip(&from.methods)
            .filter(|(a, b)| a != b)
            .count();
        swaps + overrides
    }
}

impl Codec for JoinMethod {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.index() as u8);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let i = r.get_u8()? as usize;
        JoinMethod::from_index(i)
            .ok_or_else(|| FossError::Serde(format!("invalid join-method tag {i}")))
    }
}

impl Codec for Icp {
    fn encode(&self, w: &mut ByteWriter) {
        self.order.encode(w);
        self.methods.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        // Re-validate through the constructor so corrupt bytes cannot smuggle
        // in a non-permutation order.
        Icp::new(Vec::decode(r)?, Vec::decode(r)?)
            .map_err(|e| FossError::Serde(format!("decoded ICP invalid: {e}")))
    }
}

impl fmt::Display for Icp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "order={:?} methods=[", self.order)?;
        for (i, m) in self.methods.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn icp4() -> Icp {
        Icp::new(
            vec![0, 1, 2, 3],
            vec![JoinMethod::Hash, JoinMethod::Merge, JoinMethod::NestLoop],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        assert!(Icp::new(vec![], vec![]).is_err());
        assert!(Icp::new(vec![0, 1], vec![]).is_err());
        assert!(Icp::new(vec![0, 0], vec![JoinMethod::Hash]).is_err());
        assert!(Icp::new(vec![0, 2], vec![JoinMethod::Hash]).is_err());
        assert!(Icp::new(vec![0, 1], vec![JoinMethod::Hash]).is_ok());
    }

    #[test]
    fn swap_uses_one_based_labels() {
        let mut icp = icp4();
        icp.swap(1, 4).unwrap();
        assert_eq!(icp.order, vec![3, 1, 2, 0]);
        assert!(icp.swap(0, 1).is_err());
        assert!(icp.swap(1, 1).is_err());
        assert!(icp.swap(1, 5).is_err());
    }

    #[test]
    fn override_sets_method() {
        let mut icp = icp4();
        icp.override_method(2, 3).unwrap();
        assert_eq!(icp.methods[1], JoinMethod::NestLoop);
        assert!(icp.override_method(0, 1).is_err());
        assert!(icp.override_method(4, 1).is_err());
        assert!(icp.override_method(1, 4).is_err());
        assert!(icp.override_method(1, 0).is_err());
    }

    #[test]
    fn parent_join_mapping() {
        assert_eq!(Icp::parent_join_of_leaf(1), 1);
        assert_eq!(Icp::parent_join_of_leaf(2), 1);
        assert_eq!(Icp::parent_join_of_leaf(3), 2);
        assert_eq!(Icp::parent_join_of_leaf(5), 4);
        assert_eq!(Icp::leaves_under_join(1), (Some(1), 2));
        assert_eq!(Icp::leaves_under_join(3), (None, 4));
    }

    #[test]
    fn fingerprint_distinguishes_plans() {
        let a = icp4();
        let mut b = icp4();
        b.override_method(1, 2).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), icp4().fingerprint());
    }

    #[test]
    fn min_steps_identity_is_zero() {
        let a = icp4();
        assert_eq!(a.min_steps_from(&a), 0);
    }

    #[test]
    fn min_steps_counts_transpositions_and_overrides() {
        let base = icp4();
        let mut one_swap = base.clone();
        one_swap.swap(1, 2).unwrap();
        assert_eq!(one_swap.min_steps_from(&base), 1);

        // A 3-cycle needs two transpositions.
        let mut cycle = base.clone();
        cycle.order = vec![1, 2, 0, 3];
        assert_eq!(cycle.min_steps_from(&base), 2);

        let mut mixed = one_swap.clone();
        mixed.override_method(3, 1).unwrap();
        assert_eq!(mixed.min_steps_from(&base), 2);
    }

    #[test]
    fn min_steps_is_symmetric() {
        let base = icp4();
        let mut other = base.clone();
        other.swap(1, 3).unwrap();
        other.swap(2, 4).unwrap();
        other.override_method(1, 3).unwrap();
        assert_eq!(other.min_steps_from(&base), base.min_steps_from(&other));
        assert_eq!(other.min_steps_from(&base), 3);
    }

    #[test]
    fn repeated_override_is_not_shorter() {
        // Overriding the same join twice still differs from base by one step:
        // the penalty mechanism relies on exactly this.
        let base = icp4();
        let mut p = base.clone();
        p.override_method(1, 2).unwrap();
        p.override_method(1, 3).unwrap();
        assert_eq!(p.min_steps_from(&base), 1);
    }

    #[test]
    fn method_index_roundtrip() {
        for m in ALL_JOIN_METHODS {
            assert_eq!(JoinMethod::from_index(m.index()), Some(m));
        }
        assert_eq!(JoinMethod::from_index(3), None);
    }
}
