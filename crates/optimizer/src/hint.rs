//! Hint steering: complete an incomplete plan — our `pg_hint_plan`.
//!
//! Given an ICP (join order + join methods) the expert engine builds the
//! corresponding left-deep plan, filling in everything the ICP does not pin
//! down: access paths, index nested loops, cardinality and cost estimates.
//! This is the state-transition function `Γp(Q, ICP) → CP` of the paper's
//! environment (both real and simulated).

use foss_common::{FossError, Result};
use foss_query::Query;

use crate::dp::TraditionalOptimizer;
use crate::icp::Icp;
use crate::plan::PhysicalPlan;

impl TraditionalOptimizer {
    /// Complete `icp` into a physical plan for `query`.
    ///
    /// The join order and join methods are taken verbatim from the hint; the
    /// optimizer contributes access-path selection (seq vs index scan,
    /// index nested loop) using its own cost estimates — the "table scan
    /// operators and other nodes will be complemented by the traditional
    /// optimizer using its own expert knowledge" behaviour of §III.
    pub fn optimize_with_hint(&self, query: &Query, icp: &Icp) -> Result<PhysicalPlan> {
        let n = query.relation_count();
        if icp.relation_count() != n {
            return Err(FossError::InvalidPlan(format!(
                "hint covers {} relations, query has {n}",
                icp.relation_count()
            )));
        }
        let mut left = self.best_scan(query, icp.order[0]);
        let mut joined: Vec<usize> = vec![icp.order[0]];
        for (k, &rel) in icp.order.iter().enumerate().skip(1) {
            let method = icp.methods[k - 1];
            let edges = query.edges_between_set(&joined, rel);
            let cand = self.best_join_with_method(query, &left, rel, &edges, method);
            left = self.attach(left, cand);
            joined.push(rel);
        }
        Ok(PhysicalPlan { root: left })
    }

    /// `Γp(Q, /) → CP` for `t = 0` and `Γp(Q, ICP) → CP` for `t > 0`
    /// (the paper's environment transition, Algorithm 1 lines 2 and 15).
    pub fn transition(&self, query: &Query, icp: Option<&Icp>) -> Result<PhysicalPlan> {
        match icp {
            None => self.optimize(query),
            Some(icp) => self.optimize_with_hint(query, icp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::CardinalityEstimator;
    use crate::cost::CostModel;
    use crate::icp::JoinMethod;
    use crate::plan::PlanNode;
    use foss_catalog::{ColumnDef, Schema, TableDef, TableStats};
    use foss_common::QueryId;
    use foss_query::QueryBuilder;
    use foss_storage::{Column, Table};
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, TraditionalOptimizer, Query) {
        let mut schema = Schema::new();
        let mut stats = Vec::new();
        for (name, rows) in [("a", 50usize), ("b", 5000), ("c", 500)] {
            schema
                .add_table(TableDef {
                    name: name.into(),
                    columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("fk")],
                })
                .unwrap();
            let ids: Vec<i64> = (0..rows as i64).collect();
            let fks: Vec<i64> = (0..rows as i64).map(|i| i % 50).collect();
            let t = Table::new(
                name,
                vec![
                    ("id".into(), Column::new(ids)),
                    ("fk".into(), Column::new(fks)),
                ],
            )
            .unwrap();
            stats.push(TableStats::analyze(&t, 16));
        }
        let schema = Arc::new(schema);
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(stats),
            CostModel::default(),
        );
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let a = qb.relation(schema.table_id("a").unwrap(), "a");
        let b = qb.relation(schema.table_id("b").unwrap(), "b");
        let c = qb.relation(schema.table_id("c").unwrap(), "c");
        qb.join(a, 0, b, 1).join(a, 0, c, 1);
        let q = qb.build(&schema).unwrap();
        (schema, opt, q)
    }

    #[test]
    fn hint_is_respected_verbatim() {
        let (_, opt, q) = setup();
        let icp = Icp::new(vec![2, 0, 1], vec![JoinMethod::NestLoop, JoinMethod::Merge]).unwrap();
        let plan = opt.optimize_with_hint(&q, &icp).unwrap();
        let extracted = plan.extract_icp().unwrap();
        assert_eq!(extracted, icp, "hinted order/methods must round-trip");
    }

    #[test]
    fn transition_matches_paper_contract() {
        let (_, opt, q) = setup();
        let original = opt.transition(&q, None).unwrap();
        let icp = original.extract_icp().unwrap();
        let steered = opt.transition(&q, Some(&icp)).unwrap();
        // Re-steering with the extracted ICP reproduces the same skeleton.
        assert_eq!(steered.extract_icp().unwrap(), icp);
    }

    #[test]
    fn wrong_arity_hint_rejected() {
        let (_, opt, q) = setup();
        let icp = Icp::new(vec![0, 1], vec![JoinMethod::Hash]).unwrap();
        assert!(opt.optimize_with_hint(&q, &icp).is_err());
    }

    #[test]
    fn cross_join_hints_are_completed_not_rejected() {
        // Order (b, c, a): b and c share no edge, so the first join is a
        // cross join; hint completion must still produce a plan (the planner
        // masks such actions, but robustness matters for property tests).
        let (_, opt, q) = setup();
        let icp = Icp::new(vec![1, 2, 0], vec![JoinMethod::Hash, JoinMethod::Hash]).unwrap();
        let plan = opt.optimize_with_hint(&q, &icp).unwrap();
        assert!(plan.est_rows() >= 1.0);
    }

    #[test]
    fn nestloop_hint_can_choose_index_inner() {
        let (_, opt, q) = setup();
        // Join (a ⋈ b) with NL: b.fk is the join column but only b.id is
        // indexed... join edge is a.id = b.fk so inner lookup column is fk
        // (not indexed) → naive NL. Now order (b, a): inner lookup column is
        // a.id (indexed) → index NL expected.
        let icp = Icp::new(vec![1, 0, 2], vec![JoinMethod::NestLoop, JoinMethod::Hash]).unwrap();
        let plan = opt.optimize_with_hint(&q, &icp).unwrap();
        fn find_nl(node: &PlanNode) -> Option<bool> {
            match node {
                PlanNode::Scan { .. } => None,
                PlanNode::Join {
                    method,
                    index_nl,
                    left,
                    ..
                } => {
                    if *method == JoinMethod::NestLoop {
                        Some(*index_nl)
                    } else {
                        find_nl(left)
                    }
                }
            }
        }
        assert_eq!(find_nl(&plan.root), Some(true));
    }
}
