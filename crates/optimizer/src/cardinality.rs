//! Histogram-based cardinality estimation with textbook assumptions.
//!
//! Selectivity of a conjunction is the *product* of individual selectivities
//! (attribute-value independence), and equi-join selectivity is
//! `1 / max(ndv_left, ndv_right)` (System R / PostgreSQL's `eqjoinsel`).
//! Both assumptions are wrong on the skewed, correlated workloads generated
//! by `foss-workloads` — producing exactly the mis-costed joins the paper's
//! motivating example (JOB query 1b) describes.

use foss_catalog::{Schema, TableStats};
use foss_query::{JoinEdge, Query};

/// Estimates base-relation and join cardinalities from catalog statistics.
#[derive(Debug, Clone)]
pub struct CardinalityEstimator {
    stats: Vec<TableStats>,
}

impl CardinalityEstimator {
    /// Build from per-table statistics, in `TableId` order.
    pub fn new(stats: Vec<TableStats>) -> Self {
        Self { stats }
    }

    /// Statistics for table `t`.
    pub fn table_stats(&self, t: usize) -> &TableStats {
        &self.stats[t]
    }

    /// Estimated rows of relation `rel` of `query` after its scan predicates.
    ///
    /// Equality predicates use the textbook **uniformity assumption**
    /// `sel = 1 / ndv` (PostgreSQL's fallback when a constant is not in the
    /// MCV list — and our estimator, like many engines at planning time,
    /// keeps no MCVs). On Zipf-skewed columns this underestimates hot
    /// constants by orders of magnitude, which is the error source behind
    /// the paper's motivating example. Range predicates interpolate on the
    /// histogram, which is much less skew-sensitive.
    pub fn base_rows(&self, _schema: &Schema, query: &Query, rel: usize) -> f64 {
        let relation = &query.relations[rel];
        let ts = &self.stats[relation.table.index()];
        let mut sel = 1.0f64;
        for p in &relation.predicates {
            let cs = &ts.columns[p.column()];
            sel *= match *p {
                foss_query::Predicate::Eq { value, .. } => {
                    let (lo, hi) = (cs.histogram.min(), cs.histogram.max());
                    if value < lo || value > hi {
                        0.0
                    } else {
                        1.0 / cs.distinct.max(1) as f64
                    }
                }
                foss_query::Predicate::Range { lo, hi, .. } => cs.selectivity_range(lo, hi),
            };
        }
        (ts.row_count as f64 * sel).max(1.0)
    }

    /// Selectivity of one equi-join edge between two relations of `query`.
    pub fn join_selectivity(&self, query: &Query, edge: &JoinEdge) -> f64 {
        let lt = query.relations[edge.left].table.index();
        let rt = query.relations[edge.right].table.index();
        let ndv_l = self.stats[lt].columns[edge.left_column].distinct.max(1) as f64;
        let ndv_r = self.stats[rt].columns[edge.right_column].distinct.max(1) as f64;
        1.0 / ndv_l.max(ndv_r)
    }

    /// Estimated output rows when joining a subplan of `left_rows` estimated
    /// rows with relation `right` (of `right_rows`), under `edges`.
    ///
    /// Multiple edges multiply (independence), the error source for cyclic
    /// join graphs.
    pub fn join_rows(
        &self,
        query: &Query,
        left_rows: f64,
        right_rows: f64,
        edges: &[JoinEdge],
    ) -> f64 {
        let mut sel = 1.0f64;
        for e in edges {
            sel *= self.join_selectivity(query, e);
        }
        (left_rows * right_rows * sel).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, ColumnStats, TableDef};
    use foss_common::QueryId;
    use foss_query::{Predicate, QueryBuilder};

    fn setup() -> (Schema, CardinalityEstimator, Query) {
        let mut schema = Schema::new();
        let a = schema
            .add_table(TableDef {
                name: "a".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("v")],
            })
            .unwrap();
        let b = schema
            .add_table(TableDef {
                name: "b".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("a_id")],
            })
            .unwrap();

        // Table a: 1000 rows, id 0..1000 distinct, v uniform 0..10.
        let ids: Vec<i64> = (0..1000).collect();
        let vs: Vec<i64> = (0..1000).map(|i| i % 10).collect();
        // Table b: 5000 rows, a_id uniform over 0..1000.
        let bids: Vec<i64> = (0..5000).collect();
        let aids: Vec<i64> = (0..5000).map(|i| i % 1000).collect();
        let stats = vec![
            TableStats {
                row_count: 1000,
                columns: vec![
                    ColumnStats::analyze(&ids, 32),
                    ColumnStats::analyze(&vs, 32),
                ],
            },
            TableStats {
                row_count: 5000,
                columns: vec![
                    ColumnStats::analyze(&bids, 32),
                    ColumnStats::analyze(&aids, 32),
                ],
            },
        ];
        let est = CardinalityEstimator::new(stats);

        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let ra = qb.relation(a, "a");
        let rb = qb.relation(b, "b");
        qb.join(ra, 0, rb, 1);
        qb.predicate(
            ra,
            Predicate::Eq {
                column: 1,
                value: 3,
            },
        );
        let q = qb.build(&schema).unwrap();
        (schema, est, q)
    }

    #[test]
    fn base_rows_applies_predicates() {
        let (schema, est, q) = setup();
        let rows = est.base_rows(&schema, &q, 0);
        // 1000 rows * sel(v=3) ≈ 0.1 → ~100.
        assert!((50.0..200.0).contains(&rows), "rows={rows}");
        let rows_b = est.base_rows(&schema, &q, 1);
        assert!((rows_b - 5000.0).abs() < 1.0);
    }

    #[test]
    fn join_selectivity_uses_max_ndv() {
        let (_, est, q) = setup();
        let sel = est.join_selectivity(&q, &q.joins[0]);
        // ndv(a.id)=1000, ndv(b.a_id)=1000 → 1/1000.
        assert!((sel - 0.001).abs() < 1e-6, "sel={sel}");
    }

    #[test]
    fn join_rows_combines_inputs() {
        let (_, est, q) = setup();
        let rows = est.join_rows(&q, 100.0, 5000.0, &q.joins);
        assert!((rows - 500.0).abs() < 1.0, "rows={rows}");
    }

    #[test]
    fn join_rows_never_below_one() {
        let (_, est, q) = setup();
        assert_eq!(est.join_rows(&q, 1.0, 1.0, &q.joins), 1.0);
    }
}
