//! Coarse steering modes used by the *plan-steerer* baselines.
//!
//! * [`TraditionalOptimizer::optimize_with_methods`] — plan with a restricted
//!   set of join methods, the mechanism behind Bao-style hint sets
//!   ("disable nested loop join for the entire query");
//! * [`TraditionalOptimizer::optimize_with_leading`] — force a leading join
//!   order prefix and let the optimizer complete the plan, the mechanism
//!   behind HybridQO's MCTS-discovered leading hints.

use foss_common::{FossError, Result};
use foss_query::Query;

use crate::dp::TraditionalOptimizer;
use crate::icp::JoinMethod;
use crate::plan::{PhysicalPlan, PlanNode};

impl TraditionalOptimizer {
    /// Plan `query` using only join methods in `allowed` (Bao hint sets).
    pub fn optimize_with_methods(
        &self,
        query: &Query,
        allowed: &[JoinMethod],
    ) -> Result<PhysicalPlan> {
        if allowed.is_empty() {
            return Err(FossError::InvalidPlan("empty join-method set".into()));
        }
        let n = query.relation_count();
        if n <= 1 {
            return self.optimize(query);
        }
        // Greedy left-deep under the restriction: seed with the cheapest
        // allowed pair, extend with the cheapest allowed join. (PostgreSQL's
        // enable_* GUCs degrade similarly: the restricted space is searched
        // with the same cost model.)
        let mut best_seed: Option<(PlanNode, Vec<usize>)> = None;
        for e in &query.joins {
            for (a, b) in [(e.left, e.right), (e.right, e.left)] {
                let left = self.best_scan(query, a);
                let edges = query.edges_between_set(&[a], b);
                if let Some(cand) = self.best_allowed(query, &left, b, &edges, allowed) {
                    let node = self.attach(left, cand);
                    if best_seed
                        .as_ref()
                        .is_none_or(|(p, _)| node.est_cost() < p.est_cost())
                    {
                        best_seed = Some((node, vec![a, b]));
                    }
                }
            }
        }
        let (mut plan, mut rels) =
            best_seed.ok_or_else(|| FossError::InvalidQuery("no join edges".into()))?;
        while rels.len() < n {
            let mut best: Option<(PlanNode, usize)> = None;
            for r in 0..n {
                if rels.contains(&r) {
                    continue;
                }
                let edges = query.edges_between_set(&rels, r);
                if edges.is_empty() {
                    continue;
                }
                if let Some(cand) = self.best_allowed(query, &plan, r, &edges, allowed) {
                    let node = self.attach(plan.clone(), cand);
                    if best
                        .as_ref()
                        .is_none_or(|(p, _)| node.est_cost() < p.est_cost())
                    {
                        best = Some((node, r));
                    }
                }
            }
            let (node, r) =
                best.ok_or_else(|| FossError::InvalidQuery("join graph disconnected".into()))?;
            plan = node;
            rels.push(r);
        }
        Ok(PhysicalPlan { root: plan })
    }

    fn best_allowed(
        &self,
        query: &Query,
        left: &PlanNode,
        right_rel: usize,
        edges: &[foss_query::JoinEdge],
        allowed: &[JoinMethod],
    ) -> Option<crate::dp::JoinCandidate> {
        self.join_candidates(query, left, right_rel, edges)
            .into_iter()
            .filter(|c| allowed.contains(&c.method))
            .min_by(|a, b| a.incremental_cost.total_cmp(&b.incremental_cost))
    }

    /// Plan `query` with a forced leading join-order prefix (HybridQO).
    ///
    /// The prefix relations are joined first, in order, with cost-chosen
    /// methods; the remaining relations are appended greedily by cost.
    pub fn optimize_with_leading(&self, query: &Query, leading: &[usize]) -> Result<PhysicalPlan> {
        let n = query.relation_count();
        if leading.is_empty() || leading.len() > n {
            return Err(FossError::InvalidPlan("bad leading prefix".into()));
        }
        let mut seen = vec![false; n];
        for &r in leading {
            if r >= n || seen[r] {
                return Err(FossError::InvalidPlan(
                    "leading prefix not a partial permutation".into(),
                ));
            }
            seen[r] = true;
        }
        let mut plan = self.best_scan(query, leading[0]);
        let mut rels = vec![leading[0]];
        for &r in &leading[1..] {
            let edges = query.edges_between_set(&rels, r);
            let cand = self.best_join(query, &plan, r, &edges);
            plan = self.attach(plan, cand);
            rels.push(r);
        }
        while rels.len() < n {
            let mut best: Option<(PlanNode, usize)> = None;
            for r in 0..n {
                if rels.contains(&r) {
                    continue;
                }
                let edges = query.edges_between_set(&rels, r);
                if edges.is_empty() {
                    continue;
                }
                let cand = self.best_join(query, &plan, r, &edges);
                let node = self.attach(plan.clone(), cand);
                if best
                    .as_ref()
                    .is_none_or(|(p, _)| node.est_cost() < p.est_cost())
                {
                    best = Some((node, r));
                }
            }
            let (node, r) =
                best.ok_or_else(|| FossError::InvalidQuery("join graph disconnected".into()))?;
            plan = node;
            rels.push(r);
        }
        Ok(PhysicalPlan { root: plan })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::CardinalityEstimator;
    use crate::cost::CostModel;
    use crate::icp::ALL_JOIN_METHODS;
    use foss_catalog::{ColumnDef, Schema, TableDef, TableStats};
    use foss_common::QueryId;
    use foss_query::QueryBuilder;
    use foss_storage::{Column, Table};
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, TraditionalOptimizer, Query) {
        let mut schema = Schema::new();
        let mut stats = Vec::new();
        for (name, rows) in [("a", 60usize), ("b", 6000), ("c", 600)] {
            schema
                .add_table(TableDef {
                    name: name.into(),
                    columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("fk")],
                })
                .unwrap();
            let ids: Vec<i64> = (0..rows as i64).collect();
            let fks: Vec<i64> = (0..rows as i64).map(|i| i % 60).collect();
            let t = Table::new(
                name,
                vec![
                    ("id".into(), Column::new(ids)),
                    ("fk".into(), Column::new(fks)),
                ],
            )
            .unwrap();
            stats.push(TableStats::analyze(&t, 16));
        }
        let schema = Arc::new(schema);
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(stats),
            CostModel::default(),
        );
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let a = qb.relation(schema.table_id("a").unwrap(), "a");
        let b = qb.relation(schema.table_id("b").unwrap(), "b");
        let c = qb.relation(schema.table_id("c").unwrap(), "c");
        qb.join(a, 0, b, 1).join(a, 0, c, 1);
        let q = qb.build(&schema).unwrap();
        (schema, opt, q)
    }

    fn methods_used(plan: &PhysicalPlan) -> Vec<JoinMethod> {
        plan.extract_icp().unwrap().methods
    }

    #[test]
    fn method_restriction_is_respected() {
        let (_, opt, q) = setup();
        for allowed in [
            vec![JoinMethod::Hash],
            vec![JoinMethod::Merge],
            vec![JoinMethod::NestLoop],
            vec![JoinMethod::Hash, JoinMethod::Merge],
        ] {
            let plan = opt.optimize_with_methods(&q, &allowed).unwrap();
            for m in methods_used(&plan) {
                assert!(allowed.contains(&m), "{m} not in {allowed:?}");
            }
        }
    }

    #[test]
    fn unrestricted_set_matches_or_beats_restrictions() {
        let (_, opt, q) = setup();
        let free = opt.optimize(&q).unwrap().est_cost();
        for m in ALL_JOIN_METHODS {
            let restricted = opt.optimize_with_methods(&q, &[m]).unwrap().est_cost();
            assert!(free <= restricted + 1e-6);
        }
    }

    #[test]
    fn empty_method_set_rejected() {
        let (_, opt, q) = setup();
        assert!(opt.optimize_with_methods(&q, &[]).is_err());
    }

    #[test]
    fn leading_prefix_is_respected() {
        let (_, opt, q) = setup();
        for leading in [vec![2usize, 0], vec![1, 0], vec![0, 2, 1]] {
            let plan = opt.optimize_with_leading(&q, &leading).unwrap();
            let icp = plan.extract_icp().unwrap();
            assert_eq!(
                &icp.order[..leading.len()],
                &leading[..],
                "prefix not honoured"
            );
        }
    }

    #[test]
    fn bad_leading_prefixes_rejected() {
        let (_, opt, q) = setup();
        assert!(opt.optimize_with_leading(&q, &[]).is_err());
        assert!(opt.optimize_with_leading(&q, &[0, 0]).is_err());
        assert!(opt.optimize_with_leading(&q, &[7]).is_err());
    }
}
