//! The cost model shared by the optimizer (with *estimated* cardinalities)
//! and the executor (with *actual* work counts).
//!
//! Costs are expressed in abstract **work units** (~ one tuple touch). The
//! executor in `foss-executor` charges the very same constants for the work
//! it actually performs, so "true latency" and "estimated cost" live on the
//! same scale and differ only through cardinality estimation error — the
//! mechanism the paper attributes PostgreSQL's suboptimal plans to.

use serde::{Deserialize, Serialize};

use crate::icp::JoinMethod;

/// Tunable cost constants (defaults roughly follow the relative magnitudes
/// of PostgreSQL's `cpu_tuple_cost` family).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostParams {
    /// Cost of emitting/scanning one tuple.
    pub cpu_tuple: f64,
    /// Cost of evaluating one predicate on one tuple.
    pub pred_eval: f64,
    /// Cost of inserting one tuple into a hash table (build side).
    pub hash_build: f64,
    /// Cost of probing the hash table with one tuple.
    pub hash_probe: f64,
    /// Per-row-per-log2(rows) cost of sorting an input for merge join.
    pub sort_factor: f64,
    /// Cost of advancing one input tuple during the merge phase.
    pub merge_step: f64,
    /// Cost of one (outer × inner) pair comparison in a naive nested loop.
    pub nl_pair: f64,
    /// Fixed cost of one index probe (B-tree descent).
    pub index_probe: f64,
    /// Cost of fetching one matching tuple from an index.
    pub index_fetch: f64,
    /// Cost of materialising one output tuple of a join.
    pub output_tuple: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            cpu_tuple: 1.0,
            pred_eval: 0.2,
            hash_build: 1.7,
            hash_probe: 1.2,
            sort_factor: 0.12,
            merge_step: 1.0,
            nl_pair: 0.55,
            index_probe: 4.0,
            index_fetch: 1.0,
            output_tuple: 0.3,
        }
    }
}

/// Computes operator costs from cardinalities (estimated or actual).
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel {
    /// The constants in use.
    pub params: CostParams,
}

impl CostModel {
    /// Model with explicit constants.
    pub fn new(params: CostParams) -> Self {
        Self { params }
    }

    /// Cost of a sequential scan over `table_rows` rows evaluating
    /// `n_predicates` predicates per row.
    pub fn seq_scan(&self, table_rows: f64, n_predicates: usize) -> f64 {
        table_rows * (self.params.cpu_tuple + self.params.pred_eval * n_predicates as f64)
    }

    /// Cost of an index scan returning `matching_rows` of `table_rows`,
    /// then filtering with `residual_predicates`.
    pub fn index_scan(
        &self,
        table_rows: f64,
        matching_rows: f64,
        residual_predicates: usize,
    ) -> f64 {
        self.params.index_probe
            + 0.3 * (table_rows.max(2.0)).log2()
            + matching_rows
                * (self.params.index_fetch + self.params.pred_eval * residual_predicates as f64)
    }

    /// Cost of sorting `rows` tuples (merge-join input preparation).
    pub fn sort(&self, rows: f64) -> f64 {
        let r = rows.max(2.0);
        self.params.sort_factor * r * r.log2()
    }

    /// Incremental cost of a join (children's costs excluded).
    ///
    /// * `outer_rows` / `inner_rows` — input cardinalities;
    /// * `out_rows` — output cardinality;
    /// * `index_nl` — nested loop probes an inner-side index instead of
    ///   rescanning (only meaningful for [`JoinMethod::NestLoop`]);
    /// * `inner_table_rows` — base-table size behind the index.
    pub fn join(
        &self,
        method: JoinMethod,
        outer_rows: f64,
        inner_rows: f64,
        out_rows: f64,
        index_nl: bool,
        inner_table_rows: f64,
    ) -> f64 {
        let p = &self.params;
        let emit = out_rows * p.output_tuple;
        match method {
            JoinMethod::Hash => inner_rows * p.hash_build + outer_rows * p.hash_probe + emit,
            JoinMethod::Merge => {
                self.sort(outer_rows)
                    + self.sort(inner_rows)
                    + (outer_rows + inner_rows) * p.merge_step
                    + emit
            }
            JoinMethod::NestLoop => {
                if index_nl {
                    let descent = p.index_probe + 0.3 * inner_table_rows.max(2.0).log2();
                    let fetched = (out_rows / outer_rows.max(1.0)).max(0.0);
                    outer_rows * (descent + fetched * p.index_fetch) + emit
                } else {
                    outer_rows * inner_rows * p.nl_pair + emit
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn seq_scan_scales_with_predicates() {
        let a = m().seq_scan(1000.0, 0);
        let b = m().seq_scan(1000.0, 3);
        assert!(b > a);
        assert!((a - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn index_scan_beats_seq_scan_for_selective_lookups() {
        let seq = m().seq_scan(100_000.0, 1);
        let idx = m().index_scan(100_000.0, 10.0, 0);
        assert!(idx < seq / 100.0, "idx={idx} seq={seq}");
    }

    #[test]
    fn hash_join_beats_naive_nl_on_large_inputs() {
        let hash = m().join(
            JoinMethod::Hash,
            10_000.0,
            10_000.0,
            10_000.0,
            false,
            10_000.0,
        );
        let nl = m().join(
            JoinMethod::NestLoop,
            10_000.0,
            10_000.0,
            10_000.0,
            false,
            10_000.0,
        );
        assert!(hash < nl / 100.0, "hash={hash} nl={nl}");
    }

    #[test]
    fn index_nl_beats_hash_for_tiny_outer() {
        // 3 outer rows probing an indexed table of 1M rows: NL should win —
        // the paper's query-1b situation.
        let hash = m().join(JoinMethod::Hash, 3.0, 1_000_000.0, 3.0, false, 1_000_000.0);
        let inl = m().join(
            JoinMethod::NestLoop,
            3.0,
            1_000_000.0,
            3.0,
            true,
            1_000_000.0,
        );
        assert!(inl < hash / 1000.0, "inl={inl} hash={hash}");
    }

    #[test]
    fn merge_pays_for_sorting() {
        let merge = m().join(JoinMethod::Merge, 1000.0, 1000.0, 1000.0, false, 1000.0);
        let hash = m().join(JoinMethod::Hash, 1000.0, 1000.0, 1000.0, false, 1000.0);
        assert!(merge > hash);
    }

    #[test]
    fn sort_is_superlinear() {
        assert!(m().sort(2000.0) > 2.0 * m().sort(1000.0));
        // Degenerate inputs do not produce NaN/negative costs.
        assert!(m().sort(0.0) >= 0.0);
        assert!(m().sort(1.0) >= 0.0);
    }
}
