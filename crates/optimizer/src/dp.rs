//! Left-deep dynamic-programming plan enumeration (Selinger).

use std::sync::Arc;

use foss_catalog::Schema;
use foss_common::{FossError, FxHashMap, Result};
use foss_query::{JoinEdge, Predicate, Query};

use crate::cardinality::CardinalityEstimator;
use crate::cost::CostModel;
use crate::icp::{JoinMethod, ALL_JOIN_METHODS};
use crate::plan::{AccessPath, PhysicalPlan, PlanNode};

/// The expert engine: schema + statistics + cost model.
///
/// `optimize` plays PostgreSQL's planner; `optimize_with_hint` (in
/// [`crate::hint`]) plays `pg_hint_plan`.
#[derive(Debug, Clone)]
pub struct TraditionalOptimizer {
    schema: Arc<Schema>,
    estimator: CardinalityEstimator,
    cost: CostModel,
}

/// One candidate physical join, produced per join method.
#[derive(Debug, Clone)]
pub(crate) struct JoinCandidate {
    pub method: JoinMethod,
    pub index_nl: bool,
    pub edges: Vec<JoinEdge>,
    pub out_rows: f64,
    /// Incremental cost of the join plus the inner scan.
    pub incremental_cost: f64,
    /// The inner scan node to attach (access path already chosen).
    pub inner: PlanNode,
}

impl TraditionalOptimizer {
    /// Build the optimizer over a schema and its statistics.
    pub fn new(schema: Arc<Schema>, estimator: CardinalityEstimator, cost: CostModel) -> Self {
        Self {
            schema,
            estimator,
            cost,
        }
    }

    /// The schema this optimizer plans against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The cardinality estimator (exposed for baselines that reuse it).
    pub fn estimator(&self) -> &CardinalityEstimator {
        &self.estimator
    }

    /// The cost model (shared with the executor for work accounting).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Plan `query` from scratch: Selinger DP for ≤ 16 relations, greedy
    /// beyond (mirroring PostgreSQL's GEQO cutoff; GEQO itself is disabled
    /// in the paper's setup, and our workloads stay under the cutoff).
    pub fn optimize(&self, query: &Query) -> Result<PhysicalPlan> {
        let n = query.relation_count();
        if n == 0 {
            return Err(FossError::InvalidQuery("empty query".into()));
        }
        if n == 1 {
            return Ok(PhysicalPlan {
                root: self.best_scan(query, 0),
            });
        }
        if n <= 16 {
            self.optimize_dp(query)
        } else {
            self.optimize_greedy(query)
        }
    }

    fn optimize_dp(&self, query: &Query) -> Result<PhysicalPlan> {
        let n = query.relation_count();
        let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        let mut dp: FxHashMap<u32, PlanNode> = FxHashMap::default();
        for r in 0..n {
            dp.insert(1 << r, self.best_scan(query, r));
        }
        let mut frontier: Vec<u32> = (0..n).map(|r| 1u32 << r).collect();
        for _size in 1..n {
            let mut next: FxHashMap<u32, PlanNode> = FxHashMap::default();
            for &mask in &frontier {
                let left = &dp[&mask];
                let left_rels = mask_to_rels(mask);
                for r in 0..n {
                    if mask & (1 << r) != 0 {
                        continue;
                    }
                    let edges = query.edges_between_set(&left_rels, r);
                    if edges.is_empty() {
                        // No cross products during enumeration; connected
                        // queries always admit an edge-joined order.
                        continue;
                    }
                    let cand = self.best_join(query, left, r, &edges);
                    let new_mask = mask | (1 << r);
                    let node = self.attach(left.clone(), cand);
                    match next.get(&new_mask) {
                        Some(best) if best.est_cost() <= node.est_cost() => {}
                        _ => {
                            next.insert(new_mask, node);
                        }
                    }
                }
            }
            frontier = next.keys().copied().collect();
            dp.extend(next);
        }
        dp.remove(&full)
            .map(|root| PhysicalPlan { root })
            .ok_or_else(|| FossError::InvalidQuery("join graph unreachable via edges".into()))
    }

    fn optimize_greedy(&self, query: &Query) -> Result<PhysicalPlan> {
        let n = query.relation_count();
        // Seed with the cheapest edge-joined pair.
        let mut best_seed: Option<(PlanNode, Vec<usize>)> = None;
        for e in &query.joins {
            for (a, b) in [(e.left, e.right), (e.right, e.left)] {
                let left = self.best_scan(query, a);
                let edges = query.edges_between_set(&[a], b);
                let cand = self.best_join(query, &left, b, &edges);
                let node = self.attach(left, cand);
                if best_seed
                    .as_ref()
                    .is_none_or(|(p, _)| node.est_cost() < p.est_cost())
                {
                    best_seed = Some((node, vec![a, b]));
                }
            }
        }
        let (mut plan, mut rels) =
            best_seed.ok_or_else(|| FossError::InvalidQuery("no join edges".into()))?;
        while rels.len() < n {
            let mut best: Option<(PlanNode, usize)> = None;
            for r in 0..n {
                if rels.contains(&r) {
                    continue;
                }
                let edges = query.edges_between_set(&rels, r);
                if edges.is_empty() {
                    continue;
                }
                let cand = self.best_join(query, &plan, r, &edges);
                let node = self.attach(plan.clone(), cand);
                if best
                    .as_ref()
                    .is_none_or(|(p, _)| node.est_cost() < p.est_cost())
                {
                    best = Some((node, r));
                }
            }
            let (node, r) =
                best.ok_or_else(|| FossError::InvalidQuery("join graph disconnected".into()))?;
            plan = node;
            rels.push(r);
        }
        Ok(PhysicalPlan { root: plan })
    }

    /// Cheapest access path for relation `rel` of `query`.
    pub(crate) fn best_scan(&self, query: &Query, rel: usize) -> PlanNode {
        let relation = &query.relations[rel];
        let table_def = self.schema.table(relation.table);
        let stats = self.estimator.table_stats(relation.table.index());
        let table_rows = stats.row_count as f64;
        let est_rows = self.estimator.base_rows(&self.schema, query, rel);
        let npreds = relation.predicates.len();

        let mut best_access = AccessPath::SeqScan;
        let mut best_cost = self.cost.seq_scan(table_rows, npreds);

        // Try an index scan driven by each indexed predicate column.
        for p in &relation.predicates {
            let col = p.column();
            if !table_def.columns[col].indexed {
                continue;
            }
            let cs = &stats.columns[col];
            let sel = match *p {
                Predicate::Eq { value, .. } => cs.selectivity_eq(value),
                Predicate::Range { lo, hi, .. } => cs.selectivity_range(lo, hi),
            };
            let matching = (table_rows * sel).max(1.0);
            let cost = self.cost.index_scan(table_rows, matching, npreds - 1);
            if cost < best_cost {
                best_cost = cost;
                best_access = AccessPath::IndexScan { column: col };
            }
        }
        PlanNode::Scan {
            relation: rel,
            access: best_access,
            est_rows,
            est_cost: best_cost,
        }
    }

    /// All physical candidates for joining `left` with relation `right_rel`.
    pub(crate) fn join_candidates(
        &self,
        query: &Query,
        left: &PlanNode,
        right_rel: usize,
        edges: &[JoinEdge],
    ) -> Vec<JoinCandidate> {
        let relation = &query.relations[right_rel];
        let table_def = self.schema.table(relation.table);
        let stats = self.estimator.table_stats(relation.table.index());
        let inner_table_rows = stats.row_count as f64;
        let inner_scan = self.best_scan(query, right_rel);
        let inner_rows = inner_scan.est_rows();
        let outer_rows = left.est_rows();
        let out_rows = if edges.is_empty() {
            (outer_rows * inner_rows).max(1.0) // cross join fallback (hints only)
        } else {
            self.estimator
                .join_rows(query, outer_rows, inner_rows, edges)
        };

        let mut cands = Vec::with_capacity(4);
        for method in ALL_JOIN_METHODS {
            let base_cost = self.cost.join(
                method,
                outer_rows,
                inner_rows,
                out_rows,
                false,
                inner_table_rows,
            );
            cands.push(JoinCandidate {
                method,
                index_nl: false,
                edges: edges.to_vec(),
                out_rows,
                incremental_cost: base_cost + inner_scan.est_cost(),
                inner: inner_scan.clone(),
            });
            if method == JoinMethod::NestLoop {
                if let Some(first) = edges.first() {
                    if table_def.columns[first.right_column].indexed {
                        let cost = self.cost.join(
                            method,
                            outer_rows,
                            inner_rows,
                            out_rows,
                            true,
                            inner_table_rows,
                        );
                        // The index replaces the inner scan entirely.
                        let inner = PlanNode::Scan {
                            relation: right_rel,
                            access: AccessPath::IndexScan {
                                column: first.right_column,
                            },
                            est_rows: inner_rows,
                            est_cost: 0.0,
                        };
                        cands.push(JoinCandidate {
                            method,
                            index_nl: true,
                            edges: edges.to_vec(),
                            out_rows,
                            incremental_cost: cost,
                            inner,
                        });
                    }
                }
            }
        }
        cands
    }

    /// Cheapest candidate among [`Self::join_candidates`].
    pub(crate) fn best_join(
        &self,
        query: &Query,
        left: &PlanNode,
        right_rel: usize,
        edges: &[JoinEdge],
    ) -> JoinCandidate {
        self.join_candidates(query, left, right_rel, edges)
            .into_iter()
            .min_by(|a, b| a.incremental_cost.total_cmp(&b.incremental_cost))
            .expect("at least three join methods")
    }

    /// Cheapest candidate *with a fixed join method* (hint completion).
    pub(crate) fn best_join_with_method(
        &self,
        query: &Query,
        left: &PlanNode,
        right_rel: usize,
        edges: &[JoinEdge],
        method: JoinMethod,
    ) -> JoinCandidate {
        self.join_candidates(query, left, right_rel, edges)
            .into_iter()
            .filter(|c| c.method == method)
            .min_by(|a, b| a.incremental_cost.total_cmp(&b.incremental_cost))
            .expect("every method yields at least one candidate")
    }

    /// Attach a candidate to the current left-deep prefix.
    pub(crate) fn attach(&self, left: PlanNode, cand: JoinCandidate) -> PlanNode {
        let est_cost = left.est_cost() + cand.incremental_cost;
        PlanNode::Join {
            method: cand.method,
            left: Box::new(left),
            right: Box::new(cand.inner),
            edges: cand.edges,
            index_nl: cand.index_nl,
            est_rows: cand.out_rows,
            est_cost,
        }
    }
}

fn mask_to_rels(mask: u32) -> Vec<usize> {
    (0..32).filter(|&r| mask & (1 << r) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostParams;
    use foss_catalog::{ColumnDef, TableDef, TableStats};
    use foss_common::QueryId;
    use foss_query::QueryBuilder;
    use foss_storage::{Column, Table};

    /// Chain schema a—b—c with very different sizes so the join order matters.
    fn setup() -> (Arc<Schema>, TraditionalOptimizer, Query) {
        let mut schema = Schema::new();
        let mut tables = Vec::new();
        for (name, rows) in [("a", 100usize), ("b", 10_000), ("c", 1000)] {
            schema
                .add_table(TableDef {
                    name: name.into(),
                    columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("fk")],
                })
                .unwrap();
            let ids: Vec<i64> = (0..rows as i64).collect();
            let fks: Vec<i64> = (0..rows as i64).map(|i| i % 100).collect();
            tables.push(
                Table::new(
                    name,
                    vec![
                        ("id".into(), Column::new(ids)),
                        ("fk".into(), Column::new(fks)),
                    ],
                )
                .unwrap(),
            );
        }
        let stats: Vec<TableStats> = tables.iter().map(|t| TableStats::analyze(t, 16)).collect();
        let schema = Arc::new(schema);
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(stats),
            CostModel::new(CostParams::default()),
        );

        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let a = qb.relation(schema.table_id("a").unwrap(), "a");
        let b = qb.relation(schema.table_id("b").unwrap(), "b");
        let c = qb.relation(schema.table_id("c").unwrap(), "c");
        qb.join(a, 0, b, 1).join(a, 0, c, 1);
        let q = qb.build(&schema).unwrap();
        (schema, opt, q)
    }

    #[test]
    fn dp_produces_left_deep_plan_covering_all_relations() {
        let (_, opt, q) = setup();
        let plan = opt.optimize(&q).unwrap();
        assert!(plan.is_left_deep());
        let icp = plan.extract_icp().unwrap();
        assert_eq!(icp.relation_count(), 3);
        assert!(plan.est_cost() > 0.0);
    }

    #[test]
    fn dp_beats_or_matches_every_hint_order() {
        // DP optimality under its own estimates: no hinted left-deep plan may
        // have lower *estimated* cost.
        use crate::icp::Icp;
        let (_, opt, q) = setup();
        let best = opt.optimize(&q).unwrap();
        let orders = [vec![0, 1, 2], vec![0, 2, 1], vec![1, 0, 2], vec![2, 0, 1]];
        for order in orders {
            for m1 in ALL_JOIN_METHODS {
                for m2 in ALL_JOIN_METHODS {
                    let icp = Icp::new(order.clone(), vec![m1, m2]).unwrap();
                    let hinted = opt.optimize_with_hint(&q, &icp).unwrap();
                    assert!(
                        best.est_cost() <= hinted.est_cost() + 1e-6,
                        "hint {icp} estimated cheaper ({}) than DP ({})",
                        hinted.est_cost(),
                        best.est_cost()
                    );
                }
            }
        }
    }

    #[test]
    fn single_relation_query() {
        let (schema, opt, _) = setup();
        let mut qb = QueryBuilder::new(QueryId::new(1), 1);
        qb.relation(schema.table_id("a").unwrap(), "a");
        let q = qb.build(&schema).unwrap();
        let plan = opt.optimize(&q).unwrap();
        assert_eq!(plan.root.node_count(), 1);
        let icp = plan.extract_icp().unwrap();
        assert_eq!(icp.join_count(), 0);
    }

    #[test]
    fn greedy_handles_larger_queries() {
        // Star query with 18 relations exercises the greedy path.
        let mut schema = Schema::new();
        let mut stats = Vec::new();
        for i in 0..18 {
            schema
                .add_table(TableDef {
                    name: format!("t{i}"),
                    columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("fk")],
                })
                .unwrap();
            let rows = 100 + i * 50;
            let ids: Vec<i64> = (0..rows as i64).collect();
            let fks: Vec<i64> = (0..rows as i64).map(|v| v % 50).collect();
            let t = Table::new(
                format!("t{i}"),
                vec![
                    ("id".into(), Column::new(ids)),
                    ("fk".into(), Column::new(fks)),
                ],
            )
            .unwrap();
            stats.push(TableStats::analyze(&t, 8));
        }
        let schema = Arc::new(schema);
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(stats),
            CostModel::default(),
        );
        let mut qb = QueryBuilder::new(QueryId::new(0), 1);
        let hub = qb.relation(schema.table_id("t0").unwrap(), "t0");
        for i in 1..18 {
            let r = qb.relation(schema.table_id(&format!("t{i}")).unwrap(), format!("r{i}"));
            qb.join(hub, 0, r, 1);
        }
        let q = qb.build(&schema).unwrap();
        let plan = opt.optimize(&q).unwrap();
        assert!(plan.is_left_deep());
        assert_eq!(plan.extract_icp().unwrap().relation_count(), 18);
    }

    #[test]
    fn empty_query_rejected() {
        let (_, opt, _) = setup();
        let q = QueryBuilder::new(QueryId::new(9), 1).build_unchecked();
        assert!(opt.optimize(&q).is_err());
    }
}
