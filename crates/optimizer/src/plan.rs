//! Physical plans (the paper's *complete plan*, `CP`).

use foss_common::{fx_hash_one, ByteReader, ByteWriter, Codec, FossError, Result};
use foss_query::{JoinEdge, Query};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::icp::{Icp, JoinMethod};

/// How a base relation is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPath {
    /// Full scan with predicate filtering.
    SeqScan,
    /// Index scan driven by a scan predicate on `column`.
    IndexScan {
        /// The indexed column used for the lookup.
        column: usize,
    },
}

/// A node of a physical plan tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanNode {
    /// Leaf: read one relation.
    Scan {
        /// Index into `Query::relations`.
        relation: usize,
        /// Chosen access path.
        access: AccessPath,
        /// Optimizer's estimated output rows.
        est_rows: f64,
        /// Optimizer's estimated cumulative cost.
        est_cost: f64,
    },
    /// Inner node: join two subtrees.
    Join {
        /// Physical join method.
        method: JoinMethod,
        /// Outer (left) input.
        left: Box<PlanNode>,
        /// Inner (right) input; a `Scan` in left-deep plans.
        right: Box<PlanNode>,
        /// Equi-join conditions, oriented left→right.
        edges: Vec<JoinEdge>,
        /// When true, the nested-loop inner side is probed through an index
        /// on `edges[0].right_column` instead of rescanned.
        index_nl: bool,
        /// Optimizer's estimated output rows.
        est_rows: f64,
        /// Optimizer's estimated cumulative cost.
        est_cost: f64,
    },
}

impl PlanNode {
    /// Estimated output rows of this node.
    pub fn est_rows(&self) -> f64 {
        match self {
            PlanNode::Scan { est_rows, .. } | PlanNode::Join { est_rows, .. } => *est_rows,
        }
    }

    /// Estimated cumulative cost of this node.
    pub fn est_cost(&self) -> f64 {
        match self {
            PlanNode::Scan { est_cost, .. } | PlanNode::Join { est_cost, .. } => *est_cost,
        }
    }

    /// Height: longest downward path to a leaf (leaves have height 0); the
    /// node structural feature used by the paper's plan encoding.
    pub fn height(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 0,
            PlanNode::Join { left, right, .. } => 1 + left.height().max(right.height()),
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 1,
            PlanNode::Join { left, right, .. } => 1 + left.node_count() + right.node_count(),
        }
    }
}

/// A complete physical plan for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    /// Root node.
    pub root: PlanNode,
}

impl PhysicalPlan {
    /// Estimated total cost.
    pub fn est_cost(&self) -> f64 {
        self.root.est_cost()
    }

    /// Estimated result rows.
    pub fn est_rows(&self) -> f64 {
        self.root.est_rows()
    }

    /// Extract the incomplete plan (join order + methods) from a left-deep
    /// plan — the paper's `Extract(CP)` (Algorithm 1, line 3).
    pub fn extract_icp(&self) -> Result<Icp> {
        let mut order = Vec::new();
        let mut methods = Vec::new();
        collect_left_deep(&self.root, &mut order, &mut methods)?;
        Icp::new(order, methods)
    }

    /// True when the plan is left-deep (every right child is a scan).
    pub fn is_left_deep(&self) -> bool {
        fn check(node: &PlanNode) -> bool {
            match node {
                PlanNode::Scan { .. } => true,
                PlanNode::Join { left, right, .. } => {
                    matches!(**right, PlanNode::Scan { .. }) && check(left)
                }
            }
        }
        check(&self.root)
    }

    /// Stable fingerprint over structure + methods + access paths.
    pub fn fingerprint(&self) -> u64 {
        fn feed(node: &PlanNode, acc: &mut Vec<u64>) {
            match node {
                PlanNode::Scan {
                    relation, access, ..
                } => {
                    acc.push(0x5ca4);
                    acc.push(*relation as u64);
                    acc.push(match access {
                        AccessPath::SeqScan => u64::MAX,
                        AccessPath::IndexScan { column } => *column as u64,
                    });
                }
                PlanNode::Join {
                    method,
                    left,
                    right,
                    index_nl,
                    ..
                } => {
                    acc.push(0x101a);
                    acc.push(method.index() as u64);
                    acc.push(*index_nl as u64);
                    feed(left, acc);
                    feed(right, acc);
                }
            }
        }
        let mut acc = Vec::with_capacity(self.root.node_count() * 3);
        feed(&self.root, &mut acc);
        fx_hash_one(&acc)
    }

    /// Tiering key: [`PhysicalPlan::fingerprint`] strengthened with the
    /// query-side facts execution depends on. The structural fingerprint
    /// deliberately ignores join edges, base tables and predicates (two
    /// different templates can share one fingerprint), so the tier cache —
    /// which reuses one compiled pipeline across query *instances* — keys on
    /// this instead: structure plus per-relation table ids, predicate
    /// columns and every join edge. Predicate **constants** are excluded on
    /// purpose; instances of one template differ only in constants and must
    /// share a pipeline.
    pub fn shape_key(&self, query: &Query) -> u64 {
        let mut acc: Vec<u64> = Vec::with_capacity(16);
        acc.push(0x71e5);
        acc.push(self.fingerprint());
        for rel in &query.relations {
            acc.push(0x7ab1);
            acc.push(rel.table.index() as u64);
            for pred in &rel.predicates {
                acc.push(pred.column() as u64);
            }
        }
        fn feed_edges(node: &PlanNode, acc: &mut Vec<u64>) {
            if let PlanNode::Join {
                left, right, edges, ..
            } = node
            {
                for e in edges {
                    acc.push(0xed6e);
                    acc.push(e.left as u64);
                    acc.push(e.left_column as u64);
                    acc.push(e.right as u64);
                    acc.push(e.right_column as u64);
                }
                feed_edges(left, acc);
                feed_edges(right, acc);
            }
        }
        feed_edges(&self.root, &mut acc);
        fx_hash_one(&acc)
    }

    /// Pretty-print as an `EXPLAIN`-style tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        fn walk(node: &PlanNode, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match node {
                PlanNode::Scan {
                    relation,
                    access,
                    est_rows,
                    est_cost,
                } => {
                    let a = match access {
                        AccessPath::SeqScan => "SeqScan".to_string(),
                        AccessPath::IndexScan { column } => format!("IndexScan(c{column})"),
                    };
                    out.push_str(&format!(
                        "{pad}{a} rel={relation} (rows={est_rows:.0} cost={est_cost:.0})\n"
                    ));
                }
                PlanNode::Join {
                    method,
                    left,
                    right,
                    index_nl,
                    est_rows,
                    est_cost,
                    ..
                } => {
                    let idx = if *index_nl { " [indexed]" } else { "" };
                    out.push_str(&format!(
                        "{pad}{method}{idx} (rows={est_rows:.0} cost={est_cost:.0})\n"
                    ));
                    walk(left, depth + 1, out);
                    walk(right, depth + 1, out);
                }
            }
        }
        walk(&self.root, 0, &mut out);
        out
    }
}

fn collect_left_deep(
    node: &PlanNode,
    order: &mut Vec<usize>,
    methods: &mut Vec<JoinMethod>,
) -> Result<()> {
    match node {
        PlanNode::Scan { relation, .. } => {
            order.push(*relation);
            Ok(())
        }
        PlanNode::Join {
            method,
            left,
            right,
            ..
        } => {
            collect_left_deep(left, order, methods)?;
            match **right {
                PlanNode::Scan { relation, .. } => order.push(relation),
                PlanNode::Join { .. } => {
                    return Err(FossError::InvalidPlan(
                        "extract_icp requires a left-deep plan".into(),
                    ))
                }
            }
            methods.push(*method);
            Ok(())
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

impl Codec for AccessPath {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            AccessPath::SeqScan => w.put_u8(0),
            AccessPath::IndexScan { column } => {
                w.put_u8(1);
                w.put_usize(*column);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(AccessPath::SeqScan),
            1 => Ok(AccessPath::IndexScan {
                column: r.get_usize()?,
            }),
            other => Err(FossError::Serde(format!("invalid access-path tag {other}"))),
        }
    }
}

impl Codec for PlanNode {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            PlanNode::Scan {
                relation,
                access,
                est_rows,
                est_cost,
            } => {
                w.put_u8(0);
                w.put_usize(*relation);
                access.encode(w);
                w.put_f64(*est_rows);
                w.put_f64(*est_cost);
            }
            PlanNode::Join {
                method,
                left,
                right,
                edges,
                index_nl,
                est_rows,
                est_cost,
            } => {
                w.put_u8(1);
                method.encode(w);
                left.encode(w);
                right.encode(w);
                edges.encode(w);
                w.put_bool(*index_nl);
                w.put_f64(*est_rows);
                w.put_f64(*est_cost);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(PlanNode::Scan {
                relation: r.get_usize()?,
                access: AccessPath::decode(r)?,
                est_rows: r.get_f64()?,
                est_cost: r.get_f64()?,
            }),
            1 => Ok(PlanNode::Join {
                method: JoinMethod::decode(r)?,
                left: Box::new(PlanNode::decode(r)?),
                right: Box::new(PlanNode::decode(r)?),
                edges: Vec::decode(r)?,
                index_nl: r.get_bool()?,
                est_rows: r.get_f64()?,
                est_cost: r.get_f64()?,
            }),
            other => Err(FossError::Serde(format!("invalid plan-node tag {other}"))),
        }
    }
}

impl Codec for PhysicalPlan {
    fn encode(&self, w: &mut ByteWriter) {
        self.root.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Self {
            root: PlanNode::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: usize) -> PlanNode {
        PlanNode::Scan {
            relation: rel,
            access: AccessPath::SeqScan,
            est_rows: 10.0,
            est_cost: 10.0,
        }
    }

    fn join(method: JoinMethod, left: PlanNode, right: PlanNode) -> PlanNode {
        PlanNode::Join {
            method,
            left: Box::new(left),
            right: Box::new(right),
            edges: vec![],
            index_nl: false,
            est_rows: 100.0,
            est_cost: 120.0,
        }
    }

    fn left_deep3() -> PhysicalPlan {
        PhysicalPlan {
            root: join(
                JoinMethod::Merge,
                join(JoinMethod::Hash, scan(2), scan(0)),
                scan(1),
            ),
        }
    }

    #[test]
    fn extract_icp_bottom_up() {
        let icp = left_deep3().extract_icp().unwrap();
        assert_eq!(icp.order, vec![2, 0, 1]);
        assert_eq!(icp.methods, vec![JoinMethod::Hash, JoinMethod::Merge]);
    }

    #[test]
    fn bushy_plan_rejected_by_extract() {
        let bushy = PhysicalPlan {
            root: join(
                JoinMethod::Hash,
                scan(0),
                join(JoinMethod::Hash, scan(1), scan(2)),
            ),
        };
        assert!(!bushy.is_left_deep());
        assert!(bushy.extract_icp().is_err());
        assert!(left_deep3().is_left_deep());
    }

    #[test]
    fn height_and_node_count() {
        let p = left_deep3();
        assert_eq!(p.root.height(), 2);
        assert_eq!(p.root.node_count(), 5);
        assert_eq!(scan(0).height(), 0);
    }

    #[test]
    fn fingerprint_sensitivity() {
        let a = left_deep3();
        let mut b = left_deep3();
        if let PlanNode::Join { method, .. } = &mut b.root {
            *method = JoinMethod::NestLoop;
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), left_deep3().fingerprint());
    }

    #[test]
    fn shape_key_distinguishes_what_fingerprint_cannot() {
        use foss_common::{QueryId, TableId};
        use foss_query::{Predicate, QueryBuilder};
        let plan = PhysicalPlan { root: scan(0) };
        let mk = |table: usize, pred_col: usize, value: i64| {
            let mut b = QueryBuilder::new(QueryId::new(0), 0);
            let r = b.relation(TableId::new(table), "a");
            b.predicate(
                r,
                Predicate::Eq {
                    column: pred_col,
                    value,
                },
            );
            b.build_unchecked()
        };
        let q = mk(0, 1, 7);
        assert_eq!(plan.shape_key(&q), plan.shape_key(&mk(0, 1, 7)));
        // Same structural fingerprint, different tier shapes.
        assert_ne!(plan.shape_key(&q), plan.shape_key(&mk(1, 1, 7)), "table");
        assert_ne!(plan.shape_key(&q), plan.shape_key(&mk(0, 2, 7)), "column");
        // Constants are instance data: one template = one shape.
        assert_eq!(
            plan.shape_key(&q),
            plan.shape_key(&mk(0, 1, 99)),
            "constants must not split the shape"
        );
    }

    #[test]
    fn explain_contains_tree() {
        let text = left_deep3().explain();
        assert!(text.contains("MergeJoin"));
        assert!(text.contains("HashJoin"));
        assert!(text.contains("SeqScan rel=2"));
    }
}
