//! A Selinger-style traditional cost-based optimizer — the "expert engine".
//!
//! This crate substitutes for PostgreSQL 12.1 in the paper's setup:
//!
//! * dynamic-programming enumeration of **left-deep** join trees (the paper
//!   restricts FOSS to left-deep plans, matching PostgreSQL/MySQL practice),
//! * a histogram-based cardinality estimator that makes the textbook
//!   uniformity/independence assumptions,
//! * a PostgreSQL-flavoured cost model over three join methods (hash, merge,
//!   nested-loop, optionally index-accelerated) and two access paths,
//! * **hint steering** equivalent to `pg_hint_plan`: given an incomplete plan
//!   (join order + join methods), the optimizer completes it with its own
//!   expert knowledge (access paths, estimated cardinalities).
//!
//! The estimator's systematic errors on skewed/correlated data are the reason
//! the expert's plans are repairable — precisely the premise of FOSS.

pub mod cardinality;
pub mod cost;
pub mod dp;
pub mod hint;
pub mod icp;
pub mod plan;
pub mod steering;

pub use cardinality::CardinalityEstimator;
pub use cost::{CostModel, CostParams};
pub use dp::TraditionalOptimizer;
pub use icp::{Icp, JoinMethod, ALL_JOIN_METHODS};
pub use plan::{AccessPath, PhysicalPlan, PlanNode};
