//! Per-column statistics: equi-depth histograms, distinct counts, bounds.
//!
//! Mirrors what `ANALYZE` gives PostgreSQL. Selectivity answers intentionally
//! carry the same modelling blind spots as the real system: uniformity within
//! histogram buckets and independence across columns/joins.

use foss_storage::Table;
use serde::{Deserialize, Serialize};

/// Default number of histogram buckets (PostgreSQL's default statistics
/// target is 100; we keep a smaller value since tables are smaller too).
pub const DEFAULT_BUCKETS: usize = 32;

/// An equi-depth histogram over an integer column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bucket upper bounds (inclusive); bucket `i` covers
    /// `(bounds[i-1], bounds[i]]`, with bucket 0 starting at `min`.
    bounds: Vec<i64>,
    /// Rows per bucket (equi-depth, so roughly equal).
    counts: Vec<u64>,
    /// Column minimum.
    min: i64,
    /// Column maximum.
    max: i64,
    /// Total rows.
    total: u64,
}

impl Histogram {
    /// Build an equi-depth histogram with at most `buckets` buckets.
    pub fn build(values: &[i64], buckets: usize) -> Self {
        if values.is_empty() {
            return Self {
                bounds: vec![],
                counts: vec![],
                min: 0,
                max: 0,
                total: 0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let total = sorted.len() as u64;
        let min = sorted[0];
        let max = *sorted.last().unwrap();
        let buckets = buckets.max(1).min(sorted.len());
        let per = sorted.len().div_ceil(buckets);
        let mut bounds = Vec::with_capacity(buckets);
        let mut counts = Vec::with_capacity(buckets);
        let mut i = 0usize;
        while i < sorted.len() {
            let mut end = (i + per).min(sorted.len());
            // Extend the bucket so equal values never straddle a boundary;
            // keeps equality estimates consistent.
            while end < sorted.len() && sorted[end] == sorted[end - 1] {
                end += 1;
            }
            bounds.push(sorted[end - 1]);
            counts.push((end - i) as u64);
            i = end;
        }
        Self {
            bounds,
            counts,
            min,
            max,
            total,
        }
    }

    /// Estimated fraction of rows with value `= v` (uniformity within bucket).
    pub fn selectivity_eq(&self, v: i64, distinct: u64) -> f64 {
        if self.total == 0 || v < self.min || v > self.max {
            return 0.0;
        }
        let b = self.bucket_of(v);
        let bucket_frac = self.counts[b] as f64 / self.total as f64;
        // Distinct values are assumed evenly spread over buckets.
        let per_bucket_distinct = (distinct as f64 / self.counts.len() as f64).max(1.0);
        (bucket_frac / per_bucket_distinct).min(1.0)
    }

    /// Estimated fraction of rows with value in `[lo, hi]`.
    pub fn selectivity_range(&self, lo: i64, hi: i64) -> f64 {
        if self.total == 0 || hi < lo || hi < self.min || lo > self.max {
            return 0.0;
        }
        let lo = lo.max(self.min);
        let hi = hi.min(self.max);
        let mut rows = 0.0f64;
        let mut prev_bound = self.min - 1;
        for (i, &ub) in self.bounds.iter().enumerate() {
            let b_lo = prev_bound + 1;
            let b_hi = ub;
            prev_bound = ub;
            if b_hi < lo || b_lo > hi {
                continue;
            }
            let width = (b_hi - b_lo + 1) as f64;
            let overlap = (hi.min(b_hi) - lo.max(b_lo) + 1) as f64;
            rows += self.counts[i] as f64 * (overlap / width).clamp(0.0, 1.0);
        }
        (rows / self.total as f64).clamp(0.0, 1.0)
    }

    fn bucket_of(&self, v: i64) -> usize {
        self.bounds
            .partition_point(|&b| b < v)
            .min(self.bounds.len().saturating_sub(1))
    }

    /// Column minimum seen at build time.
    pub fn min(&self) -> i64 {
        self.min
    }

    /// Column maximum seen at build time.
    pub fn max(&self) -> i64 {
        self.max
    }

    /// Total rows seen at build time.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Equi-depth histogram.
    pub histogram: Histogram,
    /// Number of distinct values.
    pub distinct: u64,
}

impl ColumnStats {
    /// Analyse one column.
    pub fn analyze(values: &[i64], buckets: usize) -> Self {
        let histogram = Histogram::build(values, buckets);
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Self {
            histogram,
            distinct: sorted.len() as u64,
        }
    }

    /// Selectivity of `col = v`.
    pub fn selectivity_eq(&self, v: i64) -> f64 {
        self.histogram.selectivity_eq(v, self.distinct)
    }

    /// Selectivity of `lo ≤ col ≤ hi`.
    pub fn selectivity_range(&self, lo: i64, hi: i64) -> f64 {
        self.histogram.selectivity_range(lo, hi)
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Row count at analyse time.
    pub row_count: u64,
    /// Per-column stats, in column order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Run `ANALYZE` over a stored table.
    pub fn analyze(table: &Table, buckets: usize) -> Self {
        let columns = (0..table.column_count())
            .map(|c| ColumnStats::analyze(table.column(c).values(), buckets))
            .collect();
        Self {
            row_count: table.row_count() as u64,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_selectivity_uniform() {
        let values: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let s = ColumnStats::analyze(&values, 16);
        assert_eq!(s.distinct, 100);
        let sel = s.selectivity_eq(5);
        assert!((sel - 0.01).abs() < 0.01, "sel={sel}");
        assert_eq!(s.selectivity_eq(5000), 0.0);
    }

    #[test]
    fn range_selectivity_covers_half() {
        let values: Vec<i64> = (0..1000).collect();
        let s = ColumnStats::analyze(&values, 32);
        let sel = s.selectivity_range(0, 499);
        assert!((sel - 0.5).abs() < 0.05, "sel={sel}");
        assert_eq!(s.selectivity_range(2000, 3000), 0.0);
        assert!((s.selectivity_range(i64::MIN, i64::MAX) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_underestimates_hot_value() {
        // 90% of rows share value 0: equi-depth + per-bucket-uniformity
        // underestimates the hot key — by design, the flaw FOSS exploits.
        let mut values = vec![0i64; 900];
        values.extend(1..=100);
        let s = ColumnStats::analyze(&values, 8);
        let est = s.selectivity_eq(0);
        assert!(est < 0.9, "estimator should miss the skew, est={est}");
        assert!(est > 0.0);
    }

    #[test]
    fn empty_column() {
        let s = ColumnStats::analyze(&[], 8);
        assert_eq!(s.distinct, 0);
        assert_eq!(s.selectivity_eq(1), 0.0);
        assert_eq!(s.selectivity_range(0, 10), 0.0);
    }

    #[test]
    fn degenerate_range() {
        let values: Vec<i64> = (0..100).collect();
        let s = ColumnStats::analyze(&values, 8);
        assert_eq!(s.selectivity_range(50, 40), 0.0);
    }

    #[test]
    fn table_stats_shape() {
        use foss_storage::{Column, Table};
        let t = Table::new(
            "t",
            vec![
                ("a".into(), Column::new(vec![1, 2, 3, 4])),
                ("b".into(), Column::new(vec![1, 1, 1, 1])),
            ],
        )
        .unwrap();
        let st = TableStats::analyze(&t, 4);
        assert_eq!(st.row_count, 4);
        assert_eq!(st.columns.len(), 2);
        assert_eq!(st.columns[1].distinct, 1);
    }

    #[test]
    fn histogram_bucket_boundaries_hold_duplicates() {
        // All-equal column must collapse to one bucket.
        let h = Histogram::build(&[7; 50], 8);
        assert_eq!(h.total(), 50);
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 7);
        assert!((h.selectivity_range(7, 7) - 1.0).abs() < 1e-9);
    }
}
