//! Logical schema: tables, columns, foreign keys.

use foss_common::{FossError, FxHashMap, Result, TableId};
use serde::{Deserialize, Serialize};

/// One column of a table definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Whether an index exists on this column (access path for the optimizer).
    pub indexed: bool,
}

impl ColumnDef {
    /// An unindexed column.
    pub fn plain(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            indexed: false,
        }
    }

    /// An indexed column (primary keys, common join keys).
    pub fn indexed(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            indexed: true,
        }
    }
}

/// One table of the schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name, unique within the schema.
    pub name: String,
    /// Column definitions in declaration order.
    pub columns: Vec<ColumnDef>,
}

impl TableDef {
    /// Position of column `name` within this table.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// A foreign-key edge: `from_table.from_column → to_table.to_column`.
///
/// The workload generators only emit equi-joins along these edges, which
/// matches the select-project-join queries used in the paper's benchmarks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: TableId,
    /// Referencing column (index within `from_table`).
    pub from_column: usize,
    /// Referenced table.
    pub to_table: TableId,
    /// Referenced column (index within `to_table`).
    pub to_column: usize,
}

/// A complete schema: table definitions plus the join graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<TableDef>,
    foreign_keys: Vec<ForeignKey>,
    #[serde(skip)]
    by_name: FxHashMap<String, TableId>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table; returns its id. Errors on duplicate names.
    pub fn add_table(&mut self, def: TableDef) -> Result<TableId> {
        if self.by_name.contains_key(&def.name) {
            return Err(FossError::InvalidQuery(format!(
                "duplicate table {}",
                def.name
            )));
        }
        let id = TableId::new(self.tables.len());
        self.by_name.insert(def.name.clone(), id);
        self.tables.push(def);
        Ok(id)
    }

    /// Register a foreign-key edge; validates both endpoints.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        let check = |t: TableId, c: usize| -> Result<()> {
            let def = self
                .tables
                .get(t.index())
                .ok_or_else(|| FossError::InvalidQuery(format!("no table {t}")))?;
            if c >= def.columns.len() {
                return Err(FossError::InvalidQuery(format!(
                    "table {} has no column index {c}",
                    def.name
                )));
            }
            Ok(())
        };
        check(fk.from_table, fk.from_column)?;
        check(fk.to_table, fk.to_column)?;
        self.foreign_keys.push(fk);
        Ok(())
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// All table definitions.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    /// Table definition by id.
    pub fn table(&self, id: TableId) -> &TableDef {
        &self.tables[id.index()]
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| FossError::UnknownName(name.to_string()))
    }

    /// All registered foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Foreign keys touching table `id` (either direction).
    pub fn foreign_keys_of(&self, id: TableId) -> impl Iterator<Item = &ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(move |fk| fk.from_table == id || fk.to_table == id)
    }

    /// Rebuild the name lookup after deserialisation (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), TableId::new(i)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_schema() -> Schema {
        let mut s = Schema::new();
        let a = s
            .add_table(TableDef {
                name: "a".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("x")],
            })
            .unwrap();
        let b = s
            .add_table(TableDef {
                name: "b".into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("a_id")],
            })
            .unwrap();
        s.add_foreign_key(ForeignKey {
            from_table: b,
            from_column: 1,
            to_table: a,
            to_column: 0,
        })
        .unwrap();
        s
    }

    #[test]
    fn lookup_by_name() {
        let s = two_table_schema();
        assert_eq!(s.table_id("b").unwrap(), TableId::new(1));
        assert!(s.table_id("zzz").is_err());
        assert_eq!(s.table(TableId::new(0)).name, "a");
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut s = two_table_schema();
        let r = s.add_table(TableDef {
            name: "a".into(),
            columns: vec![],
        });
        assert!(r.is_err());
    }

    #[test]
    fn fk_validation() {
        let mut s = two_table_schema();
        let bad = ForeignKey {
            from_table: TableId::new(1),
            from_column: 99,
            to_table: TableId::new(0),
            to_column: 0,
        };
        assert!(s.add_foreign_key(bad).is_err());
        assert_eq!(s.foreign_keys().len(), 1);
        assert_eq!(s.foreign_keys_of(TableId::new(0)).count(), 1);
    }

    #[test]
    fn serde_roundtrip_restores_lookup() {
        let s = two_table_schema();
        let json = serde_json_like(&s);
        // `by_name` is skipped by serde; rebuild restores it.
        let mut s2: Schema = json;
        s2.rebuild_index();
        assert_eq!(s2.table_id("a").unwrap(), TableId::new(0));
    }

    /// Simulate a serde round trip without pulling in serde_json: clone the
    /// serialisable fields and drop the skipped index.
    fn serde_json_like(s: &Schema) -> Schema {
        Schema {
            tables: s.tables.clone(),
            foreign_keys: s.foreign_keys.clone(),
            by_name: FxHashMap::default(),
        }
    }
}
