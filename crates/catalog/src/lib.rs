//! Schema catalog and table/column statistics.
//!
//! Plays the role of PostgreSQL's system catalog + `pg_statistic`: the
//! traditional optimizer in `foss-optimizer` reads equi-depth histograms,
//! distinct counts and row counts from here. Statistics are *deliberately*
//! per-column summaries, so the optimizer inherits the uniformity and
//! independence assumptions whose failures FOSS learns to repair.

pub mod schema;
pub mod stats;

pub use schema::{ColumnDef, ForeignKey, Schema, TableDef};
pub use stats::{ColumnStats, Histogram, TableStats};
