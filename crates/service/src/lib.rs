//! **PlanDoctor as a service** — the online front end over FOSS.
//!
//! The paper evaluates FOSS in batch (train → evaluate splits); this crate
//! is the serving half the ROADMAP's north star asks for: a long-lived
//! process that admits queries, plans them over an immutable
//! [`PlannerSnapshot`], executes through the shared [`CachingExecutor`],
//! and degrades gracefully to the expert DP plan whenever the learned path
//! cannot be trusted.
//!
//! # Architecture
//!
//! ```text
//!   trainer (Foss, &mut) ──publish──▶ SnapshotCell ◀──load── submit() × N threads
//!                                        │                      │
//!                                        ▼                      ▼
//!                               PlannerSnapshot (&self)   AdmissionGate (permits)
//!                                                               │
//!                                                               ▼
//!                                             CachingExecutor (shared, budgeted)
//!                                                               │
//!                                                               ▼
//!                                             MetricsRegistry (atomic counters)
//! ```
//!
//! # Admission and fallback semantics
//!
//! * **Admission** — at most [`ServiceConfig::max_in_flight`] queries run
//!   concurrently; excess `submit` calls block until a permit frees. The
//!   high-water mark is exported through [`MetricsSnapshot`].
//! * **Planning budget** — if planning wall time exceeds the per-query
//!   budget ([`QueryRequest::planning_budget_us`] overriding
//!   [`ServiceConfig::planning_budget_us`]), the doctored plan is discarded
//!   and the expert plan is served ([`FallbackReason::PlanningTimeout`]).
//! * **Confidence floor** — a doctored plan is only run when the AAM's
//!   advantage score over the expert plan reaches
//!   [`ServiceConfig::min_confidence`] ([`FallbackReason::LowConfidence`]
//!   otherwise).
//! * **Execution budget** — the doctored plan runs under
//!   `expert latency × exec_timeout_factor`; blowing it serves the expert
//!   result instead ([`FallbackReason::ExecTimeout`]). The expert plan
//!   itself is never budgeted — it is the safety net.
//!
//! Every decision is recorded as an [`Outcome`] in the atomic
//! [`MetricsRegistry`]; [`PlanDoctor::metrics`] snapshots p50/p95/p99
//! latency, fallback rate, cache hit rate and the in-flight high-water mark.

pub mod gate;
pub mod metrics;

use std::sync::Arc;
use std::time::Instant;

use foss_common::{FossError, FxHashMap, QueryId, Result};
use foss_core::{PlannerSnapshot, SnapshotCell};
use foss_executor::CachingExecutor;
use foss_optimizer::PhysicalPlan;
use foss_query::Query;
use parking_lot::Mutex;

pub use gate::{AdmissionGate, Permit};
pub use metrics::{MetricsRegistry, MetricsSnapshot, Outcome};

/// Serving knobs (see the module docs for the semantics of each).
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Admission ceiling: queries allowed in flight simultaneously.
    pub max_in_flight: usize,
    /// Default per-query planning budget (µs); `None` disables the check.
    pub planning_budget_us: Option<f64>,
    /// Minimum AAM advantage score (over the expert plan) a doctored plan
    /// needs before the service will run it. `1` accepts anything the
    /// selector already rated better than the noise floor; `K-1` (= 2 with
    /// the paper's split points) serves only "much better" verdicts.
    pub min_confidence: usize,
    /// Execution budget for doctored plans, as a multiple of the expert
    /// plan's latency.
    pub exec_timeout_factor: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 16,
            planning_budget_us: None,
            min_confidence: 1,
            exec_timeout_factor: 10.0,
        }
    }
}

/// One query submitted to the service.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The query to plan and execute.
    pub query: Query,
    /// Per-request planning budget override (µs).
    pub planning_budget_us: Option<f64>,
}

impl QueryRequest {
    /// A request with the service-default budgets.
    pub fn new(query: Query) -> Self {
        Self {
            query,
            planning_budget_us: None,
        }
    }

    /// Override the planning budget for this request only.
    #[must_use]
    pub fn with_planning_budget_us(mut self, budget_us: f64) -> Self {
        self.planning_budget_us = Some(budget_us);
        self
    }
}

/// Why a query was answered with the expert plan instead of the doctored
/// one ([`FallbackReason::None`] when the doctored decision stood).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The doctored decision was served.
    None,
    /// Planning exceeded its wall-clock budget.
    PlanningTimeout,
    /// The AAM's confidence in the doctored plan was below the floor.
    LowConfidence,
    /// The doctored plan exceeded its execution budget.
    ExecTimeout,
}

/// What the service decided (and observed) for one query.
#[derive(Debug, Clone)]
pub struct PlanDecision {
    /// The plan that was executed for the caller.
    pub plan: PhysicalPlan,
    /// Whether the expert plan was served in place of the doctored plan.
    pub fallback: bool,
    /// Why (when `fallback` is true).
    pub reason: FallbackReason,
    /// Wall-clock planning time (µs).
    pub planning_us: f64,
    /// Execution latency of the served plan (work units ≡ µs).
    pub latency: f64,
    /// Doctor step the *doctored candidate* came from (0 = the doctor
    /// itself kept the expert plan). Diagnostic only: when `fallback` is
    /// true the served `plan` is the expert plan regardless of this value.
    pub selected_step: usize,
    /// Candidate plans the tournament considered.
    pub candidates: usize,
}

/// The serving front end: snapshot handle + executor + admission + metrics.
///
/// `submit` takes `&self`; share one `PlanDoctor` across worker threads
/// (e.g. behind an `Arc`) and call [`PlanDoctor::publish`] from the
/// training loop to hot-swap the model underneath running traffic.
pub struct PlanDoctor {
    snapshots: SnapshotCell,
    executor: Arc<CachingExecutor>,
    /// Executor counters at construction time: the executor is typically
    /// shared with the trainer, so serving metrics report deltas from here
    /// rather than lifetime totals polluted by pre-service training
    /// traffic. (A trainer that keeps executing on the shared executor
    /// *while* the service runs still lands in the delta — see
    /// [`PlanDoctor::metrics`].)
    cache_baseline: foss_executor::CacheStats,
    /// Expert plans already computed for this service, so a hot query
    /// outside the snapshot's frozen originals map pays the DP cost once,
    /// not per submit. Cleared on [`PlanDoctor::publish`].
    expert_memo: Mutex<FxHashMap<QueryId, PhysicalPlan>>,
    cfg: ServiceConfig,
    gate: AdmissionGate,
    metrics: MetricsRegistry,
}

impl PlanDoctor {
    /// Serve `snapshot` through `executor` under `cfg`.
    pub fn new(
        snapshot: PlannerSnapshot,
        executor: Arc<CachingExecutor>,
        cfg: ServiceConfig,
    ) -> Self {
        Self {
            snapshots: SnapshotCell::new(snapshot),
            cache_baseline: executor.stats(),
            executor,
            expert_memo: Mutex::new(FxHashMap::default()),
            gate: AdmissionGate::new(cfg.max_in_flight),
            metrics: MetricsRegistry::default(),
            cfg,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Hot-swap the served model; in-flight queries finish on the snapshot
    /// they loaded, subsequent submits plan on the new one. The expert-plan
    /// memo is dropped so the new snapshot's original-plan view governs.
    pub fn publish(&self, snapshot: PlannerSnapshot) {
        self.snapshots.publish(snapshot);
        self.expert_memo.lock().clear();
    }

    /// How many snapshots have been published since construction.
    pub fn snapshot_generation(&self) -> u64 {
        self.snapshots.generation()
    }

    /// The expert plan for `query`: from the snapshot's frozen originals,
    /// else the service memo, else one DP run that populates the memo.
    fn expert_plan(&self, snapshot: &PlannerSnapshot, query: &Query) -> Result<PhysicalPlan> {
        if let Some(plan) = self.expert_memo.lock().get(&query.id) {
            return Ok(plan.clone());
        }
        let plan = snapshot.expert_plan(query)?;
        self.expert_memo.lock().insert(query.id, plan.clone());
        Ok(plan)
    }

    /// Plan, budget-check, execute and record one query (see the module
    /// docs for the full decision procedure). Blocks while the admission
    /// gate is full; safe to call from any number of threads. Failed
    /// submissions count into the registry's `errors` gauge.
    pub fn submit(&self, req: QueryRequest) -> Result<PlanDecision> {
        let _permit = self.gate.acquire();
        match self.submit_admitted(&req) {
            Ok(decision) => Ok(decision),
            Err(e) => {
                self.metrics.record_error();
                Err(e)
            }
        }
    }

    fn submit_admitted(&self, req: &QueryRequest) -> Result<PlanDecision> {
        let snapshot = self.snapshots.load();

        // Planning: the expert plan (needed for the fallback anyway, so it
        // is planned exactly once and memoised) plus the doctored repair
        // over it.
        let t0 = Instant::now();
        let expert_plan = self.expert_plan(&snapshot, &req.query)?;
        let inference = snapshot.optimize_detailed_from(&req.query, &expert_plan)?;
        let planning_us = t0.elapsed().as_secs_f64() * 1e6;

        // The safety net: the expert plan, executed unbudgeted.
        let expert = self.executor.execute(&req.query, &expert_plan, None)?;

        let budget_us = req.planning_budget_us.or(self.cfg.planning_budget_us);
        let mut reason = FallbackReason::None;
        if budget_us.is_some_and(|b| planning_us > b) {
            reason = FallbackReason::PlanningTimeout;
        } else if inference.selected_step != 0 && inference.aam_confidence < self.cfg.min_confidence
        {
            reason = FallbackReason::LowConfidence;
        }

        let doctored_is_expert = inference.plan.fingerprint() == expert_plan.fingerprint();
        let (plan, latency) = if reason != FallbackReason::None {
            (expert_plan, expert.latency)
        } else if doctored_is_expert {
            (inference.plan, expert.latency)
        } else {
            let exec_budget = expert.latency * self.cfg.exec_timeout_factor;
            match self
                .executor
                .execute(&req.query, &inference.plan, Some(exec_budget))
            {
                Ok(out) => (inference.plan, out.latency),
                Err(FossError::Timeout { .. }) => {
                    reason = FallbackReason::ExecTimeout;
                    (expert_plan, expert.latency)
                }
                Err(e) => return Err(e),
            }
        };

        self.metrics.record(&Outcome {
            planning_us,
            latency,
            reason,
        });
        Ok(PlanDecision {
            plan,
            fallback: reason != FallbackReason::None,
            reason,
            planning_us,
            latency,
            selected_step: inference.selected_step,
            candidates: inference.candidates,
        })
    }

    /// Current metrics. Percentiles are computed at call time over the
    /// most recent samples; cache counters are deltas since this
    /// `PlanDoctor` was constructed, so a trainer-shared executor's
    /// training traffic does not skew the serving hit rate.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            self.executor.stats().since(&self.cache_baseline),
            self.gate.high_water(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_core::envs::tests_support::TestWorld;
    use foss_core::{Foss, FossConfig};
    use foss_query::QueryBuilder;

    struct Served {
        world: TestWorld,
        foss: Foss,
        doctor: PlanDoctor,
    }

    fn served(seed: u64, cfg: ServiceConfig) -> Served {
        let world = TestWorld::new(seed);
        let executor = Arc::new(CachingExecutor::new(
            world.db.clone(),
            *world.opt.cost_model(),
        ));
        let mut foss = Foss::new(
            Arc::new(world.opt.clone()),
            executor.clone(),
            3,
            world.db.stats().iter().map(|s| s.row_count).collect(),
            FossConfig {
                episodes_per_update: 6,
                seed,
                ..FossConfig::tiny()
            },
        );
        foss.train(std::slice::from_ref(&world.query), 1).unwrap();
        let doctor = PlanDoctor::new(foss.snapshot(), executor, cfg);
        Served {
            world,
            foss,
            doctor,
        }
    }

    /// Distinct queries over the TestWorld schema (full chain + both
    /// two-table joins), so aggregate tests have a real multiset.
    fn query_mix(world: &TestWorld) -> Vec<Query> {
        let schema = world.db.schema().clone();
        let mut queries = vec![world.query.clone()];
        for (i, pair) in [("a", "b"), ("a", "c")].iter().enumerate() {
            let mut qb = QueryBuilder::new(foss_common::QueryId::new(100 + i), 1);
            let l = qb.relation(schema.table_id(pair.0).unwrap(), pair.0);
            let r = qb.relation(schema.table_id(pair.1).unwrap(), pair.1);
            qb.join(l, 0, r, 1);
            queries.push(qb.build(&schema).unwrap());
        }
        queries
    }

    #[test]
    fn submit_plans_executes_and_records() {
        let s = served(31, ServiceConfig::default());
        let decision = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        assert!(decision.latency > 0.0);
        assert!(decision.candidates >= 4);
        if !decision.fallback {
            assert_eq!(decision.reason, FallbackReason::None);
        }
        let m = s.doctor.metrics();
        assert_eq!(m.submitted, 1);
        assert_eq!(m.errors, 0);
        assert!(m.latency_p50 > 0.0);
        assert_eq!(m.latency_p50, m.latency_p99, "single sample");
        // The expert plan was memoised for subsequent submits.
        assert_eq!(s.doctor.expert_memo.lock().len(), 1);
        // The served plan preserves query semantics.
        let served_rows = s
            .doctor
            .executor
            .execute(&s.world.query, &decision.plan, None)
            .unwrap()
            .rows;
        let expert_rows = s
            .doctor
            .executor
            .execute(&s.world.query, &s.world.original, None)
            .unwrap()
            .rows;
        assert_eq!(served_rows, expert_rows);
    }

    #[test]
    fn forced_planning_timeout_falls_back_to_expert_plan() {
        let s = served(32, ServiceConfig::default());
        let req = QueryRequest::new(s.world.query.clone()).with_planning_budget_us(0.0);
        let decision = s.doctor.submit(req).unwrap();
        assert!(decision.fallback, "zero budget must force fallback");
        assert_eq!(decision.reason, FallbackReason::PlanningTimeout);
        let expert = s.world.opt.optimize(&s.world.query).unwrap();
        assert_eq!(
            decision.plan.fingerprint(),
            expert.fingerprint(),
            "fallback must serve the expert DP plan"
        );
        let m = s.doctor.metrics();
        assert_eq!((m.fallbacks, m.planning_timeouts), (1, 1));
        assert!((m.fallback_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_floor_gates_doctored_plans() {
        // An unreachable confidence floor: every doctored plan (step != 0)
        // must fall back; kept expert plans (step == 0) must not count as
        // fallbacks.
        let s = served(
            33,
            ServiceConfig {
                min_confidence: usize::MAX,
                ..ServiceConfig::default()
            },
        );
        for q in query_mix(&s.world) {
            let d = s.doctor.submit(QueryRequest::new(q.clone())).unwrap();
            if d.selected_step == 0 {
                assert!(!d.fallback);
            } else {
                assert!(d.fallback);
                assert_eq!(d.reason, FallbackReason::LowConfidence);
                let expert = s.world.opt.optimize(&q).unwrap();
                assert_eq!(d.plan.fingerprint(), expert.fingerprint());
            }
        }
    }

    #[test]
    fn concurrent_submits_match_serial_outcome_multiset() {
        let key = |d: &PlanDecision| {
            (
                d.plan.fingerprint(),
                d.latency.to_bits(),
                d.fallback,
                d.selected_step,
            )
        };
        // Serial reference run on its own service instance.
        let serial = served(34, ServiceConfig::default());
        let queries = query_mix(&serial.world);
        let mut expected: Vec<_> = Vec::new();
        for rep in 0..4 {
            for q in &queries {
                let _ = rep;
                expected.push(key(&serial
                    .doctor
                    .submit(QueryRequest::new(q.clone()))
                    .unwrap()));
            }
        }
        expected.sort_unstable();

        // Concurrent run: 4 threads, each submitting every query once.
        let concurrent = served(34, ServiceConfig::default());
        let queries = query_mix(&concurrent.world);
        let mut observed: Vec<_> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let doctor = &concurrent.doctor;
                    let queries = queries.clone();
                    scope.spawn(move || {
                        queries
                            .iter()
                            .map(|q| key(&doctor.submit(QueryRequest::new(q.clone())).unwrap()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        observed.sort_unstable();
        assert_eq!(
            observed, expected,
            "concurrent aggregate must equal the serial outcome multiset"
        );
        let m = concurrent.doctor.metrics();
        assert_eq!(m.submitted, 12);
        assert!(m.in_flight_high_water >= 1 && m.in_flight_high_water <= 16);
        assert!(m.cache_hit_rate > 0.0, "repeat queries must hit the cache");
    }

    #[test]
    fn cache_metrics_exclude_training_traffic() {
        // `served` trains over the same executor the doctor serves from;
        // before any submit, the serving-side cache stats must read zero.
        let s = served(37, ServiceConfig::default());
        assert!(s.doctor.executor.stats().executions > 0, "training ran");
        let m = s.doctor.metrics();
        assert_eq!(m.cache.executions, 0);
        assert_eq!(m.cache.hits, 0);
        assert_eq!(m.cache_hit_rate, 0.0);
        // Submitting the training query twice: serving sees its own hits.
        s.doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        s.doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        let m = s.doctor.metrics();
        assert!(m.cache.hits > 0);
        assert!(m.cache_hit_rate > 0.0);
    }

    #[test]
    fn admission_gate_bounds_in_flight_queries() {
        let s = served(
            35,
            ServiceConfig {
                max_in_flight: 2,
                ..ServiceConfig::default()
            },
        );
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let doctor = &s.doctor;
                let query = s.world.query.clone();
                scope.spawn(move || doctor.submit(QueryRequest::new(query)).unwrap());
            }
        });
        let m = s.doctor.metrics();
        assert_eq!(m.submitted, 6);
        assert!(
            m.in_flight_high_water <= 2,
            "admission ceiling violated: {}",
            m.in_flight_high_water
        );
    }

    #[test]
    fn publish_hot_swaps_the_served_snapshot() {
        let mut s = served(36, ServiceConfig::default());
        let before = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        assert_eq!(s.doctor.snapshot_generation(), 0);
        s.foss
            .train_iteration(std::slice::from_ref(&s.world.query), 2)
            .unwrap();
        s.doctor.publish(s.foss.snapshot());
        assert_eq!(s.doctor.snapshot_generation(), 1);
        let after = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        // Both generations serve valid plans for the same query.
        assert!(before.latency > 0.0 && after.latency > 0.0);
    }
}
