//! **PlanDoctor as a service** — the online front end over FOSS.
//!
//! The paper evaluates FOSS in batch (train → evaluate splits); this crate
//! is the serving half the ROADMAP's north star asks for: a long-lived
//! process that admits queries, plans them over an immutable
//! [`PlannerSnapshot`], executes through the shared [`CachingExecutor`],
//! and degrades gracefully to the expert DP plan whenever the learned path
//! cannot be trusted.
//!
//! # Architecture
//!
//! ```text
//!   trainer (Foss, &mut) ──publish──▶ SnapshotCell ◀──load── submit() × N threads
//!                                        │                      │
//!                                        ▼                      ▼
//!                               PlannerSnapshot (&self)   AdmissionGate (permits)
//!                                                               │
//!                                                               ▼
//!                                             CachingExecutor (shared, budgeted)
//!                                                               │
//!                                                               ▼
//!                                             MetricsRegistry (atomic counters)
//! ```
//!
//! # Admission and fallback semantics
//!
//! * **Admission** — at most [`ServiceConfig::max_in_flight`] queries run
//!   concurrently; excess `submit` calls block until a permit frees. The
//!   high-water mark is exported through [`MetricsSnapshot`].
//! * **Planning budget** — if planning wall time exceeds the per-query
//!   budget ([`QueryRequest::planning_budget_us`] overriding
//!   [`ServiceConfig::planning_budget_us`]), the doctored plan is discarded
//!   and the expert plan is served ([`FallbackReason::PlanningTimeout`]).
//! * **Confidence floor** — a doctored plan is only run when the AAM's
//!   advantage score over the expert plan reaches
//!   [`ServiceConfig::min_confidence`] ([`FallbackReason::LowConfidence`]
//!   otherwise).
//! * **Execution budget** — the doctored plan runs under
//!   `expert latency × exec_timeout_factor`; blowing it serves the expert
//!   result instead ([`FallbackReason::ExecTimeout`]). The expert plan
//!   itself is never budgeted — it is the safety net.
//!
//! # Robustness: correlated failures and overload
//!
//! The per-query fallbacks above assume failures are independent. Three
//! additional mechanisms (built for correlated failure — a bad snapshot
//! publish, a stalled executor, sustained overload) sit around them:
//!
//! * **Circuit breaker** ([`breaker`]) — learned-path outcomes feed a
//!   sliding window per snapshot generation; past a failure-rate threshold
//!   the breaker opens and `submit` serves the expert DP plan directly
//!   ([`FallbackReason::BreakerOpen`]) without paying learned-planning
//!   cost, then recovers through half-open probes.
//! * **Retry with backoff** — transient executor failures
//!   ([`FossError::Transient`]) on the doctored path are retried up to
//!   [`ServiceConfig::max_retries`] times with exponential backoff, within
//!   the request's remaining deadline; exhausted retries fall back to the
//!   expert plan ([`FallbackReason::ExecError`]).
//! * **Deadline-aware admission and load shedding** — requests carry a
//!   [`Priority`] and an optional deadline ([`QueryRequest::deadline_us`]).
//!   The admission wait is bounded: low-priority requests wait at most
//!   [`ServiceConfig::low_shed_wait_us`] (0 by default — low sheds first),
//!   high-priority requests wait up to their deadline (unbounded without
//!   one). A shed request returns [`FossError::Overloaded`] without doing
//!   any work. A deadline that expires after admission degrades to the
//!   expert plan ([`FallbackReason::DeadlineExceeded`]).
//!
//! For testing all of this deterministically, a seeded
//! [`foss_common::FaultPlan`] can be attached with
//! [`PlanDoctor::with_fault_plan`] (and to the executor with
//! [`CachingExecutor::with_fault_plan`]): planning stalls, executor
//! timeouts/errors, cache faults and snapshot-publish failures are then
//! injected at controlled, bit-reproducible rates. Without a plan every
//! hook is a branch on `None` — the production path is unchanged, and a
//! run with [`foss_common::FaultPlan::none`] attached is bit-identical to
//! one with no plan at all (the fault-transparency proptest enforces it).
//!
//! Every decision is recorded as an [`Outcome`] in the atomic
//! [`MetricsRegistry`]; [`PlanDoctor::metrics`] snapshots p50/p95/p99
//! latency, fallback rate, cache hit rate, the in-flight high-water mark,
//! shed/retry counts and the breaker state.

pub mod breaker;
pub mod gate;
pub mod http;
pub mod json;
pub mod metrics;
pub mod prelude;
pub mod tier;
pub mod wire;

use std::sync::Arc;
use std::time::{Duration, Instant};

use foss_common::sync::Mutex;
use foss_common::{FaultPlan, FaultSite, FossError, FxHashMap, QueryId, Result};
use foss_core::{PlannerSnapshot, SnapshotCell};
use foss_executor::CachingExecutor;
use foss_optimizer::PhysicalPlan;
use foss_query::Query;

pub use breaker::{BreakerConfig, BreakerDecision, BreakerState, BreakerView, CircuitBreaker};
pub use gate::{AdmissionGate, Permit};
pub use http::{PlanClient, PlanOutcome, PlanServer, Rejection};
pub use json::Json;
pub use metrics::{MetricsRegistry, MetricsSnapshot, Outcome};
pub use tier::{HotShapeTracker, TierCell, TierConfig, TierEngine, TierMode, TierStats};
pub use wire::{PlanReply, PlanRequest, WireError};

/// Serving knobs (see the module docs for the semantics of each).
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Admission ceiling: queries allowed in flight simultaneously.
    pub max_in_flight: usize,
    /// Default per-query planning budget (µs); `None` disables the check.
    pub planning_budget_us: Option<f64>,
    /// Minimum AAM advantage score (over the expert plan) a doctored plan
    /// needs before the service will run it. `1` accepts anything the
    /// selector already rated better than the noise floor; `K-1` (= 2 with
    /// the paper's split points) serves only "much better" verdicts.
    pub min_confidence: usize,
    /// Execution budget for doctored plans, as a multiple of the expert
    /// plan's latency.
    pub exec_timeout_factor: f64,
    /// Circuit-breaker thresholds over the learned path (see [`breaker`]).
    pub breaker: BreakerConfig,
    /// Retries for transient doctored-execution failures before falling
    /// back to the expert plan.
    pub max_retries: usize,
    /// Base backoff between retries (µs); attempt `n` backs off
    /// `retry_backoff_us × 2ⁿ`.
    pub retry_backoff_us: f64,
    /// Longest a low-priority request may wait for admission (µs); `0`
    /// sheds low-priority traffic immediately when the gate is full, which
    /// is what guarantees low sheds before high under overload.
    pub low_shed_wait_us: f64,
    /// Tiered-execution knobs (see [`tier`]). The `plan-doctor` CLI
    /// resolves [`TierConfig::mode`] as `--tier` flag > `FOSS_TIER` env >
    /// this default ([`TierMode::from_env`] does the env half); library
    /// callers set it directly.
    pub tier: TierConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 16,
            planning_budget_us: None,
            min_confidence: 1,
            exec_timeout_factor: 10.0,
            breaker: BreakerConfig::default(),
            max_retries: 2,
            retry_backoff_us: 100.0,
            low_shed_wait_us: 0.0,
            tier: TierConfig::default(),
        }
    }
}

/// Admission priority class. Under saturation, [`Priority::Low`] requests
/// are shed first: they never wait longer than
/// [`ServiceConfig::low_shed_wait_us`], while [`Priority::High`] requests
/// wait up to their deadline (or indefinitely without one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive traffic; shed only when its own deadline expires.
    #[default]
    High,
    /// Best-effort traffic; first to go under overload.
    Low,
}

/// One query submitted to the service.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The query to plan and execute.
    pub query: Query,
    /// Per-request planning budget override (µs).
    pub planning_budget_us: Option<f64>,
    /// Admission priority class (default [`Priority::High`]).
    pub priority: Priority,
    /// End-to-end deadline (µs of wall clock from `submit` entry,
    /// spanning queueing, planning and execution). Bounds the admission
    /// wait; once expired, the request degrades to the expert plan
    /// ([`FallbackReason::DeadlineExceeded`]) instead of attempting the
    /// doctored path. `None` (the default) disables every deadline check.
    pub deadline_us: Option<f64>,
}

impl QueryRequest {
    /// A request with the service-default budgets, high priority and no
    /// deadline.
    pub fn new(query: Query) -> Self {
        Self {
            query,
            planning_budget_us: None,
            priority: Priority::High,
            deadline_us: None,
        }
    }

    /// Override the planning budget for this request only.
    #[must_use]
    pub fn with_planning_budget_us(mut self, budget_us: f64) -> Self {
        self.planning_budget_us = Some(budget_us);
        self
    }

    /// Set the admission priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the end-to-end deadline (µs from `submit` entry).
    #[must_use]
    pub fn with_deadline_us(mut self, deadline_us: f64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Wall-clock µs this request has left, if it carries a deadline.
    fn remaining_us(&self, start: Instant) -> Option<f64> {
        self.deadline_us
            .map(|d| d - start.elapsed().as_secs_f64() * 1e6)
    }
}

/// Why a query was answered with the expert plan instead of the doctored
/// one ([`FallbackReason::None`] when the doctored decision stood).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The doctored decision was served.
    None,
    /// Planning exceeded its wall-clock budget.
    PlanningTimeout,
    /// The AAM's confidence in the doctored plan was below the floor.
    LowConfidence,
    /// The doctored plan exceeded its execution budget.
    ExecTimeout,
    /// The doctored plan kept failing transiently after every retry.
    ExecError,
    /// The circuit breaker was open: the expert plan was served directly,
    /// without attempting learned planning at all.
    BreakerOpen,
    /// The request's deadline expired before the doctored plan could be
    /// attempted.
    DeadlineExceeded,
}

/// What the service decided (and observed) for one query.
#[derive(Debug, Clone)]
pub struct PlanDecision {
    /// The plan that was executed for the caller.
    pub plan: PhysicalPlan,
    /// Whether the expert plan was served in place of the doctored plan.
    pub fallback: bool,
    /// Why (when `fallback` is true).
    pub reason: FallbackReason,
    /// Wall-clock planning time (µs).
    pub planning_us: f64,
    /// Execution latency of the served plan (work units ≡ µs).
    pub latency: f64,
    /// Doctor step the *doctored candidate* came from (0 = the doctor
    /// itself kept the expert plan). Diagnostic only: when `fallback` is
    /// true the served `plan` is the expert plan regardless of this value.
    pub selected_step: usize,
    /// Candidate plans the tournament considered.
    pub candidates: usize,
    /// Transient-failure retries this query performed before resolving.
    pub retries: usize,
}

/// The serving front end: snapshot handle + executor + admission + metrics.
///
/// `submit` takes `&self`; share one `PlanDoctor` across worker threads
/// (e.g. behind an `Arc`) and call [`PlanDoctor::publish`] from the
/// training loop to hot-swap the model underneath running traffic.
pub struct PlanDoctor {
    snapshots: SnapshotCell,
    executor: Arc<CachingExecutor>,
    /// Executor counters at construction time: the executor is typically
    /// shared with the trainer, so serving metrics report deltas from here
    /// rather than lifetime totals polluted by pre-service training
    /// traffic. (A trainer that keeps executing on the shared executor
    /// *while* the service runs still lands in the delta — see
    /// [`PlanDoctor::metrics`].)
    cache_baseline: foss_executor::CacheStats,
    /// Expert plans already computed for this service, so a hot query
    /// outside the snapshot's frozen originals map pays the DP cost once,
    /// not per submit. Cleared on [`PlanDoctor::publish`].
    expert_memo: Mutex<FxHashMap<QueryId, PhysicalPlan>>,
    cfg: ServiceConfig,
    gate: AdmissionGate,
    metrics: MetricsRegistry,
    breaker: CircuitBreaker,
    /// Tier-2 engine: hot-shape tracking + compiled-pipeline cell (see
    /// [`tier`]). Every execution the doctor performs routes through
    /// [`PlanDoctor::execute_plan`] so both tiers share one dispatch
    /// point.
    tier: TierEngine,
    /// Deterministic fault hooks ([`FaultSite::PlanStall`] /
    /// [`FaultSite::ExecTimeout`] / [`FaultSite::ExecError`] /
    /// [`FaultSite::PublishFail`]); `None` in production.
    faults: Option<Arc<FaultPlan>>,
}

impl PlanDoctor {
    /// Serve `snapshot` through `executor` under `cfg`.
    pub fn new(
        snapshot: PlannerSnapshot,
        executor: Arc<CachingExecutor>,
        cfg: ServiceConfig,
    ) -> Self {
        Self {
            snapshots: SnapshotCell::new(snapshot),
            cache_baseline: executor.stats(),
            executor,
            expert_memo: Mutex::new(FxHashMap::default()),
            gate: AdmissionGate::new(cfg.max_in_flight),
            metrics: MetricsRegistry::default(),
            breaker: CircuitBreaker::new(cfg.breaker),
            tier: TierEngine::new(cfg.tier),
            faults: None,
            cfg,
        }
    }

    /// Attach a deterministic fault plan (chainable; chaos tests only).
    /// The service then consults it for planning stalls, doctored-execution
    /// timeouts/transient errors and snapshot-publish failures. Share the
    /// same `Arc` with [`CachingExecutor::with_fault_plan`] to coordinate
    /// cache-layer faults under one seed.
    #[must_use]
    pub fn with_fault_plan(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The circuit breaker over the learned path (read-only view for
    /// operators and tests; `submit` drives its state machine).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Counters from the attached fault plan (all-zero when none is).
    pub fn fault_stats(&self) -> foss_common::FaultStats {
        self.faults
            .as_deref()
            .map(FaultPlan::stats)
            .unwrap_or_default()
    }

    /// Hot-swap the served model; in-flight queries finish on the snapshot
    /// they loaded, subsequent submits plan on the new one. The expert-plan
    /// memo is dropped so the new snapshot's original-plan view governs.
    ///
    /// A failed publish ([`FaultSite::PublishFail`] under chaos, or any
    /// future real failure mode) leaves the previous generation serving —
    /// degraded-but-correct is the contract, and the breaker keeps scoring
    /// the generation that is actually live.
    pub fn publish(&self, snapshot: PlannerSnapshot) -> Result<()> {
        if let Some(faults) = &self.faults {
            if faults.roll(FaultSite::PublishFail).is_some() {
                return Err(FossError::Transient(
                    "injected snapshot-publish failure".to_string(),
                ));
            }
        }
        self.snapshots.publish(snapshot);
        self.expert_memo.lock().clear();
        Ok(())
    }

    /// How many snapshots have been published since construction.
    pub fn snapshot_generation(&self) -> u64 {
        self.snapshots.generation()
    }

    /// The snapshot currently being served — the same view an in-flight
    /// `submit` plans with. The wire layer uses it to decode `POST
    /// /publish` payloads against the serving workload's expert optimizer.
    pub fn snapshot(&self) -> Arc<PlannerSnapshot> {
        self.snapshots.load()
    }

    /// The tier engine's counters and generation (read-only view for
    /// operators and tests; the internal execute path drives it).
    pub fn tier(&self) -> &TierEngine {
        &self.tier
    }

    /// Execute `plan` on whichever tier the engine selects: a compiled
    /// fused pipeline when the shape is hot and supported, the chunked
    /// interpreter otherwise. Results, recorded latencies and timeout
    /// errors are bit-identical across tiers (the fused engine replays the
    /// interpreter's exact work-unit charge sequence), so this choice is
    /// invisible to everything downstream — including the executor's
    /// result cache, which both tiers share.
    fn execute_plan(
        &self,
        query: &Query,
        plan: &PhysicalPlan,
        budget: Option<f64>,
    ) -> Result<foss_executor::ExecOutcome> {
        match self.tier.pipeline_for(query, plan) {
            Some(entry) => match &*entry {
                tier::TierEntry::Compiled(pipeline) => {
                    self.executor
                        .execute_tiered(query, plan, budget, Some(pipeline))
                }
                tier::TierEntry::Unsupported => self.executor.execute(query, plan, budget),
            },
            None => self.executor.execute(query, plan, budget),
        }
    }

    /// The expert plan for `query`: from the snapshot's frozen originals,
    /// else the service memo, else one DP run that populates the memo.
    fn expert_plan(&self, snapshot: &PlannerSnapshot, query: &Query) -> Result<PhysicalPlan> {
        if let Some(plan) = self.expert_memo.lock().get(&query.id) {
            return Ok(plan.clone());
        }
        let plan = snapshot.expert_plan(query)?;
        self.expert_memo.lock().insert(query.id, plan.clone());
        Ok(plan)
    }

    /// Plan, budget-check, execute and record one query (see the module
    /// docs for the full decision procedure). Waits while the admission
    /// gate is full — unboundedly for default requests, bounded by the
    /// priority class and deadline otherwise (a request that cannot be
    /// admitted in time is shed with [`FossError::Overloaded`]). Safe to
    /// call from any number of threads. Failed submissions count into the
    /// registry's `errors` gauge; sheds into the per-class shed counters.
    pub fn submit(&self, req: QueryRequest) -> Result<PlanDecision> {
        let start = Instant::now();
        let _permit = self.acquire_permit(&req, start)?;
        let generation = self.snapshots.generation();
        let decision = self.breaker.admit(generation);
        if decision == BreakerDecision::Bypass {
            // Bypass failures are errors too, but say nothing about the
            // learned path — the breaker is not fed.
            return self.submit_bypassed(&req).inspect_err(|_| {
                self.metrics.record_error();
            });
        }
        let probe = decision == BreakerDecision::Probe;
        match self.submit_admitted(&req, start) {
            Ok(decision) => {
                // Only learned-path verdicts train the breaker: fallbacks
                // the model asked for (LowConfidence) or that load caused
                // (DeadlineExceeded) say nothing about snapshot health.
                let learned = match decision.reason {
                    FallbackReason::None => Some(true),
                    FallbackReason::PlanningTimeout
                    | FallbackReason::ExecTimeout
                    | FallbackReason::ExecError => Some(false),
                    FallbackReason::LowConfidence
                    | FallbackReason::DeadlineExceeded
                    | FallbackReason::BreakerOpen => None,
                };
                if let Some(success) = learned {
                    self.breaker.on_outcome(generation, success, probe);
                }
                Ok(decision)
            }
            Err(e) => {
                self.metrics.record_error();
                self.breaker.on_outcome(generation, false, probe);
                Err(e)
            }
        }
    }

    /// Take an admission permit under the request's priority class and
    /// deadline, or shed.
    fn acquire_permit(&self, req: &QueryRequest, start: Instant) -> Result<Permit<'_>> {
        let low = req.priority == Priority::Low;
        // Low priority waits at most `low_shed_wait_us` (capped further by
        // its deadline); high priority waits out its deadline, or forever
        // without one — the pre-robustness behaviour.
        let wait_us = if low {
            Some(match req.deadline_us {
                Some(d) => d.min(self.cfg.low_shed_wait_us),
                None => self.cfg.low_shed_wait_us,
            })
        } else {
            req.deadline_us
        };
        let permit = match wait_us {
            None => Some(self.gate.acquire()),
            Some(us) if us <= 0.0 => self.gate.try_acquire(),
            Some(us) => self.gate.acquire_timeout(Duration::from_micros(us as u64)),
        };
        permit.ok_or_else(|| {
            self.metrics.record_shed(low);
            FossError::Overloaded {
                low_priority: low,
                waited_us: start.elapsed().as_micros() as u64,
            }
        })
    }

    /// The open-breaker degraded path: no learned planning, no doctored
    /// execution — just the expert DP plan, unbudgeted, recorded as
    /// [`FallbackReason::BreakerOpen`].
    fn submit_bypassed(&self, req: &QueryRequest) -> Result<PlanDecision> {
        let snapshot = self.snapshots.load();
        let t0 = Instant::now();
        let expert_plan = self.expert_plan(&snapshot, &req.query)?;
        let planning_us = t0.elapsed().as_secs_f64() * 1e6;
        let expert = self.execute_plan(&req.query, &expert_plan, None)?;
        let reason = FallbackReason::BreakerOpen;
        self.metrics.record(&Outcome {
            planning_us,
            latency: expert.latency,
            reason,
        });
        Ok(PlanDecision {
            plan: expert_plan,
            fallback: true,
            reason,
            planning_us,
            latency: expert.latency,
            selected_step: 0,
            candidates: 0,
            retries: 0,
        })
    }

    /// Execute the doctored candidate under its work budget, with fault
    /// injection and transient-failure retries. Returns the served latency
    /// on success; on give-up, the fallback reason to degrade with.
    fn execute_doctored(
        &self,
        req: &QueryRequest,
        plan: &PhysicalPlan,
        exec_budget: f64,
        start: Instant,
        retries: &mut usize,
    ) -> Result<std::result::Result<f64, FallbackReason>> {
        loop {
            let injected = self.faults.as_deref().and_then(|f| {
                if f.roll(FaultSite::ExecTimeout).is_some() {
                    Some(FossError::Timeout {
                        spent: exec_budget as u64,
                        budget: exec_budget as u64,
                    })
                } else if f.roll(FaultSite::ExecError).is_some() {
                    Some(FossError::Transient(
                        "injected doctored-execution fault".to_string(),
                    ))
                } else {
                    None
                }
            });
            let attempt = match injected {
                Some(e) => Err(e),
                None => self.execute_plan(&req.query, plan, Some(exec_budget)),
            };
            match attempt {
                Ok(out) => return Ok(Ok(out.latency)),
                Err(FossError::Timeout { .. }) => return Ok(Err(FallbackReason::ExecTimeout)),
                Err(FossError::Transient(_)) => {
                    if *retries >= self.cfg.max_retries {
                        return Ok(Err(FallbackReason::ExecError));
                    }
                    let backoff_us = self.cfg.retry_backoff_us * (1u64 << *retries) as f64;
                    // A retry only makes sense if the backoff fits in the
                    // request's remaining deadline.
                    if req.remaining_us(start).is_some_and(|rem| rem < backoff_us) {
                        return Ok(Err(FallbackReason::ExecError));
                    }
                    *retries += 1;
                    self.metrics.record_retry();
                    if backoff_us > 0.0 {
                        std::thread::sleep(Duration::from_micros(backoff_us as u64));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn submit_admitted(&self, req: &QueryRequest, start: Instant) -> Result<PlanDecision> {
        let snapshot = self.snapshots.load();

        // Planning: the expert plan (needed for the fallback anyway, so it
        // is planned exactly once and memoised) plus the doctored repair
        // over it.
        let t0 = Instant::now();
        if let Some(faults) = &self.faults {
            if let Some(rule) = faults.roll(FaultSite::PlanStall) {
                std::thread::sleep(Duration::from_micros(rule.param as u64));
            }
        }
        let expert_plan = self.expert_plan(&snapshot, &req.query)?;
        let inference = snapshot.optimize_detailed_from(&req.query, &expert_plan)?;
        let planning_us = t0.elapsed().as_secs_f64() * 1e6;

        // The safety net: the expert plan, executed unbudgeted.
        let expert = self.execute_plan(&req.query, &expert_plan, None)?;

        let budget_us = req.planning_budget_us.or(self.cfg.planning_budget_us);
        let mut reason = FallbackReason::None;
        if budget_us.is_some_and(|b| planning_us > b) {
            reason = FallbackReason::PlanningTimeout;
        } else if inference.selected_step != 0 && inference.aam_confidence < self.cfg.min_confidence
        {
            reason = FallbackReason::LowConfidence;
        } else if req.remaining_us(start).is_some_and(|rem| rem <= 0.0) {
            // Queueing + planning ate the whole deadline: don't spend more
            // on a doctored run — the expert result is already in hand.
            reason = FallbackReason::DeadlineExceeded;
        }

        let mut retries = 0;
        let doctored_is_expert = inference.plan.fingerprint() == expert_plan.fingerprint();
        let (plan, latency) = if reason != FallbackReason::None {
            (expert_plan, expert.latency)
        } else if doctored_is_expert {
            (inference.plan, expert.latency)
        } else {
            let exec_budget = expert.latency * self.cfg.exec_timeout_factor;
            match self.execute_doctored(req, &inference.plan, exec_budget, start, &mut retries)? {
                Ok(latency) => (inference.plan, latency),
                Err(fallback) => {
                    reason = fallback;
                    (expert_plan, expert.latency)
                }
            }
        };

        self.metrics.record(&Outcome {
            planning_us,
            latency,
            reason,
        });
        Ok(PlanDecision {
            plan,
            fallback: reason != FallbackReason::None,
            reason,
            planning_us,
            latency,
            selected_step: inference.selected_step,
            candidates: inference.candidates,
            retries,
        })
    }

    /// Current metrics. Percentiles are computed at call time over the
    /// most recent samples; cache counters are deltas since this
    /// `PlanDoctor` was constructed, so a trainer-shared executor's
    /// training traffic does not skew the serving hit rate.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            self.executor.stats().since(&self.cache_baseline),
            self.gate.high_water(),
            self.breaker.view(),
            self.fault_stats().injected_total(),
            self.tier.stats(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_core::envs::tests_support::TestWorld;
    use foss_core::{Foss, FossConfig};
    use foss_query::QueryBuilder;

    struct Served {
        world: TestWorld,
        foss: Foss,
        doctor: PlanDoctor,
    }

    fn served(seed: u64, cfg: ServiceConfig) -> Served {
        let world = TestWorld::new(seed);
        let executor = Arc::new(CachingExecutor::new(
            world.db.clone(),
            *world.opt.cost_model(),
        ));
        let mut foss = Foss::new(
            Arc::new(world.opt.clone()),
            executor.clone(),
            3,
            world.db.stats().iter().map(|s| s.row_count).collect(),
            FossConfig {
                episodes_per_update: 6,
                seed,
                ..FossConfig::tiny()
            },
        );
        foss.train(std::slice::from_ref(&world.query), 1).unwrap();
        let doctor = PlanDoctor::new(foss.snapshot(), executor, cfg);
        Served {
            world,
            foss,
            doctor,
        }
    }

    /// Distinct queries over the TestWorld schema (full chain + both
    /// two-table joins), so aggregate tests have a real multiset.
    fn query_mix(world: &TestWorld) -> Vec<Query> {
        let schema = world.db.schema().clone();
        let mut queries = vec![world.query.clone()];
        for (i, pair) in [("a", "b"), ("a", "c")].iter().enumerate() {
            let mut qb = QueryBuilder::new(foss_common::QueryId::new(100 + i), 1);
            let l = qb.relation(schema.table_id(pair.0).unwrap(), pair.0);
            let r = qb.relation(schema.table_id(pair.1).unwrap(), pair.1);
            qb.join(l, 0, r, 1);
            queries.push(qb.build(&schema).unwrap());
        }
        queries
    }

    #[test]
    fn submit_plans_executes_and_records() {
        let s = served(31, ServiceConfig::default());
        let decision = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        assert!(decision.latency > 0.0);
        assert!(decision.candidates >= 4);
        if !decision.fallback {
            assert_eq!(decision.reason, FallbackReason::None);
        }
        let m = s.doctor.metrics();
        assert_eq!(m.submitted, 1);
        assert_eq!(m.errors, 0);
        assert!(m.latency_p50 > 0.0);
        assert_eq!(m.latency_p50, m.latency_p99, "single sample");
        // The expert plan was memoised for subsequent submits.
        assert_eq!(s.doctor.expert_memo.lock().len(), 1);
        // The served plan preserves query semantics.
        let served_rows = s
            .doctor
            .executor
            .execute(&s.world.query, &decision.plan, None)
            .unwrap()
            .rows;
        let expert_rows = s
            .doctor
            .executor
            .execute(&s.world.query, &s.world.original, None)
            .unwrap()
            .rows;
        assert_eq!(served_rows, expert_rows);
    }

    #[test]
    fn forced_planning_timeout_falls_back_to_expert_plan() {
        let s = served(32, ServiceConfig::default());
        let req = QueryRequest::new(s.world.query.clone()).with_planning_budget_us(0.0);
        let decision = s.doctor.submit(req).unwrap();
        assert!(decision.fallback, "zero budget must force fallback");
        assert_eq!(decision.reason, FallbackReason::PlanningTimeout);
        let expert = s.world.opt.optimize(&s.world.query).unwrap();
        assert_eq!(
            decision.plan.fingerprint(),
            expert.fingerprint(),
            "fallback must serve the expert DP plan"
        );
        let m = s.doctor.metrics();
        assert_eq!((m.fallbacks, m.planning_timeouts), (1, 1));
        assert!((m.fallback_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_floor_gates_doctored_plans() {
        // An unreachable confidence floor: every doctored plan (step != 0)
        // must fall back; kept expert plans (step == 0) must not count as
        // fallbacks.
        let s = served(
            33,
            ServiceConfig {
                min_confidence: usize::MAX,
                ..ServiceConfig::default()
            },
        );
        for q in query_mix(&s.world) {
            let d = s.doctor.submit(QueryRequest::new(q.clone())).unwrap();
            if d.selected_step == 0 {
                assert!(!d.fallback);
            } else {
                assert!(d.fallback);
                assert_eq!(d.reason, FallbackReason::LowConfidence);
                let expert = s.world.opt.optimize(&q).unwrap();
                assert_eq!(d.plan.fingerprint(), expert.fingerprint());
            }
        }
    }

    #[test]
    fn concurrent_submits_match_serial_outcome_multiset() {
        let key = |d: &PlanDecision| {
            (
                d.plan.fingerprint(),
                d.latency.to_bits(),
                d.fallback,
                d.selected_step,
            )
        };
        // Serial reference run on its own service instance.
        let serial = served(34, ServiceConfig::default());
        let queries = query_mix(&serial.world);
        let mut expected: Vec<_> = Vec::new();
        for rep in 0..4 {
            for q in &queries {
                let _ = rep;
                expected.push(key(&serial
                    .doctor
                    .submit(QueryRequest::new(q.clone()))
                    .unwrap()));
            }
        }
        expected.sort_unstable();

        // Concurrent run: 4 threads, each submitting every query once.
        let concurrent = served(34, ServiceConfig::default());
        let queries = query_mix(&concurrent.world);
        let mut observed: Vec<_> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let doctor = &concurrent.doctor;
                    let queries = queries.clone();
                    scope.spawn(move || {
                        queries
                            .iter()
                            .map(|q| key(&doctor.submit(QueryRequest::new(q.clone())).unwrap()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        observed.sort_unstable();
        assert_eq!(
            observed, expected,
            "concurrent aggregate must equal the serial outcome multiset"
        );
        let m = concurrent.doctor.metrics();
        assert_eq!(m.submitted, 12);
        assert!(m.in_flight_high_water >= 1 && m.in_flight_high_water <= 16);
        assert!(m.cache_hit_rate > 0.0, "repeat queries must hit the cache");
    }

    #[test]
    fn cache_metrics_exclude_training_traffic() {
        // `served` trains over the same executor the doctor serves from;
        // before any submit, the serving-side cache stats must read zero.
        let s = served(37, ServiceConfig::default());
        assert!(s.doctor.executor.stats().executions > 0, "training ran");
        let m = s.doctor.metrics();
        assert_eq!(m.cache.executions, 0);
        assert_eq!(m.cache.hits, 0);
        assert_eq!(m.cache_hit_rate, 0.0);
        // Submitting the training query twice: serving sees its own hits.
        s.doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        s.doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        let m = s.doctor.metrics();
        assert!(m.cache.hits > 0);
        assert!(m.cache_hit_rate > 0.0);
    }

    #[test]
    fn admission_gate_bounds_in_flight_queries() {
        let s = served(
            35,
            ServiceConfig {
                max_in_flight: 2,
                ..ServiceConfig::default()
            },
        );
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let doctor = &s.doctor;
                let query = s.world.query.clone();
                scope.spawn(move || doctor.submit(QueryRequest::new(query)).unwrap());
            }
        });
        let m = s.doctor.metrics();
        assert_eq!(m.submitted, 6);
        assert!(
            m.in_flight_high_water <= 2,
            "admission ceiling violated: {}",
            m.in_flight_high_water
        );
    }

    #[test]
    fn publish_hot_swaps_the_served_snapshot() {
        let mut s = served(36, ServiceConfig::default());
        let before = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        assert_eq!(s.doctor.snapshot_generation(), 0);
        s.foss
            .train_iteration(std::slice::from_ref(&s.world.query), 2)
            .unwrap();
        s.doctor.publish(s.foss.snapshot()).unwrap();
        assert_eq!(s.doctor.snapshot_generation(), 1);
        let after = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        // Both generations serve valid plans for the same query.
        assert!(before.latency > 0.0 && after.latency > 0.0);
    }

    #[test]
    fn low_priority_sheds_before_high_under_saturation() {
        let s = served(
            41,
            ServiceConfig {
                max_in_flight: 1,
                ..ServiceConfig::default()
            },
        );
        // Saturate the gate from outside so both classes face a full
        // service.
        let held = s.doctor.gate.acquire();
        let low = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()).with_priority(Priority::Low));
        match low {
            Err(FossError::Overloaded { low_priority, .. }) => assert!(low_priority),
            other => panic!("low priority must shed immediately, got {other:?}"),
        }
        // High priority without a deadline would wait forever; with one, it
        // sheds only after waiting the deadline out.
        let high = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()).with_deadline_us(2000.0));
        match high {
            Err(FossError::Overloaded {
                low_priority,
                waited_us,
            }) => {
                assert!(!low_priority);
                assert!(waited_us >= 2000, "high must wait its deadline out");
            }
            other => panic!("saturated high with deadline must shed, got {other:?}"),
        }
        drop(held);
        // Once capacity frees, the same low-priority request is served.
        s.doctor
            .submit(QueryRequest::new(s.world.query.clone()).with_priority(Priority::Low))
            .unwrap();
        let m = s.doctor.metrics();
        assert_eq!((m.shed_low, m.shed_high, m.sheds), (1, 1, 2));
        assert_eq!(m.submitted, 1, "sheds are not completions");
        assert_eq!(m.errors, 0, "sheds are not errors");
    }

    #[test]
    fn expired_deadline_degrades_to_expert_plan() {
        let s = served(42, ServiceConfig::default());
        // A microsecond-scale deadline admits instantly (the gate is
        // empty) but is guaranteed spent by the time planning finishes.
        let d = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()).with_deadline_us(0.001))
            .unwrap();
        assert!(d.fallback);
        assert_eq!(d.reason, FallbackReason::DeadlineExceeded);
        let expert = s.world.opt.optimize(&s.world.query).unwrap();
        assert_eq!(d.plan.fingerprint(), expert.fingerprint());
        let m = s.doctor.metrics();
        assert_eq!(m.deadline_exceeded, 1);
        // Deadline overruns are load, not snapshot failures: the breaker
        // must not learn from them.
        assert_eq!(m.breaker_state, BreakerState::Closed);
        assert_eq!(m.breaker_transitions, 0);
    }

    #[test]
    fn transient_exec_fault_is_retried_then_succeeds() {
        let mut s = served(
            43,
            ServiceConfig {
                retry_backoff_us: 0.0,
                ..ServiceConfig::default()
            },
        );
        // One injected transient failure, then the site heals.
        let faults = Arc::new(
            FaultPlan::builder(7)
                .fault(FaultSite::ExecError, 1.0)
                .burst(FaultSite::ExecError, 1)
                .build(),
        );
        s.doctor.faults = Some(faults.clone());
        let plan = s.world.opt.optimize(&s.world.query).unwrap();
        let req = QueryRequest::new(s.world.query.clone());
        let mut retries = 0;
        let outcome = s
            .doctor
            .execute_doctored(&req, &plan, 1e12, Instant::now(), &mut retries)
            .unwrap();
        assert!(outcome.is_ok(), "retry after the burst must succeed");
        assert_eq!(retries, 1);
        assert_eq!(faults.stats().injected_total(), 1);
        assert_eq!(s.doctor.metrics().retries, 1);
    }

    #[test]
    fn exhausted_retries_fall_back_with_exec_error() {
        let mut s = served(
            44,
            ServiceConfig {
                max_retries: 2,
                retry_backoff_us: 0.0,
                ..ServiceConfig::default()
            },
        );
        s.doctor.faults = Some(Arc::new(
            FaultPlan::builder(7)
                .fault(FaultSite::ExecError, 1.0)
                .build(),
        ));
        let plan = s.world.opt.optimize(&s.world.query).unwrap();
        let req = QueryRequest::new(s.world.query.clone());
        let mut retries = 0;
        let outcome = s
            .doctor
            .execute_doctored(&req, &plan, 1e12, Instant::now(), &mut retries)
            .unwrap();
        assert_eq!(outcome, Err(FallbackReason::ExecError));
        assert_eq!(retries, 2, "gives up after max_retries");
    }

    #[test]
    fn plan_stall_fault_forces_planning_timeout() {
        let mut s = served(
            45,
            ServiceConfig {
                planning_budget_us: Some(2000.0),
                ..ServiceConfig::default()
            },
        );
        s.doctor.faults = Some(Arc::new(
            FaultPlan::builder(11)
                .fault_param(FaultSite::PlanStall, 1.0, 10_000.0)
                .build(),
        ));
        let d = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        assert_eq!(d.reason, FallbackReason::PlanningTimeout);
        assert!(
            d.planning_us >= 10_000.0,
            "the stall is inside the budget window"
        );
        let m = s.doctor.metrics();
        assert_eq!(m.planning_timeouts, 1);
        assert_eq!(m.faults_injected, 1);
    }

    #[test]
    fn publish_failure_keeps_previous_generation_serving() {
        let mut s = served(46, ServiceConfig::default());
        s.doctor.faults = Some(Arc::new(
            FaultPlan::builder(13)
                .fault(FaultSite::PublishFail, 1.0)
                .burst(FaultSite::PublishFail, 1)
                .build(),
        ));
        s.foss
            .train_iteration(std::slice::from_ref(&s.world.query), 2)
            .unwrap();
        let snap = s.foss.snapshot();
        assert!(matches!(
            s.doctor.publish(snap.clone()),
            Err(FossError::Transient(_))
        ));
        assert_eq!(
            s.doctor.snapshot_generation(),
            0,
            "failed publish is a no-op"
        );
        // The old generation still serves; a retried publish (site healed
        // after the burst) goes through.
        s.doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        s.doctor.publish(snap).unwrap();
        assert_eq!(s.doctor.snapshot_generation(), 1);
    }

    #[test]
    fn tier_force_is_bit_identical_to_interpreter_and_counts() {
        let cfg = |mode| ServiceConfig {
            tier: TierConfig {
                mode,
                hot_threshold: 1,
            },
            ..ServiceConfig::default()
        };
        let key = |d: &PlanDecision| (d.plan.fingerprint(), d.latency.to_bits(), d.fallback);
        let off = served(51, cfg(TierMode::Interpreter));
        let on = served(51, cfg(TierMode::Force));
        for q in query_mix(&off.world) {
            for _ in 0..3 {
                let a = off.doctor.submit(QueryRequest::new(q.clone())).unwrap();
                let b = on.doctor.submit(QueryRequest::new(q.clone())).unwrap();
                assert_eq!(key(&a), key(&b), "tier must be invisible in outcomes");
            }
        }
        let t_off = off.doctor.tier().stats();
        assert_eq!(t_off, TierStats::default(), "interpreter mode never tiers");
        let t_on = on.doctor.tier().stats();
        assert!(
            t_on.compiles + t_on.fallbacks > 0,
            "force mode must resolve every shape: {t_on:?}"
        );
        assert!(
            t_on.compiles == 0 || t_on.hits > 0,
            "compiled shapes must serve tier-2 hits: {t_on:?}"
        );
        // Counters flow into the snapshot, the summary line and the wire.
        let m = on.doctor.metrics();
        assert_eq!(
            (m.tier_compiles, m.tier_hits, m.tier_fallbacks),
            (t_on.compiles, t_on.hits, t_on.fallbacks)
        );
        assert!(m.summary_line().contains(&format!(
            "tier={}/{}/{}",
            m.tier_hits, m.tier_compiles, m.tier_fallbacks
        )));
    }

    #[test]
    fn auto_tier_compiles_only_past_the_hot_threshold() {
        let s = served(
            52,
            ServiceConfig {
                tier: TierConfig {
                    mode: TierMode::Auto,
                    hot_threshold: 4,
                },
                ..ServiceConfig::default()
            },
        );
        // Submits 1–3 stay cold on every shape the doctor executes.
        for _ in 0..3 {
            s.doctor
                .submit(QueryRequest::new(s.world.query.clone()))
                .unwrap();
        }
        let cold = s.doctor.tier().stats();
        assert_eq!((cold.compiles, cold.hits, cold.fallbacks), (0, 0, 0));
        // Enough further submits push the expert shape past the threshold
        // (each submit may execute one or two plans, all counted).
        for _ in 0..8 {
            s.doctor
                .submit(QueryRequest::new(s.world.query.clone()))
                .unwrap();
        }
        let hot = s.doctor.tier().stats();
        assert!(
            hot.compiles + hot.fallbacks > 0,
            "hot shapes must be resolved: {hot:?}"
        );
        // One generation bump per resolved shape (compiled or negative-
        // cached), never per execution.
        let generation = s.doctor.tier().generation();
        assert!(generation >= hot.compiles && generation > 0);
        assert!(generation <= hot.compiles + hot.fallbacks);
    }

    #[test]
    fn open_breaker_bypasses_learned_path_and_recovers_via_probe() {
        let s = served(
            47,
            ServiceConfig {
                // `min_confidence: 0` makes probe success deterministic
                // (no LowConfidence fallback can occur).
                min_confidence: 0,
                breaker: BreakerConfig {
                    window: 4,
                    min_samples: 2,
                    failure_threshold: 0.5,
                    cooldown: 2,
                    probes: 1,
                },
                ..ServiceConfig::default()
            },
        );
        // Correlated learned-path failures (fed directly — the unit tests
        // for organic failure live in `breaker`): the breaker opens.
        s.doctor.breaker().on_outcome(0, false, false);
        s.doctor.breaker().on_outcome(0, false, false);
        assert_eq!(s.doctor.breaker().state(), BreakerState::Open);
        // First submit while open: bypassed — expert served directly.
        let d = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        assert_eq!(d.reason, FallbackReason::BreakerOpen);
        assert!(d.fallback);
        assert_eq!((d.selected_step, d.candidates), (0, 0));
        let expert = s.world.opt.optimize(&s.world.query).unwrap();
        assert_eq!(d.plan.fingerprint(), expert.fingerprint());
        // Second submit exhausts the cooldown and runs as the recovery
        // probe; its success closes the breaker.
        let d = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        assert_eq!(d.reason, FallbackReason::None);
        assert_eq!(s.doctor.breaker().state(), BreakerState::Closed);
        // Steady state restored: subsequent traffic is normal.
        let d = s
            .doctor
            .submit(QueryRequest::new(s.world.query.clone()))
            .unwrap();
        assert_eq!(d.reason, FallbackReason::None);
        let m = s.doctor.metrics();
        assert_eq!(m.breaker_open_served, 1);
        assert_eq!(m.breaker_times_opened, 1);
        assert_eq!(m.breaker_state, BreakerState::Closed);
    }
}
