//! PlanDoctor over a socket: a hand-rolled HTTP/1.1 server and a blocking
//! client.
//!
//! No async runtime — the service's concurrency model is already
//! thread-per-query bounded by the [`AdmissionGate`](crate::AdmissionGate),
//! so the server is a `std::net` accept loop that hands each connection to
//! a short-lived thread. Backpressure composes naturally: a connection
//! thread blocks (or is shed) in `submit` exactly like an in-process
//! caller, and the gate's permit ceiling bounds the planning/execution
//! concurrency no matter how many connections arrive.
//!
//! # Routes
//!
//! | route            | body                                | reply |
//! |------------------|-------------------------------------|-------|
//! | `POST /plan`     | [`PlanRequest`] JSON                | [`PlanReply`] JSON |
//! | `GET /metrics`   | —                                   | [`MetricsSnapshot`](crate::MetricsSnapshot) JSON |
//! | `GET /healthz`   | —                                   | `{status, generation, queries}` |
//! | `POST /publish`  | raw snapshot bytes ([`PlannerSnapshot::to_bytes`]) | `{generation}` |
//!
//! `POST /plan` also accepts `x-foss-priority`, `x-foss-deadline-us` and
//! `x-foss-planning-budget-us` headers; JSON body fields win when both are
//! present. Errors use the wire contract in [`crate::wire`]. Every
//! response is `Connection: close` — one request per connection keeps the
//! protocol trivial, and the load generator measures full-connection cost,
//! which is the honest number for a thread-per-connection server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use foss_common::sync::atomic::{AtomicBool, Ordering};
use foss_common::{FossError, Result};
use foss_core::PlannerSnapshot;
use foss_query::Query;

use crate::json::Json;
use crate::wire::{metrics_to_json, parse_priority, PlanReply, PlanRequest, WireError};
use crate::{PlanDoctor, QueryRequest};

/// Header-section ceiling; larger requests are rejected as malformed.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Body ceiling (snapshot publishes are the big case).
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Per-connection socket timeout on both sides of the wire.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A running serving endpoint. Dropping (or calling
/// [`PlanServer::shutdown`]) stops the accept loop; in-flight requests
/// finish on their own threads.
pub struct PlanServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

/// What one connection needs: the doctor and the query pool it serves.
struct ServeState {
    doctor: Arc<PlanDoctor>,
    pool: Vec<Query>,
}

impl PlanServer {
    /// Bind `bind` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `doctor` over `pool` — the workload's query list, which
    /// `POST /plan` bodies index into.
    pub fn start(doctor: Arc<PlanDoctor>, pool: Vec<Query>, bind: &str) -> Result<PlanServer> {
        let listener = TcpListener::bind(bind)
            .map_err(|e| FossError::Transient(format!("cannot bind {bind}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| FossError::Transient(format!("no local addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(ServeState { doctor, pool });
        let accept = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let state = state.clone();
                    std::thread::spawn(move || handle_connection(&state, stream));
                }
            })
        };
        Ok(PlanServer {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A client pointed at this server.
    pub fn client(&self) -> PlanClient {
        PlanClient::new(self.addr)
    }

    /// Stop accepting connections and join the accept loop.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// One parsed HTTP request.
struct Request {
    method: String,
    path: String,
    /// Header names lowercased.
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Request {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn handle_connection(state: &ServeState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let (status, body) = match read_request(&mut stream) {
        Ok(req) => route(state, &req).unwrap_or_else(|e| {
            let w = WireError::from_error(&e);
            (w.status, w.body())
        }),
        Err(e) => {
            let w = WireError::from_error(&e);
            (w.status, w.body())
        }
    };
    let _ = write_response(&mut stream, status, &body);
}

/// Dispatch a request. `Ok` carries a ready response (success *or* wire
/// error); `Err` means "map this [`FossError`] onto the wire".
fn route(state: &ServeState, req: &Request) -> Result<(u16, Json)> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok((
            200,
            Json::obj(vec![
                ("status", Json::str("ok")),
                (
                    "generation",
                    Json::u64_str(state.doctor.snapshot_generation()),
                ),
                ("queries", Json::num(state.pool.len() as f64)),
            ]),
        )),
        ("GET", "/metrics") => Ok((200, metrics_to_json(&state.doctor.metrics()))),
        ("POST", "/plan") => {
            let wire_req = parse_plan_request(req)?;
            let query = state.pool.get(wire_req.query).ok_or_else(|| {
                FossError::UnknownName(format!(
                    "pool query {} (pool holds {})",
                    wire_req.query,
                    state.pool.len()
                ))
            })?;
            let mut submit = QueryRequest::new(query.clone());
            if let Some(p) = wire_req.priority {
                submit = submit.with_priority(p);
            }
            if let Some(d) = wire_req.deadline_us {
                submit = submit.with_deadline_us(d);
            }
            if let Some(b) = wire_req.planning_budget_us {
                submit = submit.with_planning_budget_us(b);
            }
            let decision = state.doctor.submit(submit)?;
            let generation = state.doctor.snapshot_generation();
            Ok((
                200,
                PlanReply::from_decision(&decision, generation).to_json(),
            ))
        }
        ("POST", "/publish") => {
            let current = state.doctor.snapshot();
            let snapshot = PlannerSnapshot::from_bytes(&req.body, current.optimizer().clone())?;
            state.doctor.publish(snapshot)?;
            Ok((
                200,
                Json::obj(vec![(
                    "generation",
                    Json::u64_str(state.doctor.snapshot_generation()),
                )]),
            ))
        }
        (method, path) => {
            let w = WireError::protocol(
                404,
                "unknown_route",
                format!(
                    "no route {method} {path}; valid: POST /plan, GET /metrics, \
                     GET /healthz, POST /publish"
                ),
            );
            Ok((w.status, w.body()))
        }
    }
}

/// Merge the JSON body with the `x-foss-*` headers (body fields win).
fn parse_plan_request(req: &Request) -> Result<PlanRequest> {
    let body = std::str::from_utf8(&req.body)
        .map_err(|_| FossError::Serde("request body is not UTF-8".into()))?;
    let mut wire_req = PlanRequest::from_json(&Json::parse(body)?)?;
    if wire_req.priority.is_none() {
        if let Some(p) = req.header("x-foss-priority") {
            wire_req.priority = Some(parse_priority(p)?);
        }
    }
    let header_num = |name: &str| -> Result<Option<f64>> {
        match req.header(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| FossError::Serde(format!("header {name} must be a number"))),
        }
    };
    if wire_req.deadline_us.is_none() {
        wire_req.deadline_us = header_num("x-foss-deadline-us")?;
    }
    if wire_req.planning_budget_us.is_none() {
        wire_req.planning_budget_us = header_num("x-foss-planning-budget-us")?;
    }
    Ok(wire_req)
}

fn read_request(stream: &mut TcpStream) -> Result<Request> {
    let io_err = |e: std::io::Error| FossError::Transient(format!("socket read: {e}"));
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_terminator(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(FossError::Serde("request header section too large".into()));
        }
        let n = stream.read(&mut chunk).map_err(io_err)?;
        if n == 0 {
            return Err(FossError::Serde("connection closed mid-request".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| FossError::Serde("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| FossError::Serde("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| FossError::Serde("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| FossError::Serde("missing path".into()))?
        .to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| FossError::Serde(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // Duplicate `content-length` headers with conflicting values are the
    // classic request-smuggling ambiguity: a proxy that honours the first
    // and a server that honours the last disagree on where the body ends.
    // Agreeing duplicates are tolerated (RFC 9112 §6.3 lets a recipient
    // collapse them); conflicting ones are rejected outright.
    let mut content_length: Option<usize> = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let parsed: usize = v
            .parse()
            .map_err(|_| FossError::Serde("bad content-length".into()))?;
        match content_length {
            Some(prev) if prev != parsed => {
                return Err(FossError::Serde(format!(
                    "conflicting content-length headers: {prev} vs {parsed}"
                )));
            }
            _ => content_length = Some(parsed),
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(FossError::Serde(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(io_err)?;
        if n == 0 {
            return Err(FossError::Serde("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Position of the `\r\n\r\n` header terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

fn write_response(stream: &mut TcpStream, status: u16, body: &Json) -> std::io::Result<()> {
    let payload = body.to_string();
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        status_text(status),
        payload.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// The typed outcome of a `POST /plan` round trip.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOutcome {
    /// The service planned and executed the query.
    Decision(PlanReply),
    /// The service refused the request with a wire error (shed, bad index,
    /// expired budget upstream, ...).
    Rejected(Rejection),
}

/// A wire error as seen by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// HTTP status.
    pub status: u16,
    /// Machine-readable error class (see [`crate::wire`]).
    pub code: String,
    /// Whether resending the same request can succeed.
    pub retryable: bool,
    /// Human-readable detail.
    pub message: String,
}

/// A blocking HTTP client for the serving API (one connection per call,
/// mirroring the server's `Connection: close` contract).
#[derive(Debug, Clone, Copy)]
pub struct PlanClient {
    addr: SocketAddr,
}

impl PlanClient {
    /// A client for the server at `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr }
    }

    /// Resolve `host:port` and build a client (first address wins).
    pub fn connect(host_port: &str) -> Result<Self> {
        let addr = host_port
            .to_socket_addrs()
            .map_err(|e| FossError::Transient(format!("cannot resolve {host_port}: {e}")))?
            .next()
            .ok_or_else(|| FossError::Transient(format!("{host_port} resolves to nothing")))?;
        Ok(Self::new(addr))
    }

    /// `POST /plan`. Transport and protocol failures are `Err`; a served
    /// decision or a typed wire rejection both come back as `Ok`.
    pub fn plan(&self, req: &PlanRequest) -> Result<PlanOutcome> {
        let body = req.to_json().to_string();
        let (status, reply) = self.request("POST", "/plan", body.as_bytes())?;
        let parsed = Json::parse(&String::from_utf8_lossy(&reply))?;
        if status == 200 {
            Ok(PlanOutcome::Decision(PlanReply::from_json(&parsed)?))
        } else {
            Ok(PlanOutcome::Rejected(Rejection {
                status,
                code: parsed
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                retryable: parsed
                    .get("retryable")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                message: parsed
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }))
        }
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<Json> {
        self.get_json("/healthz")
    }

    /// `GET /metrics`.
    pub fn metrics(&self) -> Result<Json> {
        self.get_json("/metrics")
    }

    /// `POST /publish` with raw [`PlannerSnapshot::to_bytes`] output;
    /// returns the new serving generation.
    pub fn publish(&self, snapshot_bytes: &[u8]) -> Result<u64> {
        let (status, reply) = self.request("POST", "/publish", snapshot_bytes)?;
        let parsed = Json::parse(&String::from_utf8_lossy(&reply))?;
        if status != 200 {
            let msg = parsed
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("publish failed")
                .to_string();
            return Err(FossError::Serde(format!(
                "publish rejected ({status}): {msg}"
            )));
        }
        parsed
            .get("generation")
            .and_then(Json::as_u64_str)
            .ok_or_else(|| FossError::Serde("publish reply lacks `generation`".into()))
    }

    fn get_json(&self, path: &str) -> Result<Json> {
        let (status, reply) = self.request("GET", path, &[])?;
        let parsed = Json::parse(&String::from_utf8_lossy(&reply))?;
        if status != 200 {
            return Err(FossError::Serde(format!("{path} returned {status}")));
        }
        Ok(parsed)
    }

    fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<(u16, Vec<u8>)> {
        self.request_io(method, path, body)
            .map_err(|e| FossError::Transient(format!("request to {}: {e}", self.addr)))
            .and_then(|raw| parse_response(&raw))
    }

    fn request_io(&self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\
             connection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        Ok(raw)
    }
}

/// Split a raw HTTP response into (status, body).
fn parse_response(raw: &[u8]) -> Result<(u16, Vec<u8>)> {
    let header_end =
        find_terminator(raw).ok_or_else(|| FossError::Serde("truncated HTTP response".into()))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| FossError::Serde("response head is not UTF-8".into()))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| FossError::Serde(format!("bad status line `{status_line}`")))?;
    Ok((status, raw[header_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Priority, ServiceConfig};
    use foss_core::envs::tests_support::TestWorld;
    use foss_core::{Foss, FossConfig};
    use foss_executor::CachingExecutor;

    struct Net {
        world: TestWorld,
        foss: Foss,
        doctor: Arc<PlanDoctor>,
        server: PlanServer,
    }

    fn serve(seed: u64, cfg: ServiceConfig) -> Net {
        let world = TestWorld::new(seed);
        let executor = Arc::new(CachingExecutor::new(
            world.db.clone(),
            *world.opt.cost_model(),
        ));
        let mut foss = Foss::new(
            Arc::new(world.opt.clone()),
            executor.clone(),
            3,
            world.db.stats().iter().map(|s| s.row_count).collect(),
            FossConfig {
                episodes_per_update: 6,
                seed,
                ..FossConfig::tiny()
            },
        );
        foss.train(std::slice::from_ref(&world.query), 1).unwrap();
        let doctor = Arc::new(PlanDoctor::new(foss.snapshot(), executor, cfg));
        let server =
            PlanServer::start(doctor.clone(), vec![world.query.clone()], "127.0.0.1:0").unwrap();
        Net {
            world,
            foss,
            doctor,
            server,
        }
    }

    #[test]
    fn socket_round_trip_matches_in_process_submit() {
        let net = serve(61, ServiceConfig::default());
        let client = net.server.client();

        let health = client.healthz().unwrap();
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(health.get("queries").and_then(Json::as_usize), Some(1));

        let outcome = client.plan(&PlanRequest::for_index(0)).unwrap();
        let PlanOutcome::Decision(reply) = outcome else {
            panic!("expected a decision, got {outcome:?}");
        };
        // The same request in-process must agree on the served plan.
        let direct = net
            .doctor
            .submit(QueryRequest::new(net.world.query.clone()))
            .unwrap();
        assert_eq!(reply.fingerprint, direct.plan.fingerprint());
        assert_eq!(reply.generation, 0);

        let metrics = client.metrics().unwrap();
        assert_eq!(metrics.get("submitted").and_then(Json::as_usize), Some(2));
        assert_eq!(metrics.get("errors").and_then(Json::as_usize), Some(0));
    }

    #[test]
    fn wire_errors_carry_documented_codes() {
        let net = serve(
            62,
            ServiceConfig {
                max_in_flight: 1,
                ..ServiceConfig::default()
            },
        );
        let client = net.server.client();

        // Out-of-pool index → 404 unknown_name.
        let out = client.plan(&PlanRequest::for_index(99)).unwrap();
        let PlanOutcome::Rejected(rej) = out else {
            panic!("bad index must be rejected")
        };
        assert_eq!((rej.status, rej.code.as_str()), (404, "unknown_name"));
        assert!(!rej.retryable);

        // Saturated gate + low priority → 429 overloaded, retryable.
        let held = net.doctor.gate.acquire();
        let shed = client
            .plan(&PlanRequest {
                query: 0,
                priority: Some(Priority::Low),
                ..PlanRequest::default()
            })
            .unwrap();
        let PlanOutcome::Rejected(rej) = shed else {
            panic!("saturated low-priority must shed")
        };
        assert_eq!((rej.status, rej.code.as_str()), (429, "overloaded"));
        assert!(rej.retryable);
        drop(held);

        // Unknown route → 404 unknown_route listing the surface.
        let (status, body) = client.request("GET", "/nope", &[]).unwrap();
        assert_eq!(status, 404);
        let parsed = Json::parse(&String::from_utf8_lossy(&body)).unwrap();
        assert_eq!(
            parsed.get("code").and_then(Json::as_str),
            Some("unknown_route")
        );
        assert!(parsed
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("POST /plan"));

        // Malformed body → 400 malformed.
        let (status, body) = client.request("POST", "/plan", b"{not json").unwrap();
        assert_eq!(status, 400);
        let parsed = Json::parse(&String::from_utf8_lossy(&body)).unwrap();
        assert_eq!(parsed.get("code").and_then(Json::as_str), Some("malformed"));

        // Sheds are visible in the served metrics.
        let m = client.metrics().unwrap();
        assert_eq!(m.get("shed_low").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn headers_set_priority_and_budget_when_body_omits_them() {
        let net = serve(63, ServiceConfig::default());
        let client = net.server.client();
        // A zero planning budget via header must force PlanningTimeout.
        let mut stream = TcpStream::connect(net.server.addr()).unwrap();
        let body = r#"{"query":0}"#;
        let req = format!(
            "POST /plan HTTP/1.1\r\nhost: x\r\nx-foss-planning-budget-us: 0\r\n\
             content-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let (status, reply) = parse_response(&raw).unwrap();
        assert_eq!(status, 200);
        let reply =
            PlanReply::from_json(&Json::parse(&String::from_utf8_lossy(&reply)).unwrap()).unwrap();
        assert!(reply.fallback);
        assert_eq!(reply.reason, "planning_timeout");
        // Body wins over header when both are present.
        let outcome = client
            .plan(&PlanRequest {
                query: 0,
                planning_budget_us: Some(1e12),
                ..PlanRequest::default()
            })
            .unwrap();
        assert!(matches!(outcome, PlanOutcome::Decision(_)));
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        let net = serve(66, ServiceConfig::default());
        let raw_round_trip = |req: String| {
            let mut stream = TcpStream::connect(net.server.addr()).unwrap();
            stream.write_all(req.as_bytes()).unwrap();
            let mut raw = Vec::new();
            stream.read_to_end(&mut raw).unwrap();
            let (status, body) = parse_response(&raw).unwrap();
            (status, String::from_utf8_lossy(&body).into_owned())
        };
        let body = r#"{"query":0}"#;

        // Conflicting duplicates are the smuggling-adjacent shape: which
        // header governs decides where the body ends. Reject, never pick.
        let (status, reply) = raw_round_trip(format!(
            "POST /plan HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\
             content-length: 2\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ));
        assert_eq!(status, 400, "conflicting lengths must be rejected: {reply}");
        let parsed = Json::parse(&reply).unwrap();
        assert_eq!(parsed.get("code").and_then(Json::as_str), Some("malformed"));
        assert!(
            parsed
                .get("message")
                .and_then(Json::as_str)
                .unwrap()
                .contains("conflicting content-length"),
            "message must name the conflict: {reply}"
        );

        // Agreeing duplicates collapse to one value and serve normally.
        let (status, reply) = raw_round_trip(format!(
            "POST /plan HTTP/1.1\r\nhost: x\r\ncontent-length: {len}\r\n\
             content-length: {len}\r\nconnection: close\r\n\r\n{body}",
            len = body.len()
        ));
        assert_eq!(status, 200, "agreeing duplicates must serve: {reply}");

        // A single unparsable value still fails loudly.
        let (status, reply) = raw_round_trip(
            "POST /plan HTTP/1.1\r\nhost: x\r\ncontent-length: eleven\r\n\
             connection: close\r\n\r\n"
                .to_string(),
        );
        assert_eq!(status, 400, "unparsable length must be rejected: {reply}");
    }

    #[test]
    fn publish_over_the_wire_bumps_the_generation() {
        let mut net = serve(64, ServiceConfig::default());
        let client = net.server.client();
        net.foss
            .train_iteration(std::slice::from_ref(&net.world.query), 2)
            .unwrap();
        let bytes = net.foss.snapshot().to_bytes();
        let generation = client.publish(&bytes).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(net.doctor.snapshot_generation(), 1);
        // The published generation serves.
        let outcome = client.plan(&PlanRequest::for_index(0)).unwrap();
        let PlanOutcome::Decision(reply) = outcome else {
            panic!("post-publish plan must succeed")
        };
        assert_eq!(reply.generation, 1);
        // Garbage bytes are rejected without disturbing the generation.
        assert!(client.publish(b"not a snapshot").is_err());
        assert_eq!(net.doctor.snapshot_generation(), 1);
    }

    #[test]
    fn shutdown_stops_accepting() {
        let Net { server, .. } = serve(65, ServiceConfig::default());
        let addr = server.addr();
        let client = server.client();
        client.healthz().unwrap();
        server.shutdown();
        // A fresh connection must now fail to complete a request.
        assert!(PlanClient::new(addr).healthz().is_err());
    }
}
