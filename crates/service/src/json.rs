//! A minimal JSON value type with a recursive-descent parser and a writer.
//!
//! The workspace builds offline and the vendored `serde` is a no-op
//! stand-in (its derives expand to nothing), so the wire protocol carries
//! its own small JSON codec. It covers exactly what the serving API needs:
//! objects, arrays, strings (with full escape handling), IEEE-754 numbers,
//! booleans and null. Object key order is preserved, so a value written
//! from a [`Json`] tree is deterministic.

use foss_common::{FossError, Result};
use std::fmt;

/// Parser recursion ceiling — a hostile request cannot blow the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Self {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// A numeric value.
    pub fn num(n: f64) -> Self {
        Json::Num(n)
    }

    /// A `u64` carried as a string — JSON numbers are doubles, which lose
    /// precision past 2^53, so fingerprints and generations ride as strings.
    pub fn u64_str(v: u64) -> Self {
        Json::Str(v.to_string())
    }

    /// Field lookup on an object (`None` for other variants/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A `u64` sent via [`Json::u64_str`].
    pub fn as_u64_str(&self) -> Option<u64> {
        self.as_str().and_then(|s| s.parse().ok())
    }

    /// Parse a complete JSON document (trailing whitespace allowed, other
    /// trailing content rejected).
    pub fn parse(input: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(FossError::Serde(format!(
                "trailing content at byte {} of JSON document",
                p.pos
            )));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no NaN/Inf; degrade to null rather than emit
                    // an unparseable document.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> FossError {
        FossError::Serde(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|b| b & 0xC0 == 0x80 && self.pos - start < 4)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = s.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            Json::parse(r#"[1, "two", [3]]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::str("two"),
                Json::Arr(vec![Json::Num(3.0)])
            ])
        );
        let obj = Json::parse(r#"{"a": 1, "b": {"c": null}}"#).unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_usize), Some(1));
        assert_eq!(obj.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::str("line\none \"two\" \\ tab\t snowman ☃ \u{1}");
        let text = original.to_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
        // Astral-plane surrogate pair decodes to one char.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::str("\u{1F600}")
        );
    }

    #[test]
    fn u64_fidelity_via_strings() {
        let fp = u64::MAX - 7;
        let j = Json::u64_str(fp);
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(back.as_u64_str(), Some(fp));
    }

    #[test]
    fn writer_output_reparses_identically() {
        let doc = Json::obj(vec![
            ("name", Json::str("plan-doctor")),
            ("shed", Json::Bool(false)),
            ("p99", Json::Num(1234.5)),
            ("steps", Json::Arr(vec![Json::Num(0.0), Json::Num(2.0)])),
            ("nested", Json::obj(vec![("x", Json::Null)])),
        ]);
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
        // Depth bomb: deeper than MAX_DEPTH must error, not overflow.
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }
}
