//! Tiered execution: hot plan shapes compile to fused pipelines.
//!
//! The serving trace is dominated by a handful of recurring plan templates
//! (the doctor steers toward them by construction), yet tier 1 — the
//! chunked interpreter — pays per-operator dispatch on every execution.
//! This module is the interpreter→hot-count→compiled ladder around
//! [`foss_executor::FusedPipeline`]:
//!
//! 1. [`HotShapeTracker`] counts executions per plan **shape**
//!    ([`foss_executor::fused::shape_key`], a widening of
//!    `PhysicalPlan::fingerprint` that also hashes tables, predicate
//!    columns and join edges — but *not* predicate constants, so every
//!    instance of a query template shares one shape).
//! 2. Past [`TierConfig::hot_threshold`] executions, one thread wins the
//!    compile claim and builds the [`FusedPipeline`]; unsupported shapes
//!    are negative-cached so the check is paid once.
//! 3. Compiled pipelines are published through [`TierCell`], a
//!    generation-counted copy-on-write map with the same swap-then-bump
//!    hot-swap discipline as `foss_core::SnapshotCell`: readers are
//!    lock-free-ish (one `RwLock` read of an `Arc` they clone), never see
//!    a torn pipeline, and in-flight executions finish on the map they
//!    loaded.
//!
//! Fallback is graceful and total: any shape the compiler declines runs on
//! the interpreter forever (counted in `tier_fallbacks`), and the fused
//! tier charges the identical work-unit sequence, so flipping
//! [`TierMode`] can never change results, recorded latencies or timeout
//! behaviour — only wall-clock cost. `FOSS_TIER` (env) and `--tier` (CLI)
//! force either tier; see [`TierMode::from_env`].

use std::sync::Arc;

use foss_common::sync::atomic::{AtomicU64, Ordering};
use foss_common::sync::{Mutex, RwLock};
use foss_common::{FxHashMap, FxHashSet};
use foss_executor::FusedPipeline;
use foss_optimizer::PhysicalPlan;
use foss_query::Query;

/// Which execution tier `submit` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierMode {
    /// Tier 1 only: always interpret; no counting, no compilation.
    Interpreter,
    /// Count per-shape executions and compile past the hot threshold.
    #[default]
    Auto,
    /// Compile on first sight (used by the differential tests to exercise
    /// the fused path below the hot threshold, and by benches for A/B).
    Force,
}

impl TierMode {
    /// Parse a mode name: `off`/`interpreter`/`1` → [`TierMode::Interpreter`],
    /// `auto` → [`TierMode::Auto`], `force`/`fused`/`2` → [`TierMode::Force`].
    pub fn parse(s: &str) -> Option<TierMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "interpreter" | "1" => Some(TierMode::Interpreter),
            "auto" => Some(TierMode::Auto),
            "force" | "fused" | "2" => Some(TierMode::Force),
            _ => None,
        }
    }

    /// The `FOSS_TIER` environment override, if set and valid (an invalid
    /// value is ignored rather than guessed at — the CLI layer validates
    /// loudly, this is the quiet library path).
    pub fn from_env() -> Option<TierMode> {
        std::env::var("FOSS_TIER")
            .ok()
            .as_deref()
            .and_then(Self::parse)
    }
}

/// Tiering knobs, embedded in `ServiceConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierConfig {
    /// Tier selection (the `FOSS_TIER` env var overrides this at
    /// `PlanDoctor` construction; see `PlanDoctor::new`).
    pub mode: TierMode,
    /// Executions of one shape before it is considered hot and compiled
    /// (ignored under [`TierMode::Force`]).
    pub hot_threshold: u32,
}

impl Default for TierConfig {
    fn default() -> Self {
        Self {
            mode: TierMode::Auto,
            hot_threshold: 8,
        }
    }
}

/// Tier counters for metrics (`tier_compiles` / `tier_hits` /
/// `tier_fallbacks` in the metrics snapshot and wire JSON).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Shapes successfully compiled to fused pipelines.
    pub compiles: u64,
    /// Executions served by a fused pipeline.
    pub hits: u64,
    /// Executions of hot-but-unsupported shapes that fell back to the
    /// interpreter (cold interpreted executions are not fallbacks — the
    /// tier never promised them anything).
    pub fallbacks: u64,
}

/// Counts executions per plan shape; interior-mutable and shared across
/// submit threads.
#[derive(Debug, Default)]
pub struct HotShapeTracker {
    counts: Mutex<FxHashMap<u64, u32>>,
}

impl HotShapeTracker {
    /// Record one execution of `shape` and return the new count.
    pub fn bump(&self, shape: u64) -> u32 {
        let mut counts = self.counts.lock();
        let c = counts.entry(shape).or_insert(0);
        *c = c.saturating_add(1);
        *c
    }

    /// Shapes tracked so far.
    pub fn len(&self) -> usize {
        self.counts.lock().len()
    }

    /// Whether no shape has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.counts.lock().is_empty()
    }
}

/// A generation-counted, copy-on-write published map of compiled artifacts
/// — the tier's `SnapshotCell` analogue, keyed by shape.
///
/// Readers [`TierCell::get`] against an immutable `Arc` map; publishers
/// clone-insert-swap under the write lock and then bump the generation
/// (`Release`, mirroring `SnapshotCell`'s swap-then-bump), so an observed
/// generation `g` guarantees a subsequent load sees publish `g`'s entry.
/// Entries are immutable once published — a shape is compiled at most
/// once, enforced by the claim set: [`TierCell::claim`] hands exactly one
/// caller the right to compile a given key, and the claim releases on drop
/// so a compiler that declines (unsupported shape) does not wedge the key.
#[derive(Debug)]
pub struct TierCell<T> {
    slot: RwLock<Arc<FxHashMap<u64, Arc<T>>>>,
    generation: AtomicU64,
    claims: Mutex<FxHashSet<u64>>,
}

impl<T> Default for TierCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TierCell<T> {
    /// An empty cell at generation 0.
    pub fn new() -> Self {
        Self {
            slot: RwLock::new(Arc::new(FxHashMap::default())),
            generation: AtomicU64::new(0),
            claims: Mutex::new(FxHashSet::default()),
        }
    }

    /// The whole published map (an immutable snapshot; later publishes do
    /// not change it).
    pub fn load(&self) -> Arc<FxHashMap<u64, Arc<T>>> {
        self.slot.read().clone()
    }

    /// The published entry for `key`, if any.
    pub fn get(&self, key: u64) -> Option<Arc<T>> {
        self.slot.read().get(&key).cloned()
    }

    /// Publishes so far. A reader that observes generation `g` is
    /// guaranteed the *next* [`TierCell::load`] contains every entry
    /// published up to `g`.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Claim the right to compile `key`. Returns `None` when `key` is
    /// already published or another thread holds the claim — the loser
    /// simply keeps interpreting until the winner publishes.
    pub fn claim(&self, key: u64) -> Option<TierClaim<'_, T>> {
        if self.slot.read().contains_key(&key) {
            return None;
        }
        let mut claims = self.claims.lock();
        if !claims.insert(key) {
            return None;
        }
        // Re-check under the claim: a racer may have published between the
        // optimistic read above and our insert. Its claim releases only
        // after the slot swap, so holding the claims lock this read cannot
        // miss the entry — each key is published at most once.
        if self.slot.read().contains_key(&key) {
            claims.remove(&key);
            return None;
        }
        Some(TierClaim { cell: self, key })
    }
}

/// RAII compile claim from [`TierCell::claim`]; dropped without
/// [`TierClaim::publish`], the key becomes claimable again.
#[derive(Debug)]
pub struct TierClaim<'a, T> {
    cell: &'a TierCell<T>,
    key: u64,
}

impl<T> TierClaim<'_, T> {
    /// Publish `value` under the claimed key: copy-on-write insert, swap,
    /// then generation bump.
    pub fn publish(self, value: T) -> Arc<T> {
        let value = Arc::new(value);
        {
            let mut slot = self.cell.slot.write();
            let mut next: FxHashMap<u64, Arc<T>> = (**slot).clone();
            next.insert(self.key, value.clone());
            *slot = Arc::new(next);
        }
        self.cell.generation.fetch_add(1, Ordering::Release);
        value
        // `self` drops here, releasing the claim set entry.
    }
}

impl<T> Drop for TierClaim<'_, T> {
    fn drop(&mut self) {
        self.cell.claims.lock().remove(&self.key);
    }
}

/// A published compile verdict for one shape.
#[derive(Debug)]
pub enum TierEntry {
    /// The shape compiled; executions route through the fused pipeline.
    Compiled(FusedPipeline),
    /// The shape is unsupported; executions stay on the interpreter (and
    /// count as `tier_fallbacks`), but the compile attempt is not repeated.
    Unsupported,
}

/// The service's tier-2 engine: tracker + cell + counters, consulted by
/// `PlanDoctor` on every execution.
#[derive(Debug)]
pub struct TierEngine {
    mode: TierMode,
    hot_threshold: u32,
    tracker: HotShapeTracker,
    cell: TierCell<TierEntry>,
    compiles: AtomicU64,
    hits: AtomicU64,
    fallbacks: AtomicU64,
}

impl TierEngine {
    /// An engine in `mode` with the given hot threshold.
    pub fn new(cfg: TierConfig) -> Self {
        Self {
            mode: cfg.mode,
            hot_threshold: cfg.hot_threshold.max(1),
            tracker: HotShapeTracker::default(),
            cell: TierCell::new(),
            compiles: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// The mode in effect.
    pub fn mode(&self) -> TierMode {
        self.mode
    }

    /// Tier cell generation (bumped once per published compile verdict).
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }

    /// The fused pipeline to execute `(query, plan)` with, or `None` to
    /// interpret. Bumps the hot counter, triggers at most one compile per
    /// shape, and maintains the `tier_*` counters.
    pub fn pipeline_for(&self, query: &Query, plan: &PhysicalPlan) -> Option<Arc<TierEntry>> {
        if self.mode == TierMode::Interpreter {
            return None;
        }
        let shape = foss_executor::fused::shape_key(query, plan);
        if let Some(entry) = self.cell.get(shape) {
            match *entry {
                TierEntry::Compiled(_) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(entry);
                }
                TierEntry::Unsupported => {
                    self.fallbacks.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        if self.mode == TierMode::Auto && self.tracker.bump(shape) < self.hot_threshold {
            return None;
        }
        let Some(claim) = self.cell.claim(shape) else {
            // A racer is compiling (or just published — either way the
            // next execution of this shape will see the cell); interpret
            // this one.
            return None;
        };
        match FusedPipeline::compile(query, plan) {
            Some(pipeline) => {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(claim.publish(TierEntry::Compiled(pipeline)))
            }
            None => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                claim.publish(TierEntry::Unsupported);
                None
            }
        }
    }

    /// Counter snapshot for metrics.
    pub fn stats(&self) -> TierStats {
        TierStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_mode_parses_env_spellings() {
        for (s, want) in [
            ("off", TierMode::Interpreter),
            ("Interpreter", TierMode::Interpreter),
            ("1", TierMode::Interpreter),
            ("auto", TierMode::Auto),
            ("FORCE", TierMode::Force),
            ("fused", TierMode::Force),
            ("2", TierMode::Force),
        ] {
            assert_eq!(TierMode::parse(s), Some(want), "spelling {s:?}");
        }
        assert_eq!(TierMode::parse("warp"), None);
    }

    #[test]
    fn tracker_counts_per_shape() {
        let t = HotShapeTracker::default();
        assert!(t.is_empty());
        assert_eq!(t.bump(7), 1);
        assert_eq!(t.bump(7), 2);
        assert_eq!(t.bump(9), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn tier_cell_claim_is_exclusive_and_released_on_drop() {
        let cell: TierCell<u32> = TierCell::new();
        let claim = cell.claim(5).expect("first claim wins");
        assert!(cell.claim(5).is_none(), "claimed key is exclusive");
        assert!(cell.claim(6).is_some(), "other keys are independent");
        drop(claim);
        // Released without publishing: claimable again.
        let claim = cell.claim(5).expect("dropped claim frees the key");
        claim.publish(42);
        assert_eq!(cell.generation(), 1);
        assert_eq!(cell.get(5).as_deref(), Some(&42));
        assert!(cell.claim(5).is_none(), "published key is never reclaimed");
    }

    #[test]
    fn tier_cell_publish_is_copy_on_write() {
        let cell: TierCell<u32> = TierCell::new();
        let before = cell.load();
        for key in 0..3 {
            if let Some(c) = cell.claim(key) {
                c.publish(key as u32 * 10);
            }
        }
        assert!(before.is_empty(), "loaded maps are immutable snapshots");
        assert_eq!(cell.generation(), 3);
        assert_eq!(cell.load().len(), 3);
        assert_eq!(cell.get(2).as_deref(), Some(&20));
        assert_eq!(cell.get(9), None);
    }

    #[test]
    fn interpreter_mode_never_tracks_or_compiles() {
        let engine = TierEngine::new(TierConfig {
            mode: TierMode::Interpreter,
            hot_threshold: 1,
        });
        // No query/plan needed: the mode check precedes everything.
        assert_eq!(engine.stats(), TierStats::default());
        assert_eq!(engine.mode(), TierMode::Interpreter);
        assert!(engine.tracker.is_empty());
    }
}
