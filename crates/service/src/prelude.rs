//! One-stop import for the full public serving surface.
//!
//! ```
//! use foss_service::prelude::*;
//! ```
//!
//! Pulls in the in-process front end ([`PlanDoctor`] and its request /
//! decision types), the networked layer ([`PlanServer`], [`PlanClient`]
//! and the wire shapes) and the snapshot types a serving-only process
//! needs to boot from a trained [`PlannerSnapshot`] file.

pub use crate::breaker::{BreakerConfig, BreakerState, BreakerView, CircuitBreaker};
pub use crate::gate::{AdmissionGate, Permit};
pub use crate::http::{PlanClient, PlanOutcome, PlanServer, Rejection};
pub use crate::json::Json;
pub use crate::metrics::{MetricsRegistry, MetricsSnapshot, Outcome};
pub use crate::wire::{
    metrics_to_json, parse_priority, priority_str, reason_str, PlanReply, PlanRequest, WireError,
};
pub use crate::{FallbackReason, PlanDecision, PlanDoctor, Priority, QueryRequest, ServiceConfig};
pub use foss_core::{PlannerSnapshot, SnapshotCell, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
