//! The stable wire surface of the serving API: error mapping and the JSON
//! shapes of requests and responses.
//!
//! # Error contract
//!
//! Every [`FossError`] maps to exactly one HTTP status and one
//! machine-readable code (the mapping is total — a unit test constructs
//! every variant). Error bodies are always
//! `{"code": ..., "message": ..., "retryable": ...}`; `retryable` tells a
//! client whether backing off and resending the same request can succeed.
//!
//! | variant          | status | code               | retryable |
//! |------------------|--------|--------------------|-----------|
//! | `UnknownName`    | 404    | `unknown_name`     | no        |
//! | `InvalidQuery`   | 400    | `invalid_query`    | no        |
//! | `InvalidPlan`    | 422    | `invalid_plan`     | no        |
//! | `InvalidAction`  | 422    | `invalid_action`   | no        |
//! | `Timeout`        | 504    | `timeout`          | yes       |
//! | `Numeric`        | 500    | `numeric`          | no        |
//! | `Serde`          | 400    | `malformed`        | no        |
//! | `Transient`      | 503    | `transient`        | yes       |
//! | `Overloaded`     | 429    | `overloaded`       | yes       |

use foss_common::{FossError, Result};

use crate::json::Json;
use crate::{FallbackReason, MetricsSnapshot, PlanDecision, Priority};

/// A [`FossError`] flattened onto the wire: status line + JSON body.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable error class.
    pub code: &'static str,
    /// Whether retrying the identical request can succeed.
    pub retryable: bool,
    /// Human-readable detail (the error's `Display` text).
    pub message: String,
}

impl WireError {
    /// The total `FossError` → wire mapping (see the module table).
    pub fn from_error(e: &FossError) -> Self {
        let (status, code, retryable) = match e {
            FossError::UnknownName(_) => (404, "unknown_name", false),
            FossError::InvalidQuery(_) => (400, "invalid_query", false),
            FossError::InvalidPlan(_) => (422, "invalid_plan", false),
            FossError::InvalidAction(_) => (422, "invalid_action", false),
            FossError::Timeout { .. } => (504, "timeout", true),
            FossError::Numeric(_) => (500, "numeric", false),
            FossError::Serde(_) => (400, "malformed", false),
            FossError::Transient(_) => (503, "transient", true),
            FossError::Overloaded { .. } => (429, "overloaded", true),
        };
        Self {
            status,
            code,
            retryable,
            message: e.to_string(),
        }
    }

    /// A wire error minted by the HTTP layer itself (bad route, bad body),
    /// not by a [`FossError`].
    pub fn protocol(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            status,
            code,
            retryable: false,
            message: message.into(),
        }
    }

    /// The JSON error body.
    pub fn body(&self) -> Json {
        Json::obj(vec![
            ("code", Json::str(self.code)),
            ("message", Json::str(self.message.clone())),
            ("retryable", Json::Bool(self.retryable)),
        ])
    }
}

/// Stable string for each [`FallbackReason`] (wire + operator output).
pub fn reason_str(reason: FallbackReason) -> &'static str {
    match reason {
        FallbackReason::None => "none",
        FallbackReason::PlanningTimeout => "planning_timeout",
        FallbackReason::LowConfidence => "low_confidence",
        FallbackReason::ExecTimeout => "exec_timeout",
        FallbackReason::ExecError => "exec_error",
        FallbackReason::BreakerOpen => "breaker_open",
        FallbackReason::DeadlineExceeded => "deadline_exceeded",
    }
}

/// A `POST /plan` request body. The query itself is named by its index in
/// the server's workload pool — queries are deterministic functions of
/// (workload, seed, scale), so client and server share the pool by
/// construction and the wire stays tiny.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanRequest {
    /// Index into the serving pool (`all_queries()` order).
    pub query: usize,
    /// Admission class; `None` means the server default ([`Priority::High`]).
    pub priority: Option<Priority>,
    /// End-to-end deadline in µs (measured server-side from admission).
    pub deadline_us: Option<f64>,
    /// Per-request planning budget override in µs.
    pub planning_budget_us: Option<f64>,
}

impl PlanRequest {
    /// Request the pool query at `index` with defaults for everything else.
    pub fn for_index(index: usize) -> Self {
        Self {
            query: index,
            ..Self::default()
        }
    }

    /// The JSON body for this request.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("query", Json::num(self.query as f64))];
        if let Some(p) = self.priority {
            fields.push(("priority", Json::str(priority_str(p))));
        }
        if let Some(d) = self.deadline_us {
            fields.push(("deadline_us", Json::num(d)));
        }
        if let Some(b) = self.planning_budget_us {
            fields.push(("planning_budget_us", Json::num(b)));
        }
        Json::obj(fields)
    }

    /// Parse a request body. Unknown fields are ignored (forward
    /// compatibility); a missing/mistyped `query` or an invalid `priority`
    /// is an error.
    pub fn from_json(body: &Json) -> Result<Self> {
        let query = body
            .get("query")
            .and_then(Json::as_usize)
            .ok_or_else(|| FossError::Serde("`query` must be a non-negative integer".into()))?;
        let priority = match body.get("priority") {
            None | Some(Json::Null) => None,
            Some(p) => Some(parse_priority(p.as_str().unwrap_or(""))?),
        };
        let number = |key: &str| -> Result<Option<f64>> {
            match body.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| FossError::Serde(format!("`{key}` must be a number"))),
            }
        };
        Ok(Self {
            query,
            priority,
            deadline_us: number("deadline_us")?,
            planning_budget_us: number("planning_budget_us")?,
        })
    }
}

/// Wire spelling of a [`Priority`] (header value and JSON field).
pub fn priority_str(p: Priority) -> &'static str {
    match p {
        Priority::High => "high",
        Priority::Low => "low",
    }
}

/// Parse the wire spelling of a [`Priority`].
pub fn parse_priority(s: &str) -> Result<Priority> {
    match s {
        "high" => Ok(Priority::High),
        "low" => Ok(Priority::Low),
        other => Err(FossError::Serde(format!(
            "priority must be `high` or `low`, got `{other}`"
        ))),
    }
}

/// A successful `POST /plan` response — the wire image of a
/// [`PlanDecision`], plus the snapshot generation that planned it.
/// The plan itself rides as its fingerprint: the differential contract is
/// fingerprint equality, and shipping full plan trees would only let the
/// two sides disagree about formatting.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReply {
    /// Served plan fingerprint ([`foss_optimizer::PhysicalPlan::fingerprint`]).
    pub fingerprint: u64,
    /// Whether the expert plan was served instead of the doctored one.
    pub fallback: bool,
    /// Stable reason string (see [`reason_str`]).
    pub reason: String,
    /// Planning wall time (µs).
    pub planning_us: f64,
    /// Served execution latency (work units ≡ µs).
    pub latency: f64,
    /// Optimisation step of the served plan (0 = expert kept).
    pub selected_step: usize,
    /// Candidate plans considered.
    pub candidates: usize,
    /// Transient-failure retries spent.
    pub retries: usize,
    /// Snapshot generation that served the request.
    pub generation: u64,
}

impl PlanReply {
    /// Build the wire reply from a service decision.
    pub fn from_decision(d: &PlanDecision, generation: u64) -> Self {
        Self {
            fingerprint: d.plan.fingerprint(),
            fallback: d.fallback,
            reason: reason_str(d.reason).to_string(),
            planning_us: d.planning_us,
            latency: d.latency,
            selected_step: d.selected_step,
            candidates: d.candidates,
            retries: d.retries,
            generation,
        }
    }

    /// The JSON response body.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("fingerprint", Json::u64_str(self.fingerprint)),
            ("fallback", Json::Bool(self.fallback)),
            ("reason", Json::str(self.reason.clone())),
            ("planning_us", Json::num(self.planning_us)),
            ("latency", Json::num(self.latency)),
            ("selected_step", Json::num(self.selected_step as f64)),
            ("candidates", Json::num(self.candidates as f64)),
            ("retries", Json::num(self.retries as f64)),
            ("generation", Json::u64_str(self.generation)),
        ])
    }

    /// Parse a response body (the client half of [`PlanReply::to_json`]).
    pub fn from_json(body: &Json) -> Result<Self> {
        let missing = |k: &str| FossError::Serde(format!("plan reply lacks `{k}`"));
        Ok(Self {
            fingerprint: body
                .get("fingerprint")
                .and_then(Json::as_u64_str)
                .ok_or_else(|| missing("fingerprint"))?,
            fallback: body
                .get("fallback")
                .and_then(Json::as_bool)
                .ok_or_else(|| missing("fallback"))?,
            reason: body
                .get("reason")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("reason"))?
                .to_string(),
            planning_us: body
                .get("planning_us")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("planning_us"))?,
            latency: body
                .get("latency")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("latency"))?,
            selected_step: body
                .get("selected_step")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("selected_step"))?,
            candidates: body
                .get("candidates")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("candidates"))?,
            retries: body
                .get("retries")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("retries"))?,
            generation: body
                .get("generation")
                .and_then(Json::as_u64_str)
                .ok_or_else(|| missing("generation"))?,
        })
    }
}

/// `GET /metrics` body: the full [`MetricsSnapshot`] as flat JSON.
pub fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    let count = |v: u64| Json::num(v as f64);
    Json::obj(vec![
        ("submitted", count(m.submitted)),
        ("errors", count(m.errors)),
        ("fallbacks", count(m.fallbacks)),
        ("planning_timeouts", count(m.planning_timeouts)),
        ("low_confidence", count(m.low_confidence)),
        ("exec_timeouts", count(m.exec_timeouts)),
        ("exec_errors", count(m.exec_errors)),
        ("breaker_open_served", count(m.breaker_open_served)),
        ("deadline_exceeded", count(m.deadline_exceeded)),
        ("shed_low", count(m.shed_low)),
        ("shed_high", count(m.shed_high)),
        ("sheds", count(m.sheds)),
        ("retries", count(m.retries)),
        ("breaker_state", Json::str(m.breaker_state.label())),
        ("breaker_transitions", count(m.breaker_transitions)),
        ("breaker_times_opened", count(m.breaker_times_opened)),
        ("faults_injected", count(m.faults_injected)),
        ("fallback_rate", Json::num(m.fallback_rate)),
        ("latency_p50", Json::num(m.latency_p50)),
        ("latency_p95", Json::num(m.latency_p95)),
        ("latency_p99", Json::num(m.latency_p99)),
        ("planning_p50_us", Json::num(m.planning_p50_us)),
        ("planning_p99_us", Json::num(m.planning_p99_us)),
        (
            "in_flight_high_water",
            Json::num(m.in_flight_high_water as f64),
        ),
        ("cache_hit_rate", Json::num(m.cache_hit_rate)),
        ("tier_compiles", count(m.tier_compiles)),
        ("tier_hits", count(m.tier_hits)),
        ("tier_fallbacks", count(m.tier_fallbacks)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One value of every `FossError` variant. Adding a variant breaks this
    /// list (non-exhaustive match below), which is the point: the wire
    /// mapping must be extended in the same change.
    fn every_variant() -> Vec<FossError> {
        vec![
            FossError::UnknownName("t".into()),
            FossError::InvalidQuery("q".into()),
            FossError::InvalidPlan("p".into()),
            FossError::InvalidAction("a".into()),
            FossError::Timeout {
                spent: 2,
                budget: 1,
            },
            FossError::Numeric("n".into()),
            FossError::Serde("s".into()),
            FossError::Transient("t".into()),
            FossError::Overloaded {
                low_priority: true,
                waited_us: 5,
            },
        ]
    }

    #[test]
    fn error_mapping_is_total_and_documented() {
        for e in every_variant() {
            // Exhaustive match: a new variant fails to compile until both
            // this test and `WireError::from_error` handle it.
            let expected = match &e {
                FossError::UnknownName(_) => (404, "unknown_name", false),
                FossError::InvalidQuery(_) => (400, "invalid_query", false),
                FossError::InvalidPlan(_) => (422, "invalid_plan", false),
                FossError::InvalidAction(_) => (422, "invalid_action", false),
                FossError::Timeout { .. } => (504, "timeout", true),
                FossError::Numeric(_) => (500, "numeric", false),
                FossError::Serde(_) => (400, "malformed", false),
                FossError::Transient(_) => (503, "transient", true),
                FossError::Overloaded { .. } => (429, "overloaded", true),
            };
            let w = WireError::from_error(&e);
            assert_eq!((w.status, w.code, w.retryable), expected, "for {e:?}");
            assert_eq!(w.message, e.to_string());
            // Every status is a legal HTTP error class.
            assert!((400..=599).contains(&w.status));
            let body = w.body();
            assert_eq!(body.get("code").and_then(Json::as_str), Some(w.code));
            assert_eq!(
                body.get("retryable").and_then(Json::as_bool),
                Some(w.retryable)
            );
        }
    }

    #[test]
    fn error_codes_are_distinct_enough_to_dispatch_on() {
        // 4xx/5xx classes must separate client mistakes from shed/transient
        // conditions: only retryable errors may share the 429/503/504 family.
        for e in every_variant() {
            let w = WireError::from_error(&e);
            if w.retryable {
                assert!(matches!(w.status, 429 | 503 | 504), "{e:?}");
            }
        }
    }

    #[test]
    fn plan_request_round_trips_through_json() {
        let full = PlanRequest {
            query: 7,
            priority: Some(Priority::Low),
            deadline_us: Some(1500.0),
            planning_budget_us: Some(200.0),
        };
        assert_eq!(
            PlanRequest::from_json(&Json::parse(&full.to_json().to_string()).unwrap()).unwrap(),
            full
        );
        let minimal = PlanRequest::for_index(0);
        assert_eq!(
            PlanRequest::from_json(&Json::parse(r#"{"query": 0}"#).unwrap()).unwrap(),
            minimal
        );
    }

    #[test]
    fn plan_request_rejects_bad_fields() {
        for bad in [
            r#"{}"#,
            r#"{"query": -1}"#,
            r#"{"query": 1.5}"#,
            r#"{"query": 0, "priority": "urgent"}"#,
            r#"{"query": 0, "deadline_us": "soon"}"#,
        ] {
            let parsed = Json::parse(bad).unwrap();
            assert!(PlanRequest::from_json(&parsed).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn plan_reply_round_trips_with_u64_fidelity() {
        let reply = PlanReply {
            fingerprint: u64::MAX - 3,
            fallback: true,
            reason: "planning_timeout".into(),
            planning_us: 123.4,
            latency: 5678.9,
            selected_step: 2,
            candidates: 8,
            retries: 1,
            generation: 4,
        };
        let over_the_wire = Json::parse(&reply.to_json().to_string()).unwrap();
        assert_eq!(PlanReply::from_json(&over_the_wire).unwrap(), reply);
    }

    #[test]
    fn every_fallback_reason_has_a_stable_string() {
        let reasons = [
            FallbackReason::None,
            FallbackReason::PlanningTimeout,
            FallbackReason::LowConfidence,
            FallbackReason::ExecTimeout,
            FallbackReason::ExecError,
            FallbackReason::BreakerOpen,
            FallbackReason::DeadlineExceeded,
        ];
        let strings: Vec<_> = reasons.iter().map(|r| reason_str(*r)).collect();
        let mut dedup = strings.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), reasons.len(), "reason strings must be unique");
    }

    #[test]
    fn priority_spellings_round_trip() {
        for p in [Priority::High, Priority::Low] {
            assert_eq!(parse_priority(priority_str(p)).unwrap(), p);
        }
        assert!(parse_priority("medium").is_err());
    }
}
