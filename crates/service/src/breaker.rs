//! Circuit breaker over the learned planning path.
//!
//! The per-query fallbacks in [`crate::PlanDoctor`] (budget, confidence,
//! execution timeout) protect against *independent* bad decisions. When
//! failures are **correlated** — a bad snapshot publish, a stalled
//! executor, sustained overload — paying the learned-planning cost per
//! query just to fall back every time is waste, and a poisoned snapshot
//! keeps hurting until the next publish. The breaker closes that gap with
//! the classic three-state machine:
//!
//! * **Closed** (healthy) — learned-path outcomes are recorded into a
//!   sliding window; once the window holds at least
//!   [`BreakerConfig::min_samples`] outcomes and the failure fraction
//!   reaches [`BreakerConfig::failure_threshold`], the breaker *opens*.
//! * **Open** (degraded) — requests bypass learned planning entirely and
//!   are served the expert DP plan directly
//!   ([`crate::FallbackReason::BreakerOpen`]): the safety net at zero
//!   learned-path cost. After [`BreakerConfig::cooldown`] bypassed
//!   requests the breaker moves to half-open. Cooldown is counted in
//!   requests, not wall time, so chaos tests replay bit-identically.
//! * **HalfOpen** (probing) — requests run the full learned path again as
//!   *probes*. [`BreakerConfig::probes`] consecutive successes close the
//!   breaker; any probe failure reopens it (and restarts the cooldown).
//!
//! The window is keyed to the snapshot generation: a publish resets the
//! breaker to closed, because a new snapshot is a new failure domain (the
//! usual reason the old one was failing).

use std::collections::VecDeque;

use foss_common::sync::atomic::{AtomicU64, Ordering};
use foss_common::sync::Mutex;

/// Breaker thresholds (all counted in requests — deterministic under a
/// replayed submission sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding-window length of learned-path outcomes per generation.
    pub window: usize,
    /// Minimum outcomes in the window before the failure rate is judged.
    pub min_samples: usize,
    /// Failure fraction (in `[0, 1]`) at which the breaker opens.
    pub failure_threshold: f64,
    /// Bypassed requests served while open before probing starts.
    pub cooldown: usize,
    /// Consecutive successful probes required to close again.
    pub probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 32,
            min_samples: 8,
            failure_threshold: 0.5,
            cooldown: 8,
            probes: 3,
        }
    }
}

/// Where the breaker's state machine currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: learned planning runs normally.
    Closed,
    /// Degraded: learned planning is bypassed, expert plans are served.
    Open,
    /// Probing: learned planning runs again, under scrutiny.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case label for metrics lines.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What the breaker decided for one admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Run the learned path normally (breaker closed).
    Normal,
    /// Run the learned path as a recovery probe (breaker half-open); the
    /// outcome must be reported with `probe = true`.
    Probe,
    /// Skip the learned path and serve the expert plan directly.
    Bypass,
}

/// Counters + state exported into [`crate::MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerView {
    /// Current state.
    pub state: BreakerState,
    /// Total state transitions (open→half-open, half-open→closed, …).
    pub transitions: u64,
    /// Times the breaker has opened.
    pub times_opened: u64,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Sliding window of learned-path outcomes (`true` = success).
    window: VecDeque<bool>,
    failures: usize,
    /// Snapshot generation the window describes.
    generation: u64,
    /// Requests bypassed since the breaker opened.
    bypassed: usize,
    /// Consecutive successful probes while half-open.
    probe_ok: usize,
}

/// The three-state breaker (see module docs). All methods take `&self`;
/// one instance is shared by every submitting thread.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
    transitions: AtomicU64,
    times_opened: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    ///
    /// # Panics
    /// If `window`, `min_samples`, `cooldown` or `probes` is zero, or the
    /// failure threshold is outside `(0, 1]` — such configs would wedge
    /// the state machine open or closed forever.
    pub fn new(cfg: BreakerConfig) -> Self {
        assert!(cfg.window > 0, "breaker window must be positive");
        assert!(
            cfg.min_samples > 0 && cfg.min_samples <= cfg.window,
            "breaker min_samples must be in 1..=window"
        );
        assert!(
            cfg.failure_threshold > 0.0 && cfg.failure_threshold <= 1.0,
            "breaker failure_threshold must be in (0, 1]"
        );
        assert!(cfg.cooldown > 0, "breaker cooldown must be positive");
        assert!(cfg.probes > 0, "breaker probes must be positive");
        Self {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                window: VecDeque::with_capacity(cfg.window),
                failures: 0,
                generation: 0,
                bypassed: 0,
                probe_ok: 0,
            }),
            transitions: AtomicU64::new(0),
            times_opened: AtomicU64::new(0),
        }
    }

    /// The thresholds in effect.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    fn transition(&self, inner: &mut Inner, to: BreakerState) {
        if inner.state == to {
            return;
        }
        inner.state = to;
        self.transitions.fetch_add(1, Ordering::Relaxed);
        if to == BreakerState::Open {
            self.times_opened.fetch_add(1, Ordering::Relaxed);
            inner.bypassed = 0;
        }
        if to == BreakerState::HalfOpen {
            inner.probe_ok = 0;
        }
        if to == BreakerState::Closed {
            inner.window.clear();
            inner.failures = 0;
        }
    }

    /// Forget everything if the served snapshot generation moved: a new
    /// snapshot is a new failure domain and starts trusted (closed).
    fn sync_generation(&self, inner: &mut Inner, generation: u64) {
        if inner.generation != generation {
            inner.generation = generation;
            self.transition(inner, BreakerState::Closed);
            // `transition` is a no-op when already closed, but the stale
            // window must go either way.
            inner.window.clear();
            inner.failures = 0;
            inner.probe_ok = 0;
        }
    }

    /// Route one admitted request: normal, probe, or bypass.
    pub fn admit(&self, generation: u64) -> BreakerDecision {
        let mut inner = self.inner.lock();
        self.sync_generation(&mut inner, generation);
        match inner.state {
            BreakerState::Closed => BreakerDecision::Normal,
            BreakerState::HalfOpen => BreakerDecision::Probe,
            BreakerState::Open => {
                inner.bypassed += 1;
                if inner.bypassed >= self.cfg.cooldown {
                    self.transition(&mut inner, BreakerState::HalfOpen);
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Bypass
                }
            }
        }
    }

    /// Report a learned-path outcome for a request admitted at
    /// `generation`. `probe` must be `true` iff [`CircuitBreaker::admit`]
    /// answered [`BreakerDecision::Probe`].
    pub fn on_outcome(&self, generation: u64, success: bool, probe: bool) {
        let mut inner = self.inner.lock();
        self.sync_generation(&mut inner, generation);
        if probe {
            if inner.state != BreakerState::HalfOpen {
                // A probe outcome raced a generation reset (or another
                // probe already re-opened/closed the breaker): the state
                // it was probing no longer exists.
                return;
            }
            if success {
                inner.probe_ok += 1;
                if inner.probe_ok >= self.cfg.probes {
                    self.transition(&mut inner, BreakerState::Closed);
                }
            } else {
                self.transition(&mut inner, BreakerState::Open);
            }
            return;
        }
        if inner.state != BreakerState::Closed {
            // Late outcome from a request admitted before the breaker
            // opened; the window it belonged to is gone.
            return;
        }
        inner.window.push_back(success);
        if !success {
            inner.failures += 1;
        }
        if inner.window.len() > self.cfg.window && inner.window.pop_front() == Some(false) {
            inner.failures -= 1;
        }
        if inner.window.len() >= self.cfg.min_samples {
            let rate = inner.failures as f64 / inner.window.len() as f64;
            if rate >= self.cfg.failure_threshold {
                self.transition(&mut inner, BreakerState::Open);
            }
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// State + lifetime transition counters, for the metrics snapshot.
    pub fn view(&self) -> BreakerView {
        BreakerView {
            state: self.state(),
            transitions: self.transitions.load(Ordering::Relaxed),
            times_opened: self.times_opened.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown: 3,
            probes: 2,
        })
    }

    #[test]
    #[should_panic(expected = "min_samples")]
    fn zero_min_samples_rejected() {
        let _ = CircuitBreaker::new(BreakerConfig {
            min_samples: 0,
            ..BreakerConfig::default()
        });
    }

    #[test]
    fn stays_closed_below_min_samples() {
        let b = tiny();
        for _ in 0..3 {
            assert_eq!(b.admit(0), BreakerDecision::Normal);
            b.on_outcome(0, false, false);
        }
        assert_eq!(b.state(), BreakerState::Closed, "3 < min_samples 4");
    }

    #[test]
    fn opens_within_min_samples_failures_and_recovers_via_probes() {
        let b = tiny();
        // K = min_samples consecutive failures open the breaker.
        for _ in 0..4 {
            assert_eq!(b.admit(0), BreakerDecision::Normal);
            b.on_outcome(0, false, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.view().times_opened, 1);
        // Cooldown: 2 bypasses, then the 3rd admit starts probing.
        assert_eq!(b.admit(0), BreakerDecision::Bypass);
        assert_eq!(b.admit(0), BreakerDecision::Bypass);
        assert_eq!(b.admit(0), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // M = probes successful probes close it.
        b.on_outcome(0, true, true);
        assert_eq!(b.admit(0), BreakerDecision::Probe);
        b.on_outcome(0, true, true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(0), BreakerDecision::Normal);
        // closed→open, open→half-open, half-open→closed.
        assert_eq!(b.view().transitions, 3);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = tiny();
        for _ in 0..4 {
            b.admit(0);
            b.on_outcome(0, false, false);
        }
        for _ in 0..3 {
            b.admit(0); // burn the cooldown; last admit is the probe
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_outcome(0, false, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.view().times_opened, 2);
        // A fresh cooldown applies before the next probe round.
        assert_eq!(b.admit(0), BreakerDecision::Bypass);
    }

    #[test]
    fn mixed_window_respects_threshold() {
        let b = tiny();
        // 5 successes then 3 failures: rate 3/8 < 0.5 → stays closed.
        // (Successes lead so no 4-sample prefix trips the threshold.)
        for i in 0..8 {
            b.admit(0);
            b.on_outcome(0, i < 5, false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // One more failure slides a success out of the full window: 4
        // failures in the last 8 reaches the 0.5 threshold.
        b.admit(0);
        b.on_outcome(0, false, false);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn publish_resets_the_breaker() {
        let b = tiny();
        for _ in 0..4 {
            b.admit(0);
            b.on_outcome(0, false, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Generation bump (a publish): the new snapshot starts trusted.
        assert_eq!(b.admit(1), BreakerDecision::Normal);
        assert_eq!(b.state(), BreakerState::Closed);
        // …and needs min_samples fresh failures to open again.
        for _ in 0..3 {
            b.admit(1);
            b.on_outcome(1, false, false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn late_outcomes_from_before_opening_are_ignored() {
        let b = tiny();
        for _ in 0..4 {
            b.admit(0);
            b.on_outcome(0, false, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // A straggler success from a pre-open request must not perturb the
        // open state or the (cleared) window.
        b.on_outcome(0, true, false);
        assert_eq!(b.state(), BreakerState::Open);
    }
}
