//! The service's metrics registry.
//!
//! Counters are lock-free atomics bumped on the submit path; latency and
//! planning-time samples go into mutex-guarded **bounded** reservoirs that
//! are only locked for a push (the percentile math runs at snapshot time,
//! off the hot path). Percentiles share their definition with the
//! experiment harness via [`foss_common::percentile`].

use foss_common::sync::atomic::{AtomicU64, Ordering};
use foss_common::sync::Mutex;
use foss_executor::CacheStats;

use crate::breaker::{BreakerState, BreakerView};
use crate::tier::TierStats;
use crate::FallbackReason;

/// Capacity of each sample reservoir. Percentiles are computed over a
/// sliding window of the most recent [`RESERVOIR_CAP`] samples, so a
/// long-lived service holds O(1) memory and `metrics()` costs O(cap log
/// cap) regardless of uptime.
const RESERVOIR_CAP: usize = 4096;

/// Fixed-capacity sliding window (ring buffer once full).
#[derive(Debug, Default)]
struct Reservoir {
    samples: Vec<f64>,
    /// Oldest slot, overwritten next once the window is full.
    next: usize,
}

impl Reservoir {
    fn push(&mut self, value: f64) {
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(value);
        } else {
            self.samples[self.next] = value;
            self.next = (self.next + 1) % RESERVOIR_CAP;
        }
    }
}

/// One completed query's contribution to the registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Wall-clock planning time (µs).
    pub planning_us: f64,
    /// Execution latency of the plan that was run (work units ≡ µs).
    pub latency: f64,
    /// Why (if at all) the expert plan was served instead of the doctored
    /// plan.
    pub reason: FallbackReason,
}

/// Accumulates [`Outcome`]s; shared by all worker threads.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    submitted: AtomicU64,
    errors: AtomicU64,
    fallbacks: AtomicU64,
    planning_timeouts: AtomicU64,
    low_confidence: AtomicU64,
    exec_timeouts: AtomicU64,
    exec_errors: AtomicU64,
    breaker_open_served: AtomicU64,
    deadline_exceeded: AtomicU64,
    shed_low: AtomicU64,
    shed_high: AtomicU64,
    retries: AtomicU64,
    latencies: Mutex<Reservoir>,
    planning_us: Mutex<Reservoir>,
}

impl MetricsRegistry {
    /// Fold one completed query into the registry.
    pub fn record(&self, outcome: &Outcome) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        match outcome.reason {
            FallbackReason::None => {}
            FallbackReason::PlanningTimeout => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.planning_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            FallbackReason::LowConfidence => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.low_confidence.fetch_add(1, Ordering::Relaxed);
            }
            FallbackReason::ExecTimeout => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.exec_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            FallbackReason::ExecError => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.exec_errors.fetch_add(1, Ordering::Relaxed);
            }
            FallbackReason::BreakerOpen => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.breaker_open_served.fetch_add(1, Ordering::Relaxed);
            }
            FallbackReason::DeadlineExceeded => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.latencies.lock().push(outcome.latency);
        self.planning_us.lock().push(outcome.planning_us);
    }

    /// Count an admitted query that failed with an error (no [`Outcome`]
    /// exists for it). Keeps the registry an honest account of admitted
    /// traffic: `submitted` counts completions only, `errors` the rest.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request shed by admission control before any work ran.
    /// Sheds are neither completions (`submitted`) nor `errors`: they are
    /// the service protecting itself, tracked per priority class.
    pub fn record_shed(&self, low_priority: bool) {
        if low_priority {
            self.shed_low.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shed_high.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one retry of a transient executor failure.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting (counters are read
    /// individually; percentiles come from the reservoirs — the most
    /// recent 4096 samples — at call time). `cache`,
    /// `in_flight_high_water`, `breaker`, `faults_injected` and `tier`
    /// are supplied by the owner, which holds the executor, the admission
    /// gate, the circuit breaker, the (optional) fault plan and the tier
    /// engine.
    pub fn snapshot(
        &self,
        cache: CacheStats,
        in_flight_high_water: usize,
        breaker: BreakerView,
        faults_injected: u64,
        tier: TierStats,
    ) -> MetricsSnapshot {
        let latencies = self.latencies.lock().samples.clone();
        let planning = self.planning_us.lock().samples.clone();
        let pct = |s: &[f64], p: f64| foss_common::percentile(s, p).unwrap_or(0.0);
        let submitted = self.submitted.load(Ordering::Relaxed);
        let fallbacks = self.fallbacks.load(Ordering::Relaxed);
        let shed_low = self.shed_low.load(Ordering::Relaxed);
        let shed_high = self.shed_high.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted,
            errors: self.errors.load(Ordering::Relaxed),
            fallbacks,
            planning_timeouts: self.planning_timeouts.load(Ordering::Relaxed),
            low_confidence: self.low_confidence.load(Ordering::Relaxed),
            exec_timeouts: self.exec_timeouts.load(Ordering::Relaxed),
            exec_errors: self.exec_errors.load(Ordering::Relaxed),
            breaker_open_served: self.breaker_open_served.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            shed_low,
            shed_high,
            sheds: shed_low + shed_high,
            retries: self.retries.load(Ordering::Relaxed),
            breaker_state: breaker.state,
            breaker_transitions: breaker.transitions,
            breaker_times_opened: breaker.times_opened,
            faults_injected,
            fallback_rate: if submitted == 0 {
                0.0
            } else {
                fallbacks as f64 / submitted as f64
            },
            latency_p50: pct(&latencies, 50.0),
            latency_p95: pct(&latencies, 95.0),
            latency_p99: pct(&latencies, 99.0),
            planning_p50_us: pct(&planning, 50.0),
            planning_p99_us: pct(&planning, 99.0),
            in_flight_high_water,
            cache_hit_rate: cache.hit_rate(),
            cache,
            tier_compiles: tier.compiles,
            tier_hits: tier.hits,
            tier_fallbacks: tier.fallbacks,
        }
    }
}

/// Point-in-time view of the registry (plus cache + admission gauges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Queries completed.
    pub submitted: u64,
    /// Admitted queries that failed with an error (not in `submitted`).
    pub errors: u64,
    /// Queries answered with the expert plan instead of the doctored one.
    pub fallbacks: u64,
    /// …because planning exceeded its budget.
    pub planning_timeouts: u64,
    /// …because the AAM's confidence was below the configured floor.
    pub low_confidence: u64,
    /// …because the doctored plan blew its execution budget.
    pub exec_timeouts: u64,
    /// …because the doctored plan kept failing transiently after retries.
    pub exec_errors: u64,
    /// …because the circuit breaker was open (expert served directly).
    pub breaker_open_served: u64,
    /// …because the request's deadline expired before the doctored plan
    /// could be attempted.
    pub deadline_exceeded: u64,
    /// Low-priority requests shed by admission control.
    pub shed_low: u64,
    /// High-priority requests shed by admission control.
    pub shed_high: u64,
    /// `shed_low + shed_high`.
    pub sheds: u64,
    /// Transient-failure retries performed on the doctored path.
    pub retries: u64,
    /// Circuit-breaker state at snapshot time.
    pub breaker_state: BreakerState,
    /// Lifetime breaker state transitions.
    pub breaker_transitions: u64,
    /// Times the breaker has opened.
    pub breaker_times_opened: u64,
    /// Faults the attached [`foss_common::FaultPlan`] injected (0 when no
    /// plan is attached).
    pub faults_injected: u64,
    /// `fallbacks / submitted` (0 when idle).
    pub fallback_rate: f64,
    /// Median execution latency (work units ≡ µs).
    pub latency_p50: f64,
    /// 95th-percentile execution latency.
    pub latency_p95: f64,
    /// 99th-percentile execution latency.
    pub latency_p99: f64,
    /// Median planning time (µs).
    pub planning_p50_us: f64,
    /// 99th-percentile planning time (µs).
    pub planning_p99_us: f64,
    /// Most queries ever in flight simultaneously.
    pub in_flight_high_water: usize,
    /// Shared executor cache counters.
    pub cache: CacheStats,
    /// `cache.hit_rate()` at snapshot time.
    pub cache_hit_rate: f64,
    /// Plan shapes compiled to tier-2 fused pipelines.
    pub tier_compiles: u64,
    /// Executions served by a fused pipeline.
    pub tier_hits: u64,
    /// Hot-but-unsupported shapes that fell back to the interpreter.
    pub tier_fallbacks: u64,
}

impl MetricsSnapshot {
    /// One-line operator summary (the `plan-doctor` binary prints this and
    /// CI asserts on it).
    pub fn summary_line(&self) -> String {
        format!(
            "plan-doctor metrics: submitted={} p50={:.0} p95={:.0} p99={:.0} \
             fallback_rate={:.3} cache_hit_rate={:.3} inflight_hwm={} errors={} \
             shed={}/{} retries={} breaker={} opened={} faults={} \
             tier={}/{}/{}",
            self.submitted,
            self.latency_p50,
            self.latency_p95,
            self.latency_p99,
            self.fallback_rate,
            self.cache_hit_rate,
            self.in_flight_high_water,
            self.errors,
            self.shed_low,
            self.shed_high,
            self.retries,
            self.breaker_state.label(),
            self.breaker_times_opened,
            self.faults_injected,
            self.tier_hits,
            self.tier_compiles,
            self.tier_fallbacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(latency: f64, reason: FallbackReason) -> Outcome {
        Outcome {
            planning_us: 10.0,
            latency,
            reason,
        }
    }

    /// The owner-supplied breaker view for registries under test.
    fn idle_breaker() -> BreakerView {
        BreakerView {
            state: BreakerState::Closed,
            transitions: 0,
            times_opened: 0,
        }
    }

    #[test]
    fn empty_registry_reports_zeros() {
        let reg = MetricsRegistry::default();
        let snap = reg.snapshot(
            CacheStats::default(),
            0,
            idle_breaker(),
            0,
            TierStats::default(),
        );
        assert_eq!(snap.submitted, 0);
        assert_eq!(snap.fallback_rate, 0.0);
        assert_eq!(snap.latency_p99, 0.0, "empty percentiles must not panic");
        assert!(snap.summary_line().contains("submitted=0"));
    }

    #[test]
    fn counters_and_percentiles_accumulate() {
        let reg = MetricsRegistry::default();
        for i in 0..100 {
            let reason = if i % 10 == 0 {
                FallbackReason::PlanningTimeout
            } else {
                FallbackReason::None
            };
            reg.record(&outcome(i as f64, reason));
        }
        let snap = reg.snapshot(
            CacheStats {
                executions: 25,
                hits: 75,
                evictions: 0,
                entries: 25,
            },
            7,
            idle_breaker(),
            0,
            TierStats::default(),
        );
        assert_eq!(snap.submitted, 100);
        assert_eq!(snap.fallbacks, 10);
        assert_eq!(snap.planning_timeouts, 10);
        assert!((snap.fallback_rate - 0.1).abs() < 1e-12);
        assert!(snap.latency_p50 <= snap.latency_p95);
        assert!(snap.latency_p95 <= snap.latency_p99);
        assert!((snap.latency_p50 - 49.5).abs() < 1e-9);
        assert!((snap.cache_hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(snap.in_flight_high_water, 7);
    }

    #[test]
    fn errors_are_counted_separately_from_completions() {
        let reg = MetricsRegistry::default();
        reg.record(&outcome(5.0, FallbackReason::None));
        reg.record_error();
        reg.record_error();
        let snap = reg.snapshot(
            CacheStats::default(),
            1,
            idle_breaker(),
            0,
            TierStats::default(),
        );
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.errors, 2);
        assert!(snap.summary_line().contains("errors=2"));
    }

    #[test]
    fn robustness_counters_flow_into_snapshot_and_summary() {
        let reg = MetricsRegistry::default();
        reg.record(&outcome(1.0, FallbackReason::BreakerOpen));
        reg.record(&outcome(2.0, FallbackReason::ExecError));
        reg.record(&outcome(3.0, FallbackReason::DeadlineExceeded));
        reg.record_shed(true);
        reg.record_shed(true);
        reg.record_shed(false);
        reg.record_retry();
        let view = BreakerView {
            state: BreakerState::Open,
            transitions: 3,
            times_opened: 2,
        };
        let snap = reg.snapshot(CacheStats::default(), 1, view, 5, TierStats::default());
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.fallbacks, 3, "every degraded reason is a fallback");
        assert_eq!(
            (
                snap.breaker_open_served,
                snap.exec_errors,
                snap.deadline_exceeded
            ),
            (1, 1, 1)
        );
        assert_eq!((snap.shed_low, snap.shed_high, snap.sheds), (2, 1, 3));
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.breaker_state, BreakerState::Open);
        assert_eq!(snap.breaker_transitions, 3);
        assert_eq!(snap.breaker_times_opened, 2);
        assert_eq!(snap.faults_injected, 5);
        let line = snap.summary_line();
        for needle in [
            "shed=2/1",
            "retries=1",
            "breaker=open",
            "opened=2",
            "faults=5",
        ] {
            assert!(line.contains(needle), "summary `{line}` lacks `{needle}`");
        }
    }

    #[test]
    fn reservoirs_stay_bounded_and_track_the_recent_window() {
        let reg = MetricsRegistry::default();
        // Fill well past capacity: old samples (latency 0) must age out.
        for _ in 0..RESERVOIR_CAP + 100 {
            reg.record(&outcome(0.0, FallbackReason::None));
        }
        for _ in 0..RESERVOIR_CAP {
            reg.record(&outcome(100.0, FallbackReason::None));
        }
        assert_eq!(reg.latencies.lock().samples.len(), RESERVOIR_CAP);
        let snap = reg.snapshot(
            CacheStats::default(),
            1,
            idle_breaker(),
            0,
            TierStats::default(),
        );
        assert_eq!(snap.submitted, (2 * RESERVOIR_CAP + 100) as u64);
        assert_eq!(
            snap.latency_p50, 100.0,
            "window must contain only the most recent samples"
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = MetricsRegistry::default();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let reg = &reg;
                scope.spawn(move || {
                    for i in 0..50 {
                        let reason = if t == 0 {
                            FallbackReason::ExecTimeout
                        } else {
                            FallbackReason::None
                        };
                        reg.record(&outcome((t * 50 + i) as f64, reason));
                    }
                });
            }
        });
        let snap = reg.snapshot(
            CacheStats::default(),
            4,
            idle_breaker(),
            0,
            TierStats::default(),
        );
        assert_eq!(snap.submitted, 200);
        assert_eq!(snap.exec_timeouts, 50);
        assert_eq!(snap.fallbacks, 50);
    }
}
