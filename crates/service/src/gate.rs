//! Admission control: a bounded pool of in-flight permits.
//!
//! The gate is the service's back-pressure mechanism — at most
//! `max_in_flight` queries hold a permit at once; further `submit` calls
//! block (FIFO-ish under the condvar) until a permit frees. It also tracks
//! the in-flight high-water mark, the serving metric that tells an operator
//! how close the deployment runs to its admission ceiling.

use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct GateState {
    in_flight: usize,
    high_water: usize,
}

/// Bounded in-flight permit pool (see module docs).
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    freed: Condvar,
    capacity: usize,
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` concurrent queries.
    ///
    /// # Panics
    /// If `capacity == 0` — such a gate would deadlock the first caller.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission capacity must be positive");
        Self {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            capacity,
        }
    }

    /// Block until a permit is free, then take it. The permit is released
    /// when the returned guard drops (panic-safe: an unwinding worker still
    /// frees its slot).
    pub fn acquire(&self) -> Permit<'_> {
        let mut state = self.state.lock().expect("gate lock poisoned");
        while state.in_flight == self.capacity {
            state = self.freed.wait(state).expect("gate lock poisoned");
        }
        state.in_flight += 1;
        state.high_water = state.high_water.max(state.in_flight);
        Permit { gate: self }
    }

    /// Queries currently holding a permit.
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("gate lock poisoned").in_flight
    }

    /// Most permits ever held simultaneously.
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("gate lock poisoned").high_water
    }

    /// The admission ceiling.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("gate lock poisoned");
        state.in_flight -= 1;
        drop(state);
        self.freed.notify_one();
    }
}

/// RAII guard for one admitted query.
#[must_use = "dropping the permit immediately releases the admission slot"]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = AdmissionGate::new(0);
    }

    #[test]
    fn permits_track_in_flight_and_high_water() {
        let gate = AdmissionGate::new(3);
        let a = gate.acquire();
        let b = gate.acquire();
        assert_eq!(gate.in_flight(), 2);
        assert_eq!(gate.high_water(), 2);
        drop(a);
        assert_eq!(gate.in_flight(), 1);
        let _c = gate.acquire();
        assert_eq!(gate.in_flight(), 2);
        // High water never decreases.
        assert_eq!(gate.high_water(), 2);
        drop(b);
    }

    #[test]
    fn gate_bounds_concurrency_across_threads() {
        let gate = AdmissionGate::new(2);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let _permit = gate.acquire();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate leaked permits");
        assert!(gate.high_water() <= 2);
        assert_eq!(gate.in_flight(), 0, "all permits returned");
    }
}
