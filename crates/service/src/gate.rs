//! Admission control: a bounded pool of in-flight permits.
//!
//! The gate is the service's back-pressure mechanism — at most
//! `max_in_flight` queries hold a permit at once; further `submit` calls
//! wait (FIFO-ish under the condvar) until a permit frees. Three entry
//! points cover the serving policies built on top:
//!
//! * [`AdmissionGate::acquire`] — wait without bound (the original
//!   behaviour; callers that can afford to queue forever).
//! * [`AdmissionGate::acquire_timeout`] — wait at most a duration, then
//!   give up (`None`). This is the load-shedding primitive: a saturated
//!   service turns callers away instead of growing an unbounded queue.
//! * [`AdmissionGate::try_acquire`] — take a permit only if one is free
//!   right now (shed-immediately semantics for low-priority traffic).
//!
//! The gate also tracks the in-flight high-water mark, the serving metric
//! that tells an operator how close the deployment runs to its admission
//! ceiling.

use std::time::{Duration, Instant};

use foss_common::sync::{Condvar, Mutex, MutexGuard};

#[derive(Debug, Default)]
struct GateState {
    in_flight: usize,
    high_water: usize,
}

/// Bounded in-flight permit pool (see module docs).
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    freed: Condvar,
    capacity: usize,
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` concurrent queries.
    ///
    /// # Panics
    /// If `capacity == 0` — such a gate would deadlock the first caller.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission capacity must be positive");
        Self {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            capacity,
        }
    }

    /// Block until a permit is free, then take it. The permit is released
    /// when the returned guard drops (panic-safe: an unwinding worker still
    /// frees its slot).
    pub fn acquire(&self) -> Permit<'_> {
        let mut state = self.state.lock();
        while state.in_flight == self.capacity {
            state = self.freed.wait(state);
        }
        self.admit(state)
    }

    /// Take a permit only if one is free right now (never waits).
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let state = self.state.lock();
        (state.in_flight < self.capacity).then(|| self.admit(state))
    }

    /// Wait up to `timeout` for a permit; `None` if the gate stayed full
    /// for the whole wait (the caller should shed the request).
    pub fn acquire_timeout(&self, timeout: Duration) -> Option<Permit<'_>> {
        // `checked_add` guards Instant overflow on Duration::MAX-style
        // timeouts, which degrade to an unbounded wait.
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            return Some(self.acquire());
        };
        let mut state = self.state.lock();
        while state.in_flight == self.capacity {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (guard, timed_out) = self.freed.wait_timeout(state, remaining);
            state = guard;
            // Shed only when the wait itself reported expiry *and* the gate
            // is still full under the re-acquired lock — a permit freed
            // concurrently with the timeout still admits the caller instead
            // of shedding work a free slot could serve.
            if timed_out && state.in_flight == self.capacity {
                return None;
            }
        }
        Some(self.admit(state))
    }

    fn admit(&self, mut state: MutexGuard<'_, GateState>) -> Permit<'_> {
        state.in_flight += 1;
        state.high_water = state.high_water.max(state.in_flight);
        Permit { gate: self }
    }

    /// Queries currently holding a permit.
    pub fn in_flight(&self) -> usize {
        self.state.lock().in_flight
    }

    /// Most permits ever held simultaneously.
    pub fn high_water(&self) -> usize {
        self.state.lock().high_water
    }

    /// The admission ceiling.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn release(&self) {
        let mut state = self.state.lock();
        state.in_flight -= 1;
        drop(state);
        self.freed.notify_one();
    }
}

/// RAII guard for one admitted query.
#[must_use = "dropping the permit immediately releases the admission slot"]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = AdmissionGate::new(0);
    }

    #[test]
    fn permits_track_in_flight_and_high_water() {
        let gate = AdmissionGate::new(3);
        let a = gate.acquire();
        let b = gate.acquire();
        assert_eq!(gate.in_flight(), 2);
        assert_eq!(gate.high_water(), 2);
        drop(a);
        assert_eq!(gate.in_flight(), 1);
        let _c = gate.acquire();
        assert_eq!(gate.in_flight(), 2);
        // High water never decreases.
        assert_eq!(gate.high_water(), 2);
        drop(b);
    }

    #[test]
    fn try_acquire_never_waits() {
        let gate = AdmissionGate::new(1);
        let held = gate.try_acquire().expect("gate is empty");
        assert!(gate.try_acquire().is_none(), "full gate must refuse");
        drop(held);
        assert!(gate.try_acquire().is_some(), "freed slot is takeable again");
    }

    #[test]
    fn acquire_timeout_sheds_on_saturation_and_admits_when_freed() {
        let gate = AdmissionGate::new(1);
        let held = gate.acquire();
        // Full gate + tiny timeout: the wait gives up.
        let t0 = std::time::Instant::now();
        assert!(gate.acquire_timeout(Duration::from_millis(5)).is_none());
        assert!(
            t0.elapsed() >= Duration::from_millis(5),
            "timeout must actually wait before shedding"
        );
        // A waiter with a generous timeout is admitted once the permit
        // frees mid-wait.
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| gate.acquire_timeout(Duration::from_secs(5)).is_some());
            std::thread::sleep(Duration::from_millis(10));
            drop(held);
            assert!(waiter.join().unwrap(), "freed permit must admit waiter");
        });
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn huge_timeout_degrades_to_unbounded_wait() {
        let gate = AdmissionGate::new(1);
        // Duration::MAX overflows Instant arithmetic; the gate must treat
        // it as "wait forever", not panic or return immediately.
        let p = gate.acquire_timeout(Duration::MAX);
        assert!(p.is_some());
    }

    #[test]
    fn gate_bounds_concurrency_across_threads() {
        let gate = AdmissionGate::new(2);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let _permit = gate.acquire();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate leaked permits");
        assert!(gate.high_water() <= 2);
        assert_eq!(gate.in_flight(), 0, "all permits returned");
    }
}
