//! The comparison systems of the paper's evaluation (§VI-A Comparision):
//! PostgreSQL (the expert itself), Bao, HybridQO, Balsa and Loger.
//!
//! Each baseline is a *functional reimplementation of the idea*, scaled to
//! this repository's substrates (see DESIGN.md for the simplification
//! notes):
//!
//! * [`PostgresBaseline`] — the expert optimizer unmodified.
//! * [`Bao`] — plan-steerer: five operator-disabling hint sets, a learned
//!   value model choosing the arm per query.
//! * [`HybridQo`] — plan-steerer: search over *leading join-order prefixes*
//!   used as hints, value model picks among completed candidates.
//! * [`BalsaLite`] — plan-constructor: learns from scratch, proposing whole
//!   join orders + join methods with no expert anchor (and therefore
//!   catastrophic early plans, as the paper observes).
//! * [`LogerLite`] — plan-constructor that *restricts* rather than dictates:
//!   it searches join orders but lets the expert choose join methods.
//!
//! All learned baselines share [`value_model::PlanValueModel`], a
//! transformer-over-plan regression network predicting log-latency — the
//! same role Bao's TCNN value network plays.

pub mod balsa_lite;
pub mod bao;
pub mod hybridqo;
pub mod loger_lite;
pub(crate) mod support;
pub mod value_model;

use foss_common::Result;
use foss_optimizer::PhysicalPlan;
use foss_query::Query;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;

pub use balsa_lite::BalsaLite;
pub use bao::Bao;
pub use hybridqo::HybridQo;
pub use loger_lite::LogerLite;
pub use value_model::PlanValueModel;

/// The common interface the experiment harness drives.
///
/// Training and planning are deliberately split across mutability:
/// `train_round` takes `&mut self` (it updates models and replay state),
/// while [`LearnedOptimizer::plan`] takes `&self` — planning is a read-only
/// query over whatever the method has learned so far, so evaluation
/// harnesses and serving front ends can plan without exclusive access.
/// Methods that need randomness during planning keep their RNG behind a
/// lock (the draw order is unchanged in serial use, so seeded experiments
/// reproduce exactly).
pub trait LearnedOptimizer {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;

    /// One training round over the workload (may execute plans).
    fn train_round(&mut self, queries: &[Query]) -> Result<()>;

    /// Produce the plan this optimizer would run for `query` (read-only).
    fn plan(&self, query: &Query) -> Result<PhysicalPlan>;
}

/// The expert optimizer as a baseline (PostgreSQL row of Table I).
pub struct PostgresBaseline {
    optimizer: std::sync::Arc<foss_optimizer::TraditionalOptimizer>,
}

impl PostgresBaseline {
    /// Wrap the expert.
    pub fn new(optimizer: std::sync::Arc<foss_optimizer::TraditionalOptimizer>) -> Self {
        Self { optimizer }
    }
}

impl LearnedOptimizer for PostgresBaseline {
    fn name(&self) -> &'static str {
        "PostgreSQL"
    }

    fn train_round(&mut self, _queries: &[Query]) -> Result<()> {
        Ok(()) // nothing to learn
    }

    fn plan(&self, query: &Query) -> Result<PhysicalPlan> {
        self.optimizer.optimize(query)
    }
}

/// Sample a uniformly random *connected* left-deep join order (used by the
/// plan-constructor baselines to explore from scratch).
pub fn random_connected_order(query: &Query, rng: &mut StdRng) -> Vec<usize> {
    let n = query.relation_count();
    let mut order = Vec::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).collect();
    let first = remaining.swap_remove(rng.random_range(0..n));
    order.push(first);
    while !remaining.is_empty() {
        let mut frontier: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&r| !query.edges_between_set(&order, r).is_empty())
            .collect();
        if frontier.is_empty() {
            // Disconnected queries never occur in our workloads, but stay
            // total: append arbitrarily.
            frontier = remaining.clone();
        }
        frontier.shuffle(rng);
        let pick = frontier[0];
        order.push(pick);
        remaining.retain(|&r| r != pick);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_core::envs::tests_support::TestWorld;
    use rand::SeedableRng;

    #[test]
    fn random_order_is_connected_permutation() {
        let world = TestWorld::new(1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let order = random_connected_order(&world.query, &mut rng);
            assert_eq!(order.len(), 3);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            assert!(foss_core::actions::order_is_connected(&world.query, &order));
        }
    }

    #[test]
    fn postgres_baseline_is_stable() {
        let world = TestWorld::new(2);
        let mut pg = PostgresBaseline::new(std::sync::Arc::new(world.opt.clone()));
        pg.train_round(std::slice::from_ref(&world.query)).unwrap();
        let a = pg.plan(&world.query).unwrap();
        let b = pg.plan(&world.query).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(pg.name(), "PostgreSQL");
    }
}
