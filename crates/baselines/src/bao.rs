//! Bao (Marcus et al., SIGMOD 2021), reimplemented on our substrates.
//!
//! Bao steers the traditional optimizer with coarse hint sets — each arm
//! disables some join operators for the whole query — and trains a value
//! network to pick the arm. We keep its default five arms and an
//! ε-greedy exploration schedule in place of Thompson sampling (documented
//! simplification; both drive exploration of under-observed arms).

use std::sync::Arc;

use foss_common::Result;
use foss_core::encoding::{EncodedPlan, PlanEncoder};
use foss_executor::CachingExecutor;
use foss_optimizer::{JoinMethod, PhysicalPlan, TraditionalOptimizer};
use foss_query::Query;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::support::ExecRecorder;
use crate::value_model::PlanValueModel;
use crate::LearnedOptimizer;

/// The five hint sets (arm 0 = the unrestricted expert plan).
pub const ARMS: [&[JoinMethod]; 5] = [
    &[JoinMethod::Hash, JoinMethod::Merge, JoinMethod::NestLoop],
    &[JoinMethod::Hash, JoinMethod::Merge],
    &[JoinMethod::Merge, JoinMethod::NestLoop],
    &[JoinMethod::Hash, JoinMethod::NestLoop],
    &[JoinMethod::Hash],
];

/// The Bao baseline.
pub struct Bao {
    recorder: ExecRecorder,
    model: PlanValueModel,
    samples: Vec<(EncodedPlan, f32)>,
    rng: StdRng,
    epsilon: f64,
}

impl Bao {
    /// Assemble Bao over the expert engine and executor.
    pub fn new(
        optimizer: Arc<TraditionalOptimizer>,
        executor: Arc<CachingExecutor>,
        encoder: PlanEncoder,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = PlanValueModel::new(encoder.table_vocab(), &mut rng);
        Self {
            recorder: ExecRecorder::new(optimizer, executor, encoder),
            model,
            samples: Vec::new(),
            rng,
            epsilon: 0.5,
        }
    }

    /// The candidate plan per arm (arm 0 falls back to the expert plan).
    fn candidates(&self, query: &Query) -> Result<Vec<PhysicalPlan>> {
        let mut out = Vec::with_capacity(ARMS.len());
        for (i, arm) in ARMS.iter().enumerate() {
            let plan = if i == 0 {
                self.recorder.optimizer.optimize(query)?
            } else {
                self.recorder.optimizer.optimize_with_methods(query, arm)?
            };
            out.push(plan);
        }
        Ok(out)
    }
}

impl LearnedOptimizer for Bao {
    fn name(&self) -> &'static str {
        "Bao"
    }

    fn train_round(&mut self, queries: &[Query]) -> Result<()> {
        for query in queries {
            let cands = self.candidates(query)?;
            let encs: Vec<EncodedPlan> = cands
                .iter()
                .map(|p| self.recorder.encode(query, p))
                .collect();
            let pick = if self.rng.random_range(0.0..1.0) < self.epsilon {
                self.rng.random_range(0..cands.len())
            } else {
                let refs: Vec<&EncodedPlan> = encs.iter().collect();
                self.model.best_of(&refs)
            };
            let latency = self.recorder.measure(query, &cands[pick])?;
            self.samples
                .push((encs[pick].clone(), (latency.max(1.0) as f32).ln()));
        }
        for _ in 0..2 {
            self.model.train_epoch(&self.samples, &mut self.rng);
        }
        self.epsilon = (self.epsilon * 0.8).max(0.05);
        Ok(())
    }

    fn plan(&self, query: &Query) -> Result<PhysicalPlan> {
        let cands = self.candidates(query)?;
        let encs: Vec<EncodedPlan> = cands
            .iter()
            .map(|p| self.recorder.encode(query, p))
            .collect();
        let refs: Vec<&EncodedPlan> = encs.iter().collect();
        let best = self.model.best_of(&refs);
        Ok(cands.into_iter().nth(best).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_core::envs::tests_support::TestWorld;

    fn bao(world: &TestWorld) -> Bao {
        let executor = Arc::new(CachingExecutor::new(
            world.db.clone(),
            *world.opt.cost_model(),
        ));
        let encoder = PlanEncoder::new(3, world.db.stats().iter().map(|s| s.row_count).collect());
        Bao::new(Arc::new(world.opt.clone()), executor, encoder, 7)
    }

    #[test]
    fn five_arms_produce_legal_plans() {
        let world = TestWorld::new(1);
        let b = bao(&world);
        let cands = b.candidates(&world.query).unwrap();
        assert_eq!(cands.len(), 5);
        for (i, plan) in cands.iter().enumerate().skip(1) {
            let icp = plan.extract_icp().unwrap();
            for m in icp.methods {
                assert!(ARMS[i].contains(&m), "arm {i} leaked method {m}");
            }
        }
    }

    #[test]
    fn training_and_inference_work() {
        let world = TestWorld::new(2);
        let mut b = bao(&world);
        let queries = vec![world.query.clone()];
        for _ in 0..3 {
            b.train_round(&queries).unwrap();
        }
        let plan = b.plan(&world.query).unwrap();
        assert!(plan.est_cost() > 0.0);
        // Epsilon decayed.
        assert!(b.epsilon < 0.5);
    }
}
