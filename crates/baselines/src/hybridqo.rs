//! HybridQO (Yu et al., VLDB 2022), reimplemented on our substrates.
//!
//! HybridQO runs MCTS over *leading join-order prefixes*, hands the
//! promising prefixes to the traditional optimizer as hints, and picks among
//! the completed candidate plans with a learned model. We keep that
//! hint-generation pipeline with a UCT search over prefix extensions whose
//! rollout reward is the (negated, normalised) estimated cost of the
//! prefix-completed plan.

use std::sync::Arc;

use foss_common::sync::Mutex;
use foss_common::{FxHashMap, Result};
use foss_core::encoding::{EncodedPlan, PlanEncoder};
use foss_executor::CachingExecutor;
use foss_optimizer::{PhysicalPlan, TraditionalOptimizer};
use foss_query::Query;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::support::ExecRecorder;
use crate::value_model::PlanValueModel;
use crate::LearnedOptimizer;

/// How many leading-prefix hints survive the search.
pub const TOP_PREFIXES: usize = 4;
/// UCT iterations per query.
const UCT_ITERS: usize = 48;
/// Maximum prefix length explored.
const MAX_PREFIX: usize = 3;

/// The HybridQO baseline.
pub struct HybridQo {
    recorder: ExecRecorder,
    model: PlanValueModel,
    samples: Vec<(EncodedPlan, f32)>,
    /// Behind a lock because the UCT search draws randomness during
    /// *planning*, which is `&self` (see [`LearnedOptimizer::plan`]).
    rng: Mutex<StdRng>,
    epsilon: f64,
}

impl HybridQo {
    /// Assemble HybridQO.
    pub fn new(
        optimizer: Arc<TraditionalOptimizer>,
        executor: Arc<CachingExecutor>,
        encoder: PlanEncoder,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = PlanValueModel::new(encoder.table_vocab(), &mut rng);
        Self {
            recorder: ExecRecorder::new(optimizer, executor, encoder),
            model,
            samples: Vec::new(),
            rng: Mutex::new(rng),
            epsilon: 0.4,
        }
    }

    /// UCT over prefix space; returns the best-scoring prefixes.
    fn search_prefixes(&self, query: &Query) -> Vec<Vec<usize>> {
        let n = query.relation_count();
        // Node statistics keyed by prefix.
        let mut visits: FxHashMap<Vec<usize>, (f64, u32)> = FxHashMap::default();
        let cost_of = |prefix: &[usize], opt: &TraditionalOptimizer| -> f64 {
            opt.optimize_with_leading(query, prefix)
                .map(|p| p.est_cost())
                .unwrap_or(f64::INFINITY)
        };
        let base = cost_of(&[0], &self.recorder.optimizer).max(1.0);
        for _ in 0..UCT_ITERS {
            // Selection: walk down from the empty prefix by UCT.
            let mut prefix: Vec<usize> = Vec::new();
            while prefix.len() < MAX_PREFIX.min(n) {
                let parent_visits = visits.get(&prefix).map_or(1, |s| s.1).max(1) as f64;
                let mut best: Option<(f64, usize)> = None;
                for r in 0..n {
                    if prefix.contains(&r) {
                        continue;
                    }
                    if !prefix.is_empty() && query.edges_between_set(&prefix, r).is_empty() {
                        continue;
                    }
                    let mut child = prefix.clone();
                    child.push(r);
                    let (reward_sum, count) = visits.get(&child).copied().unwrap_or((0.0, 0));
                    let uct = if count == 0 {
                        f64::INFINITY
                    } else {
                        reward_sum / count as f64 + 1.4 * (parent_visits.ln() / count as f64).sqrt()
                    };
                    if best.as_ref().is_none_or(|(b, _)| uct > *b) {
                        best = Some((uct, r));
                    }
                }
                let Some((_, r)) = best else { break };
                prefix.push(r);
                if self.rng.lock().random_range(0.0..1.0) < 0.3 {
                    break; // stochastic depth, keeps short prefixes sampled
                }
            }
            if prefix.is_empty() {
                continue;
            }
            // Rollout: completed-plan estimated cost → normalised reward.
            let cost = cost_of(&prefix, &self.recorder.optimizer);
            let reward = (base / cost.max(1.0)).min(10.0);
            // Backpropagate along all prefixes of the path.
            for end in 1..=prefix.len() {
                let e = visits.entry(prefix[..end].to_vec()).or_insert((0.0, 0));
                e.0 += reward;
                e.1 += 1;
            }
        }
        let mut scored: Vec<(Vec<usize>, f64)> = visits
            .into_iter()
            .filter(|(p, _)| !p.is_empty())
            .map(|(p, (r, c))| (p, r / c.max(1) as f64))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(TOP_PREFIXES);
        scored.into_iter().map(|(p, _)| p).collect()
    }

    fn candidates(&self, query: &Query) -> Result<Vec<PhysicalPlan>> {
        let mut out = vec![self.recorder.optimizer.optimize(query)?];
        for prefix in self.search_prefixes(query) {
            if let Ok(plan) = self
                .recorder
                .optimizer
                .optimize_with_leading(query, &prefix)
            {
                if out.iter().all(|p| p.fingerprint() != plan.fingerprint()) {
                    out.push(plan);
                }
            }
        }
        Ok(out)
    }
}

impl LearnedOptimizer for HybridQo {
    fn name(&self) -> &'static str {
        "HybridQO"
    }

    fn train_round(&mut self, queries: &[Query]) -> Result<()> {
        for query in queries {
            let cands = self.candidates(query)?;
            let encs: Vec<EncodedPlan> = cands
                .iter()
                .map(|p| self.recorder.encode(query, p))
                .collect();
            let explore = self.rng.lock().random_range(0.0..1.0) < self.epsilon;
            let pick = if explore {
                self.rng.lock().random_range(0..cands.len())
            } else {
                let refs: Vec<&EncodedPlan> = encs.iter().collect();
                self.model.best_of(&refs)
            };
            let latency = self.recorder.measure(query, &cands[pick])?;
            self.samples
                .push((encs[pick].clone(), (latency.max(1.0) as f32).ln()));
        }
        let rng = self.rng.get_mut();
        for _ in 0..2 {
            self.model.train_epoch(&self.samples, rng);
        }
        self.epsilon = (self.epsilon * 0.8).max(0.05);
        Ok(())
    }

    fn plan(&self, query: &Query) -> Result<PhysicalPlan> {
        let cands = self.candidates(query)?;
        let encs: Vec<EncodedPlan> = cands
            .iter()
            .map(|p| self.recorder.encode(query, p))
            .collect();
        let refs: Vec<&EncodedPlan> = encs.iter().collect();
        let best = self.model.best_of(&refs);
        Ok(cands.into_iter().nth(best).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_core::envs::tests_support::TestWorld;

    fn hqo(world: &TestWorld) -> HybridQo {
        let executor = Arc::new(CachingExecutor::new(
            world.db.clone(),
            *world.opt.cost_model(),
        ));
        let encoder = PlanEncoder::new(3, world.db.stats().iter().map(|s| s.row_count).collect());
        HybridQo::new(Arc::new(world.opt.clone()), executor, encoder, 11)
    }

    #[test]
    fn prefix_search_returns_valid_prefixes() {
        let world = TestWorld::new(1);
        let h = hqo(&world);
        let prefixes = h.search_prefixes(&world.query);
        assert!(!prefixes.is_empty());
        assert!(prefixes.len() <= TOP_PREFIXES);
        for p in &prefixes {
            assert!(!p.is_empty() && p.len() <= 3);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), p.len(), "prefix has duplicates: {p:?}");
        }
    }

    #[test]
    fn candidates_respect_their_prefix() {
        let world = TestWorld::new(2);
        let h = hqo(&world);
        let cands = h.candidates(&world.query).unwrap();
        assert!(cands.len() >= 2, "expert + at least one hinted plan");
        for plan in &cands {
            assert!(plan.is_left_deep());
        }
    }

    #[test]
    fn trains_and_plans() {
        let world = TestWorld::new(3);
        let mut h = hqo(&world);
        let queries = vec![world.query.clone()];
        h.train_round(&queries).unwrap();
        let plan = h.plan(&world.query).unwrap();
        assert!(plan.est_cost() > 0.0);
    }
}
