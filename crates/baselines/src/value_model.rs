//! Shared latency-regression network for the learned baselines.
//!
//! Bao, HybridQO, Balsa and Loger all need "given a candidate plan, how fast
//! will it run?" — this model plays that role: the same transformer plan
//! encoder used elsewhere in the workspace, with a scalar head regressing
//! `ln(latency)` (log-space keeps the loss well-conditioned across the many
//! orders of magnitude separating good and catastrophic plans).

use foss_core::encoding::EncodedPlan;
use foss_core::state_net::StateNetwork;
use foss_nn::{Adam, Graph, Linear, Matrix, ParamSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Plan → predicted log-latency.
pub struct PlanValueModel {
    set: ParamSet,
    net: StateNetwork,
    head: Linear,
    adam: Adam,
    batch: usize,
}

impl PlanValueModel {
    /// Allocate a model for a schema with `table_vocab` table ids.
    pub fn new(table_vocab: usize, rng: &mut StdRng) -> Self {
        let mut set = ParamSet::new();
        let net = StateNetwork::new(&mut set, table_vocab, 32, 32, 2, 1, rng);
        let head = Linear::new(&mut set, 32, 1, rng);
        Self {
            set,
            net,
            head,
            adam: Adam::new(1e-3),
            batch: 16,
        }
    }

    /// Predicted `ln(latency)` for one plan.
    pub fn predict(&self, plan: &EncodedPlan) -> f32 {
        let mut g = Graph::new();
        let sv = self.net.forward(&mut g, &self.set, plan);
        let y = self.head.forward(&mut g, &self.set, sv);
        g.value(y).get(0, 0)
    }

    /// Index of the plan with the lowest predicted latency.
    pub fn best_of(&self, plans: &[&EncodedPlan]) -> usize {
        assert!(!plans.is_empty());
        plans
            .iter()
            .enumerate()
            .map(|(i, p)| (i, self.predict(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .unwrap()
    }

    /// One MSE epoch over `(plan, ln latency)` samples; returns mean loss.
    pub fn train_epoch(&mut self, samples: &[(EncodedPlan, f32)], rng: &mut StdRng) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(self.batch) {
            let plans: Vec<&EncodedPlan> = chunk.iter().map(|&i| &samples[i].0).collect();
            let targets: Vec<f32> = chunk.iter().map(|&i| samples[i].1).collect();
            let b = chunk.len();
            let mut g = Graph::new();
            let sv = self.net.forward_batch(&mut g, &self.set, &plans);
            let pred = self.head.forward(&mut g, &self.set, sv);
            let t = g.input(Matrix::from_vec(b, 1, targets));
            let d = g.sub(pred, t);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            total += g.value(loss).get(0, 0);
            batches += 1;
            self.set.zero_grad();
            g.backward(loss, &mut self.set);
            let norm = self.set.grad_norm();
            if norm > 5.0 {
                self.set.scale_grads(5.0 / norm);
            }
            self.adam.step(&mut self.set);
        }
        total / batches as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan(tag: usize) -> EncodedPlan {
        EncodedPlan {
            ops: vec![tag % 6, 0],
            tables: vec![0, 1],
            sels: vec![10, tag % 10],
            rows: vec![tag % 25, 2],
            heights: vec![1, 0],
            structures: vec![3, 1],
            reach: vec![vec![true, true], vec![true, true]],
            step: 0.0,
        }
    }

    #[test]
    fn learns_to_rank_plans() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut m = PlanValueModel::new(4, &mut rng);
        // Plans with high `rows` bucket are slow.
        let mut samples = Vec::new();
        for tag in 0..25 {
            let lat = 1.0 + tag as f32 * 0.4;
            samples.push((plan(tag), lat));
        }
        let first = m.train_epoch(&samples, &mut rng);
        let mut last = first;
        for _ in 0..60 {
            last = m.train_epoch(&samples, &mut rng);
        }
        assert!(last < first / 2.0, "loss {first} → {last}");
        let fast = plan(1);
        let slow = plan(24);
        assert!(m.predict(&fast) < m.predict(&slow));
        assert_eq!(m.best_of(&[&slow, &fast]), 1);
    }

    #[test]
    fn empty_training_is_noop() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = PlanValueModel::new(4, &mut rng);
        assert_eq!(m.train_epoch(&[], &mut rng), 0.0);
    }
}
