//! Balsa (Yang et al., SIGMOD 2022), reimplemented on our substrates.
//!
//! Balsa learns a query optimizer *from scratch, without expert
//! demonstrations*: it proposes whole plans (join order **and** join
//! methods) with no anchor on the expert's plan, evaluates them with a
//! learned value model, and improves from execution feedback. The defining
//! behaviours this reimplementation preserves:
//!
//! * no expert fallback — early rounds propose near-random plans, which is
//!   exactly the "catastrophic plans generated during the initial phase"
//!   the paper observed on Stack;
//! * value-model-guided selection among sampled candidates, retrained from
//!   (timeout-clamped) execution latencies each round;
//! * a per-query memory of the best plan observed so far (Balsa's replay of
//!   best found plans).

use std::sync::Arc;

use foss_common::sync::Mutex;
use foss_common::{FxHashMap, QueryId, Result};
use foss_core::encoding::{EncodedPlan, PlanEncoder};
use foss_executor::CachingExecutor;
use foss_optimizer::{Icp, JoinMethod, PhysicalPlan, TraditionalOptimizer, ALL_JOIN_METHODS};
use foss_query::Query;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::support::ExecRecorder;
use crate::value_model::PlanValueModel;
use crate::{random_connected_order, LearnedOptimizer};

/// Candidate plans sampled per query per round.
const CANDIDATES: usize = 8;

/// The Balsa-lite baseline.
pub struct BalsaLite {
    recorder: ExecRecorder,
    model: PlanValueModel,
    samples: Vec<(EncodedPlan, f32)>,
    best_seen: FxHashMap<QueryId, (Icp, f64)>,
    /// Behind a lock: candidate sampling draws randomness during planning,
    /// which is `&self` (see [`LearnedOptimizer::plan`]).
    rng: Mutex<StdRng>,
    epsilon: f64,
}

impl BalsaLite {
    /// Assemble Balsa-lite.
    pub fn new(
        optimizer: Arc<TraditionalOptimizer>,
        executor: Arc<CachingExecutor>,
        encoder: PlanEncoder,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = PlanValueModel::new(encoder.table_vocab(), &mut rng);
        Self {
            recorder: ExecRecorder::new(optimizer, executor, encoder),
            model,
            samples: Vec::new(),
            best_seen: FxHashMap::default(),
            rng: Mutex::new(rng),
            epsilon: 0.6,
        }
    }

    fn random_icp(&self, query: &Query) -> Icp {
        let mut rng = self.rng.lock();
        let order = random_connected_order(query, &mut rng);
        let methods: Vec<JoinMethod> = (0..order.len().saturating_sub(1))
            .map(|_| ALL_JOIN_METHODS[rng.random_range(0..ALL_JOIN_METHODS.len())])
            .collect();
        Icp::new(order, methods).expect("random ICP is structurally valid")
    }

    /// Sample candidate plans — from scratch, no expert plan included.
    fn candidates(&self, query: &Query) -> Result<Vec<(Icp, PhysicalPlan)>> {
        let mut out: Vec<(Icp, PhysicalPlan)> = Vec::with_capacity(CANDIDATES + 1);
        if let Some((icp, _)) = self.best_seen.get(&query.id).cloned().map(|v| (v.0, v.1)) {
            let plan = self.recorder.optimizer.optimize_with_hint(query, &icp)?;
            out.push((icp, plan));
        }
        for _ in 0..CANDIDATES {
            let icp = self.random_icp(query);
            if out
                .iter()
                .any(|(i, _)| i.fingerprint() == icp.fingerprint())
            {
                continue;
            }
            let plan = self.recorder.optimizer.optimize_with_hint(query, &icp)?;
            out.push((icp, plan));
        }
        Ok(out)
    }
}

impl LearnedOptimizer for BalsaLite {
    fn name(&self) -> &'static str {
        "Balsa"
    }

    fn train_round(&mut self, queries: &[Query]) -> Result<()> {
        for query in queries {
            if query.relation_count() < 2 {
                continue;
            }
            let cands = self.candidates(query)?;
            let encs: Vec<EncodedPlan> = cands
                .iter()
                .map(|(_, p)| self.recorder.encode(query, p))
                .collect();
            let explore = self.rng.lock().random_range(0.0..1.0) < self.epsilon;
            let pick = if explore {
                self.rng.lock().random_range(0..cands.len())
            } else {
                let refs: Vec<&EncodedPlan> = encs.iter().collect();
                self.model.best_of(&refs)
            };
            let latency = self.recorder.measure(query, &cands[pick].1)?;
            self.samples
                .push((encs[pick].clone(), (latency.max(1.0) as f32).ln()));
            let entry = self.best_seen.entry(query.id);
            match entry {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if latency < e.get().1 {
                        e.insert((cands[pick].0.clone(), latency));
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((cands[pick].0.clone(), latency));
                }
            }
        }
        let rng = self.rng.get_mut();
        for _ in 0..2 {
            self.model.train_epoch(&self.samples, rng);
        }
        self.epsilon = (self.epsilon * 0.85).max(0.05);
        Ok(())
    }

    fn plan(&self, query: &Query) -> Result<PhysicalPlan> {
        if query.relation_count() < 2 {
            return self.recorder.optimizer.optimize(query);
        }
        let cands = self.candidates(query)?;
        let encs: Vec<EncodedPlan> = cands
            .iter()
            .map(|(_, p)| self.recorder.encode(query, p))
            .collect();
        let refs: Vec<&EncodedPlan> = encs.iter().collect();
        let best = self.model.best_of(&refs);
        Ok(cands.into_iter().nth(best).unwrap().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_core::envs::tests_support::TestWorld;

    fn balsa(world: &TestWorld) -> BalsaLite {
        let executor = Arc::new(CachingExecutor::new(
            world.db.clone(),
            *world.opt.cost_model(),
        ));
        let encoder = PlanEncoder::new(3, world.db.stats().iter().map(|s| s.row_count).collect());
        BalsaLite::new(Arc::new(world.opt.clone()), executor, encoder, 13)
    }

    #[test]
    fn candidates_do_not_anchor_on_expert() {
        let world = TestWorld::new(1);
        let b = balsa(&world);
        let expert_fp = world.original.fingerprint();
        // Over many fresh samples, candidates are random — some may happen
        // to equal the expert plan, but the *mechanism* includes no expert
        // call. Check the first round's candidates are diverse.
        let cands = b.candidates(&world.query).unwrap();
        assert!(cands.len() >= 3);
        let distinct: std::collections::HashSet<u64> =
            cands.iter().map(|(_, p)| p.fingerprint()).collect();
        assert!(distinct.len() >= 3, "candidates not diverse");
        let _ = expert_fp;
    }

    #[test]
    fn best_seen_improves_monotonically() {
        let world = TestWorld::new(2);
        let mut b = balsa(&world);
        let queries = vec![world.query.clone()];
        let mut lat_history = Vec::new();
        for _ in 0..5 {
            b.train_round(&queries).unwrap();
            lat_history.push(b.best_seen[&world.query.id].1);
        }
        for w in lat_history.windows(2) {
            assert!(w[1] <= w[0], "best-seen latency regressed: {lat_history:?}");
        }
    }

    #[test]
    fn plans_after_training() {
        let world = TestWorld::new(3);
        let mut b = balsa(&world);
        b.train_round(std::slice::from_ref(&world.query)).unwrap();
        let plan = b.plan(&world.query).unwrap();
        assert!(plan.is_left_deep());
    }
}
