//! Loger (Chen et al., VLDB 2023), reimplemented on our substrates.
//!
//! Loger, like Balsa, learns join orders bottom-up — but it "restricts
//! specific join methods instead of directly selecting one for each join":
//! the expert's cost model keeps the method decision, which makes Loger far
//! more robust than Balsa. This reimplementation keeps exactly that split:
//!
//! * the learner proposes *join orders* (expert-seeded + mutations — Loger
//!   leverages optimizer knowledge, unlike Balsa);
//! * each order is completed by the expert via leading-order steering, so
//!   join methods come from the cost model;
//! * a value model ranks the completed candidates, trained on execution
//!   latency.

use std::sync::Arc;

use foss_common::sync::Mutex;
use foss_common::{FxHashMap, QueryId, Result};
use foss_core::encoding::{EncodedPlan, PlanEncoder};
use foss_executor::CachingExecutor;
use foss_optimizer::{PhysicalPlan, TraditionalOptimizer};
use foss_query::Query;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::support::ExecRecorder;
use crate::value_model::PlanValueModel;
use crate::{random_connected_order, LearnedOptimizer};

/// Candidate orders sampled per query per round.
const CANDIDATES: usize = 6;

/// The Loger-lite baseline.
pub struct LogerLite {
    recorder: ExecRecorder,
    model: PlanValueModel,
    samples: Vec<(EncodedPlan, f32)>,
    best_seen: FxHashMap<QueryId, (Vec<usize>, f64)>,
    /// Behind a lock: order mutation draws randomness during planning,
    /// which is `&self` (see [`LearnedOptimizer::plan`]).
    rng: Mutex<StdRng>,
    epsilon: f64,
}

impl LogerLite {
    /// Assemble Loger-lite.
    pub fn new(
        optimizer: Arc<TraditionalOptimizer>,
        executor: Arc<CachingExecutor>,
        encoder: PlanEncoder,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = PlanValueModel::new(encoder.table_vocab(), &mut rng);
        Self {
            recorder: ExecRecorder::new(optimizer, executor, encoder),
            model,
            samples: Vec::new(),
            best_seen: FxHashMap::default(),
            rng: Mutex::new(rng),
            epsilon: 0.4,
        }
    }

    fn mutate_order(&self, order: &[usize]) -> Vec<usize> {
        let mut out = order.to_vec();
        if out.len() >= 2 {
            let mut rng = self.rng.lock();
            let i = rng.random_range(0..out.len());
            let j = rng.random_range(0..out.len());
            out.swap(i, j);
        }
        out
    }

    /// Candidate join orders: expert order, best-seen, mutations, random.
    fn candidate_orders(&self, query: &Query) -> Result<Vec<Vec<usize>>> {
        let expert = self
            .recorder
            .optimizer
            .optimize(query)?
            .extract_icp()?
            .order;
        let mut orders = vec![expert.clone()];
        if let Some((best, _)) = self.best_seen.get(&query.id).cloned() {
            if best != expert {
                orders.push(best.clone());
            }
            orders.push(self.mutate_order(&best));
        }
        orders.push(self.mutate_order(&expert));
        while orders.len() < CANDIDATES {
            orders.push(random_connected_order(query, &mut self.rng.lock()));
        }
        orders.dedup();
        Ok(orders)
    }

    fn candidates(&self, query: &Query) -> Result<Vec<(Vec<usize>, PhysicalPlan)>> {
        let orders = self.candidate_orders(query)?;
        let mut out: Vec<(Vec<usize>, PhysicalPlan)> = Vec::with_capacity(orders.len());
        for order in orders {
            // Methods stay with the expert: leading-order steering only.
            let plan = self
                .recorder
                .optimizer
                .optimize_with_leading(query, &order)?;
            if out
                .iter()
                .all(|(_, p)| p.fingerprint() != plan.fingerprint())
            {
                out.push((order, plan));
            }
        }
        Ok(out)
    }
}

impl LearnedOptimizer for LogerLite {
    fn name(&self) -> &'static str {
        "Loger"
    }

    fn train_round(&mut self, queries: &[Query]) -> Result<()> {
        for query in queries {
            if query.relation_count() < 2 {
                continue;
            }
            let cands = self.candidates(query)?;
            let encs: Vec<EncodedPlan> = cands
                .iter()
                .map(|(_, p)| self.recorder.encode(query, p))
                .collect();
            let explore = self.rng.lock().random_range(0.0..1.0) < self.epsilon;
            let pick = if explore {
                self.rng.lock().random_range(0..cands.len())
            } else {
                let refs: Vec<&EncodedPlan> = encs.iter().collect();
                self.model.best_of(&refs)
            };
            let latency = self.recorder.measure(query, &cands[pick].1)?;
            self.samples
                .push((encs[pick].clone(), (latency.max(1.0) as f32).ln()));
            let better = self
                .best_seen
                .get(&query.id)
                .is_none_or(|(_, best)| latency < *best);
            if better {
                self.best_seen
                    .insert(query.id, (cands[pick].0.clone(), latency));
            }
        }
        let rng = self.rng.get_mut();
        for _ in 0..2 {
            self.model.train_epoch(&self.samples, rng);
        }
        self.epsilon = (self.epsilon * 0.8).max(0.05);
        Ok(())
    }

    fn plan(&self, query: &Query) -> Result<PhysicalPlan> {
        if query.relation_count() < 2 {
            return self.recorder.optimizer.optimize(query);
        }
        let cands = self.candidates(query)?;
        let encs: Vec<EncodedPlan> = cands
            .iter()
            .map(|(_, p)| self.recorder.encode(query, p))
            .collect();
        let refs: Vec<&EncodedPlan> = encs.iter().collect();
        let best = self.model.best_of(&refs);
        Ok(cands.into_iter().nth(best).unwrap().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_core::envs::tests_support::TestWorld;

    fn loger(world: &TestWorld) -> LogerLite {
        let executor = Arc::new(CachingExecutor::new(
            world.db.clone(),
            *world.opt.cost_model(),
        ));
        let encoder = PlanEncoder::new(3, world.db.stats().iter().map(|s| s.row_count).collect());
        LogerLite::new(Arc::new(world.opt.clone()), executor, encoder, 17)
    }

    #[test]
    fn candidates_include_expert_order() {
        let world = TestWorld::new(1);
        let l = loger(&world);
        let expert_order = world.original.extract_icp().unwrap().order;
        let cands = l.candidates(&world.query).unwrap();
        assert!(cands.iter().any(|(o, _)| *o == expert_order));
    }

    #[test]
    fn methods_come_from_the_expert() {
        // Every candidate must coincide with the expert's method choice for
        // its own order (leading steering picks methods by cost).
        let world = TestWorld::new(2);
        let l = loger(&world);
        for (order, plan) in l.candidates(&world.query).unwrap() {
            let direct = l
                .recorder
                .optimizer
                .optimize_with_leading(&world.query, &order)
                .unwrap();
            assert_eq!(plan.fingerprint(), direct.fingerprint());
        }
    }

    #[test]
    fn trains_and_plans() {
        let world = TestWorld::new(3);
        let mut l = loger(&world);
        let queries = vec![world.query.clone()];
        for _ in 0..2 {
            l.train_round(&queries).unwrap();
        }
        let plan = l.plan(&world.query).unwrap();
        assert!(plan.is_left_deep());
        assert!(l.best_seen.contains_key(&world.query.id));
    }
}
