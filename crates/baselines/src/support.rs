//! Shared plumbing for the learned baselines: budgeted execution with
//! expert-anchored timeouts, plan encoding, sample collection.

use std::sync::Arc;

use foss_common::{FossError, FxHashMap, QueryId, Result};
use foss_core::encoding::{EncodedPlan, PlanEncoder};
use foss_executor::CachingExecutor;
use foss_optimizer::{PhysicalPlan, TraditionalOptimizer};
use foss_query::Query;

/// Timeout factor the baselines run with (more generous than FOSS's 1.5× so
/// that from-scratch learners can still collect signal from bad plans).
pub(crate) const BASELINE_TIMEOUT_FACTOR: f64 = 3.0;

/// Executes candidate plans for the baselines and encodes them for their
/// value models.
pub(crate) struct ExecRecorder {
    pub optimizer: Arc<TraditionalOptimizer>,
    pub executor: Arc<CachingExecutor>,
    pub encoder: PlanEncoder,
    expert_latency: FxHashMap<QueryId, f64>,
}

impl ExecRecorder {
    pub fn new(
        optimizer: Arc<TraditionalOptimizer>,
        executor: Arc<CachingExecutor>,
        encoder: PlanEncoder,
    ) -> Self {
        Self {
            optimizer,
            executor,
            encoder,
            expert_latency: FxHashMap::default(),
        }
    }

    /// The expert plan's latency (measured once, cached).
    pub fn expert_latency(&mut self, query: &Query) -> Result<f64> {
        if let Some(&l) = self.expert_latency.get(&query.id) {
            return Ok(l);
        }
        let plan = self.optimizer.optimize(query)?;
        let out = self.executor.execute(query, &plan, None)?;
        self.expert_latency.insert(query.id, out.latency);
        Ok(out.latency)
    }

    /// Execute `plan` under the baseline timeout; returns the measured (or
    /// budget-clamped) latency.
    pub fn measure(&mut self, query: &Query, plan: &PhysicalPlan) -> Result<f64> {
        let budget = self.expert_latency(query)? * BASELINE_TIMEOUT_FACTOR;
        match self.executor.execute(query, plan, Some(budget)) {
            Ok(out) => Ok(out.latency),
            Err(FossError::Timeout { .. }) => Ok(budget),
            Err(e) => Err(e),
        }
    }

    /// Encode a plan for the value model.
    pub fn encode(&self, query: &Query, plan: &PhysicalPlan) -> EncodedPlan {
        self.encoder.encode(query, plan, 0.0)
    }
}
