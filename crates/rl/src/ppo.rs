//! The PPO update rule over a caller-supplied policy/value network.

use foss_nn::{Graph, Matrix, ParamSet, Var};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, RngExt};

use crate::buffer::RolloutBatch;

/// Additive logit penalty for masked-out actions.
pub const MASK_NEG: f32 = -1e9;

/// The network contract: given a batch of states, record a forward pass that
/// yields unmasked action logits (`B × A`) and state values (`B × 1`).
pub trait PolicyValueNet<S> {
    /// Record the forward pass on `g` using parameters from `set`.
    fn forward(&self, g: &mut Graph, set: &ParamSet, states: &[&S]) -> (Var, Var);

    /// Number of actions (logit columns).
    fn action_count(&self) -> usize;
}

/// PPO hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub lam: f32,
    /// Clipping radius ε.
    pub clip: f32,
    /// Optimisation epochs per batch.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch: usize,
    /// Entropy bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Early-stop threshold on approximate KL (None = never stop early).
    pub target_kl: Option<f32>,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            lam: 0.95,
            clip: 0.2,
            epochs: 4,
            minibatch: 64,
            entropy_coef: 0.01,
            value_coef: 0.5,
            target_kl: Some(0.03),
            max_grad_norm: 1.0,
        }
    }
}

/// Diagnostics from one [`Ppo::update`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct PpoStats {
    /// Mean clipped policy loss of the final epoch.
    pub policy_loss: f32,
    /// Mean value loss of the final epoch.
    pub value_loss: f32,
    /// Mean policy entropy of the final epoch.
    pub entropy: f32,
    /// Approximate KL between old and new policies.
    pub approx_kl: f32,
    /// Epochs actually run (early stop may cut them short).
    pub epochs_run: usize,
}

/// PPO trainer: owns hyperparameters and the Adam state.
pub struct Ppo {
    /// Hyperparameters.
    pub cfg: PpoConfig,
    adam: foss_nn::Adam,
}

impl Ppo {
    /// Trainer with learning rate `lr`.
    pub fn new(cfg: PpoConfig, lr: f32) -> Self {
        Self {
            cfg,
            adam: foss_nn::Adam::new(lr),
        }
    }

    /// Run the clipped-surrogate update over `batch`.
    pub fn update<S>(
        &mut self,
        net: &impl PolicyValueNet<S>,
        set: &mut ParamSet,
        batch: &RolloutBatch<S>,
        rng: &mut StdRng,
    ) -> PpoStats {
        let n = batch.transitions.len();
        if n == 0 {
            return PpoStats::default();
        }
        let mut stats = PpoStats::default();
        let mut order: Vec<usize> = (0..n).collect();
        'epochs: for epoch in 0..self.cfg.epochs {
            order.shuffle(rng);
            for chunk in order.chunks(self.cfg.minibatch.max(1)) {
                let states: Vec<&S> = chunk.iter().map(|&i| &batch.transitions[i].state).collect();
                let actions: Vec<usize> =
                    chunk.iter().map(|&i| batch.transitions[i].action).collect();
                let old_logp: Vec<f32> = chunk.iter().map(|&i| batch.transitions[i].logp).collect();
                let advs: Vec<f32> = chunk.iter().map(|&i| batch.advantages[i]).collect();
                let rets: Vec<f32> = chunk.iter().map(|&i| batch.returns[i]).collect();
                let b = chunk.len();
                let a_count = net.action_count();

                // Mask matrix: 0 for legal actions, MASK_NEG for illegal.
                let mut mask = Matrix::zeros(b, a_count);
                for (r, &i) in chunk.iter().enumerate() {
                    for (c, &legal) in batch.transitions[i].mask.iter().enumerate() {
                        if !legal {
                            mask.set(r, c, MASK_NEG);
                        }
                    }
                }

                let mut g = Graph::new();
                let (logits, values) = net.forward(&mut g, set, &states);
                let mask_var = g.input(mask);
                let masked = g.add(logits, mask_var);
                let logp_all = g.log_softmax_rows(masked);
                let logp_new = g.pick_per_row(logp_all, &actions);

                let old = g.input(Matrix::from_vec(b, 1, old_logp.clone()));
                let diff = g.sub(logp_new, old);
                let ratio = g.exp(diff);
                let adv = g.input(Matrix::from_vec(b, 1, advs));
                let surr1 = g.mul(ratio, adv);
                let clipped = g.clamp(ratio, 1.0 - self.cfg.clip, 1.0 + self.cfg.clip);
                let surr2 = g.mul(clipped, adv);
                let surr = g.min_elem(surr1, surr2);
                let mean_surr = g.mean_all(surr);
                let policy_loss = g.scale(mean_surr, -1.0);

                let ret = g.input(Matrix::from_vec(b, 1, rets));
                let verr = g.sub(values, ret);
                let vsq = g.mul(verr, verr);
                let value_loss = g.mean_all(vsq);

                let probs = g.softmax_rows(masked);
                let plogp = g.mul(probs, logp_all);
                let neg_ent = g.mean_all(plogp);
                let ent_rowscale = a_count as f32; // mean over cells → per-row sum
                let entropy = g.scale(neg_ent, -ent_rowscale);

                let vterm = g.scale(value_loss, self.cfg.value_coef);
                let eterm = g.scale(entropy, -self.cfg.entropy_coef);
                let partial = g.add(policy_loss, vterm);
                let loss = g.add(partial, eterm);

                stats.policy_loss = g.value(policy_loss).get(0, 0);
                stats.value_loss = g.value(value_loss).get(0, 0);
                stats.entropy = g.value(entropy).get(0, 0);

                // Approximate KL for early stopping: E[old − new].
                let kl: f32 = (0..b)
                    .map(|r| old_logp[r] - g.value(logp_new).get(r, 0))
                    .sum::<f32>()
                    / b as f32;
                stats.approx_kl = kl;

                set.zero_grad();
                g.backward(loss, set);
                let norm = set.grad_norm();
                if norm > self.cfg.max_grad_norm {
                    set.scale_grads(self.cfg.max_grad_norm / norm);
                }
                self.adam.step(set);

                if let Some(target) = self.cfg.target_kl {
                    if kl.abs() > target {
                        stats.epochs_run = epoch + 1;
                        break 'epochs;
                    }
                }
            }
            stats.epochs_run = epoch + 1;
        }
        stats
    }
}

/// Sample an action from masked logits; returns `(action, logp, probs)`.
///
/// Used at collection time (no gradients needed).
pub fn sample_masked(logits: &[f32], mask: &[bool], rng: &mut StdRng) -> (usize, f32, Vec<f32>) {
    debug_assert_eq!(logits.len(), mask.len());
    let max = logits
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(&l, _)| l)
        .fold(f32::NEG_INFINITY, f32::max);
    assert!(max.is_finite(), "no legal action to sample");
    let mut probs: Vec<f32> = logits
        .iter()
        .zip(mask)
        .map(|(&l, &m)| if m { (l - max).exp() } else { 0.0 })
        .collect();
    let sum: f32 = probs.iter().sum();
    for p in &mut probs {
        *p /= sum;
    }
    let u: f32 = rng.random_range(0.0..1.0);
    let mut acc = 0.0;
    let mut action = probs.len() - 1;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            action = i;
            break;
        }
    }
    // Guard against sampling a masked action through rounding.
    if !mask[action] {
        action = probs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask[*i])
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("at least one legal action");
    }
    let logp = probs[action].max(1e-12).ln();
    (action, logp, probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{RolloutBuffer, Transition};
    use foss_nn::Linear;
    use rand::SeedableRng;

    /// Tiny two-state bandit: state 0 → action 1 pays, state 1 → action 0.
    struct TinyNet {
        policy: Linear,
        value: Linear,
    }

    impl PolicyValueNet<usize> for TinyNet {
        fn forward(&self, g: &mut Graph, set: &ParamSet, states: &[&usize]) -> (Var, Var) {
            let b = states.len();
            let mut feats = Matrix::zeros(b, 2);
            for (r, &&s) in states.iter().enumerate() {
                feats.set(r, s, 1.0);
            }
            let x = g.input(feats);
            let logits = self.policy.forward(g, set, x);
            let values = self.value.forward(g, set, x);
            (logits, values)
        }

        fn action_count(&self) -> usize {
            2
        }
    }

    #[test]
    fn ppo_learns_state_conditional_bandit() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut set = ParamSet::new();
        let net = TinyNet {
            policy: Linear::new(&mut set, 2, 2, &mut rng),
            value: Linear::new(&mut set, 2, 2, &mut rng),
        };
        // value head outputs 2 cols; use col 0 only — simpler: make value 1-col net.
        let net = TinyNet {
            policy: net.policy,
            value: Linear::new(&mut set, 2, 1, &mut rng),
        };
        let mut ppo = Ppo::new(
            PpoConfig {
                minibatch: 32,
                epochs: 4,
                target_kl: None,
                ..Default::default()
            },
            0.05,
        );
        for _round in 0..30 {
            let mut buf = RolloutBuffer::new();
            for i in 0..64 {
                let s = i % 2;
                let mut g = Graph::new();
                let (logits, values) = net.forward(&mut g, &set, &[&s]);
                let l = g.value(logits).row(0).to_vec();
                let v = g.value(values).get(0, 0);
                let (a, logp, _) = sample_masked(&l, &[true, true], &mut rng);
                let reward = if (s == 0 && a == 1) || (s == 1 && a == 0) {
                    1.0
                } else {
                    0.0
                };
                buf.push(Transition {
                    state: s,
                    mask: vec![true, true],
                    action: a,
                    reward,
                    done: true,
                    value: v,
                    logp,
                });
            }
            let batch = buf.finish(ppo.cfg.gamma, ppo.cfg.lam);
            ppo.update(&net, &mut set, &batch, &mut rng);
        }
        // Greedy policy must now be correct in both states.
        for s in 0..2usize {
            let mut g = Graph::new();
            let (logits, _) = net.forward(&mut g, &set, &[&s]);
            let row = g.value(logits).row(0).to_vec();
            let best = if row[0] > row[1] { 0 } else { 1 };
            assert_eq!(best, 1 - s, "state {s} learned wrong action: {row:?}");
        }
    }

    #[test]
    fn sample_masked_never_picks_illegal() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = vec![5.0, 0.0, -2.0, 3.0];
        let mask = vec![false, true, true, false];
        for _ in 0..200 {
            let (a, logp, probs) = sample_masked(&logits, &mask, &mut rng);
            assert!(mask[a], "sampled masked action {a}");
            assert!(logp <= 0.0);
            assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert_eq!(probs[0], 0.0);
            assert_eq!(probs[3], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "no legal action")]
    fn sample_masked_panics_without_legal_action() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_masked(&[1.0, 2.0], &[false, false], &mut rng);
    }

    #[test]
    fn update_on_empty_batch_is_noop() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut set = ParamSet::new();
        let net = TinyNet {
            policy: Linear::new(&mut set, 2, 2, &mut rng),
            value: Linear::new(&mut set, 2, 1, &mut rng),
        };
        let mut ppo = Ppo::new(PpoConfig::default(), 0.01);
        let batch = RolloutBatch::<usize> {
            transitions: vec![],
            advantages: vec![],
            returns: vec![],
        };
        let stats = ppo.update(&net, &mut set, &batch, &mut rng);
        assert_eq!(stats.epochs_run, 0);
    }

    #[test]
    fn kl_early_stop_reduces_epochs() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut set = ParamSet::new();
        let net = TinyNet {
            policy: Linear::new(&mut set, 2, 2, &mut rng),
            value: Linear::new(&mut set, 2, 1, &mut rng),
        };
        // Hugely aggressive LR with a tiny KL target: must stop before all
        // 50 epochs.
        let mut ppo = Ppo::new(
            PpoConfig {
                epochs: 50,
                target_kl: Some(1e-4),
                minibatch: 8,
                ..Default::default()
            },
            0.5,
        );
        let mut buf = RolloutBuffer::new();
        for i in 0..32 {
            let s = i % 2;
            buf.push(Transition {
                state: s,
                mask: vec![true, true],
                action: i % 2,
                reward: (i % 2) as f32,
                done: true,
                value: 0.0,
                logp: (0.5f32).ln(),
            });
        }
        let batch = buf.finish(0.99, 0.95);
        let stats = ppo.update(&net, &mut set, &batch, &mut rng);
        assert!(
            stats.epochs_run < 50,
            "expected early stop, ran {}",
            stats.epochs_run
        );
    }
}
