//! Rollout storage and Generalised Advantage Estimation.

/// One environment step, generic over the state representation `S`.
#[derive(Debug, Clone)]
pub struct Transition<S> {
    /// State observed before the action.
    pub state: S,
    /// Action mask active in that state (`true` = legal).
    pub mask: Vec<bool>,
    /// Chosen action index.
    pub action: usize,
    /// Reward received.
    pub reward: f32,
    /// Whether the episode terminated after this step.
    pub done: bool,
    /// Value estimate `V(s)` at collection time.
    pub value: f32,
    /// Log-probability of the chosen action at collection time.
    pub logp: f32,
}

/// Collects transitions and turns them into a training batch with GAE-λ
/// advantages and discounted returns.
#[derive(Debug, Clone)]
pub struct RolloutBuffer<S> {
    transitions: Vec<Transition<S>>,
}

/// A finalised batch ready for [`crate::Ppo::update`].
#[derive(Debug, Clone)]
pub struct RolloutBatch<S> {
    /// The collected transitions.
    pub transitions: Vec<Transition<S>>,
    /// GAE advantages (normalised to zero mean / unit std).
    pub advantages: Vec<f32>,
    /// Discounted return targets for the value head.
    pub returns: Vec<f32>,
}

impl<S> Default for RolloutBuffer<S> {
    fn default() -> Self {
        Self {
            transitions: Vec::new(),
        }
    }
}

impl<S> RolloutBuffer<S> {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store one step.
    pub fn push(&mut self, t: Transition<S>) {
        self.transitions.push(t);
    }

    /// Append every transition of `other` (in order) after this buffer's.
    /// The merge point for sharded collection: workers fill private buffers
    /// and the owner merges them in a fixed shard order, keeping GAE results
    /// identical to single-threaded collection.
    pub fn merge(&mut self, other: RolloutBuffer<S>) {
        self.transitions.extend(other.transitions);
    }

    /// Number of stored steps.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Finalise into a batch. Episodes must end with `done = true`
    /// (the FOSS planner's episodes always do — fixed `maxsteps`); any
    /// trailing partial episode is bootstrapped with value 0.
    pub fn finish(self, gamma: f32, lam: f32) -> RolloutBatch<S> {
        let n = self.transitions.len();
        let mut advantages = vec![0.0f32; n];
        let mut returns = vec![0.0f32; n];
        let mut next_value = 0.0f32;
        let mut next_advantage = 0.0f32;
        for i in (0..n).rev() {
            let t = &self.transitions[i];
            let (nv, na) = if t.done {
                (0.0, 0.0)
            } else {
                (next_value, next_advantage)
            };
            let delta = t.reward + gamma * nv - t.value;
            let adv = delta + gamma * lam * na;
            advantages[i] = adv;
            returns[i] = adv + t.value;
            next_value = t.value;
            next_advantage = adv;
        }
        // Normalise advantages (standard PPO practice).
        if n > 1 {
            let mean = advantages.iter().sum::<f32>() / n as f32;
            let var = advantages
                .iter()
                .map(|a| (a - mean) * (a - mean))
                .sum::<f32>()
                / n as f32;
            let std = var.sqrt().max(1e-6);
            for a in &mut advantages {
                *a = (*a - mean) / std;
            }
        }
        RolloutBatch {
            transitions: self.transitions,
            advantages,
            returns,
        }
    }
}

/// A [`RolloutBuffer`] behind a mutex, shareable across the
/// scoped worker threads that collect episodes concurrently.
///
/// Within one episode, transition order is preserved by pushing the whole
/// episode under a single lock ([`SharedRolloutBuffer::push_episode`]);
/// interleaving across episodes does not affect GAE because advantage
/// accumulation resets at every `done` boundary. Workers that need a fully
/// deterministic global order should instead fill private buffers and
/// [`RolloutBuffer::merge`] them in shard order.
#[derive(Debug, Default)]
pub struct SharedRolloutBuffer<S> {
    inner: foss_common::sync::Mutex<RolloutBuffer<S>>,
}

impl<S> SharedRolloutBuffer<S> {
    /// Empty shared buffer.
    pub fn new() -> Self {
        Self {
            inner: foss_common::sync::Mutex::new(RolloutBuffer::new()),
        }
    }

    /// Store one step.
    pub fn push(&self, t: Transition<S>) {
        self.inner.lock().push(t);
    }

    /// Store a whole episode atomically (its steps stay contiguous).
    pub fn push_episode(&self, steps: impl IntoIterator<Item = Transition<S>>) {
        let mut guard = self.inner.lock();
        for t in steps {
            guard.push(t);
        }
    }

    /// Number of stored steps.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Unwrap into the plain buffer for [`RolloutBuffer::finish`].
    pub fn into_inner(self) -> RolloutBuffer<S> {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(reward: f32, value: f32, done: bool) -> Transition<u32> {
        Transition {
            state: 0,
            mask: vec![true],
            action: 0,
            reward,
            done,
            value,
            logp: 0.0,
        }
    }

    #[test]
    fn single_terminal_step() {
        let mut b = RolloutBuffer::new();
        b.push(step(1.0, 0.5, true));
        let batch = b.finish(0.99, 0.95);
        // delta = 1.0 - 0.5 = 0.5 → return = 1.0.
        assert!((batch.returns[0] - 1.0).abs() < 1e-6);
        assert_eq!(batch.advantages.len(), 1);
    }

    #[test]
    fn gae_accumulates_within_episode() {
        let mut b = RolloutBuffer::new();
        b.push(step(0.0, 0.0, false));
        b.push(step(1.0, 0.0, true));
        let batch = b.finish(1.0, 1.0);
        // With γ=λ=1 and zero values: both advantages equal total reward 1.
        // After normalisation they must be equal (same raw value).
        assert!((batch.advantages[0] - batch.advantages[1]).abs() < 1e-6);
        assert!((batch.returns[0] - 1.0).abs() < 1e-6);
        assert!((batch.returns[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn done_breaks_credit_assignment() {
        let mut b = RolloutBuffer::new();
        b.push(step(0.0, 0.0, true)); // episode 1: no reward
        b.push(step(1.0, 0.0, true)); // episode 2: reward 1
        let batch = b.finish(1.0, 1.0);
        // Episode 1 must not see episode 2's reward.
        assert!((batch.returns[0] - 0.0).abs() < 1e-6);
        assert!((batch.returns[1] - 1.0).abs() < 1e-6);
        // Normalised advantages: ep2 > ep1.
        assert!(batch.advantages[1] > batch.advantages[0]);
    }

    #[test]
    fn merge_preserves_order_and_gae() {
        let mut a = RolloutBuffer::new();
        a.push(step(0.0, 0.0, false));
        a.push(step(1.0, 0.0, true));
        let mut b = RolloutBuffer::new();
        b.push(step(2.0, 0.0, true));
        a.merge(b);
        assert_eq!(a.len(), 3);
        let batch = a.finish(1.0, 1.0);
        // Episode boundaries survive the merge: ep1 return 1, ep2 return 2.
        assert!((batch.returns[0] - 1.0).abs() < 1e-6);
        assert!((batch.returns[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn shared_buffer_collects_from_scoped_threads() {
        let shared: SharedRolloutBuffer<u32> = SharedRolloutBuffer::new();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    // One episode per worker, pushed atomically.
                    shared.push_episode([step(w as f32, 0.0, false), step(1.0, 0.0, true)]);
                });
            }
        });
        assert_eq!(shared.len(), 8);
        let batch = shared.into_inner().finish(1.0, 1.0);
        assert_eq!(batch.transitions.len(), 8);
        // Every episode stayed contiguous: rewards alternate (w, 1.0) pairs,
        // so every odd index is terminal.
        for i in (1..8).step_by(2) {
            assert!(batch.transitions[i].done);
        }
    }

    #[test]
    fn advantages_are_normalised() {
        let mut b = RolloutBuffer::new();
        for i in 0..10 {
            b.push(step(i as f32, 0.0, true));
        }
        let batch = b.finish(0.9, 0.9);
        let mean: f32 = batch.advantages.iter().sum::<f32>() / 10.0;
        let var: f32 = batch
            .advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / 10.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }
}
