//! Proximal Policy Optimization (PPO) with masked categorical policies.
//!
//! The paper uses Ray RLlib's PPO "due to its effectiveness in mitigating
//! differences in the action distribution before and after agent updates
//! through KL divergence". This crate reimplements the algorithm on the
//! `foss-nn` tape: clipped surrogate objective, GAE-λ advantages, entropy
//! bonus, value loss, gradient clipping and KL-based early stopping.
//!
//! The policy/value network itself is supplied by the caller through the
//! [`PolicyValueNet`] trait, so the FOSS planner can train its
//! transformer state network end-to-end while this crate stays generic.

pub mod buffer;
pub mod ppo;

pub use buffer::{RolloutBatch, RolloutBuffer, SharedRolloutBuffer, Transition};
pub use ppo::{sample_masked, PolicyValueNet, Ppo, PpoConfig, PpoStats};
