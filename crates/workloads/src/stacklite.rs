//! Stack-lite: the StackExchange-shaped workload.
//!
//! Mirrors the Stack benchmark introduced by Bao: a few huge activity tables
//! (`answer`, `comment`, `tag_question`) hanging off `question` and
//! `so_user`, with extreme long-tail skew — a handful of questions and power
//! users own most of the activity. 12 templates (the paper keeps template
//! numbers 1, 4, 5, 6, 7, 8, 11, 12, 13, 14, 15, 16), 10 queries each,
//! 8 train / 2 test per template.

use foss_common::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;

use foss_storage::Distribution as D;

use crate::builder::{instantiate_all, Col, DbBuilder};
use crate::template::{PredSpec, Template, TemplateRel};
use crate::{Workload, WorkloadSpec};

/// The template numbers retained in the paper's Stack selection.
pub const TEMPLATE_IDS: [u32; 12] = [1, 4, 5, 6, 7, 8, 11, 12, 13, 14, 15, 16];

fn schema(spec: &WorkloadSpec) -> DbBuilder {
    let mut b = DbBuilder::new();
    let r = |base: usize| spec.rows(base);
    let sites = r(64).max(16) as u64;
    let users = r(6000) as u64;
    let questions = r(12_000) as u64;
    let tags = r(500) as u64;
    b.table(
        "site",
        sites as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("grp", D::Uniform { lo: 0, hi: 7 }),
        ],
    );
    b.table(
        "so_user",
        users as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain(
                "site_id",
                D::ForeignKeyZipf {
                    target_rows: sites,
                    s: 1.2,
                },
            ),
            Col::plain("reputation", D::Zipf { n: 1000, s: 1.3 }),
        ],
    );
    b.table(
        "question",
        questions as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain(
                "site_id",
                D::ForeignKeyZipf {
                    target_rows: sites,
                    s: 1.2,
                },
            ),
            Col::indexed(
                "owner_id",
                D::ForeignKeyZipf {
                    target_rows: users,
                    s: 1.2,
                },
            ),
            Col::plain("score", D::Zipf { n: 200, s: 1.1 }),
        ],
    );
    b.table(
        "tag",
        tags as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain(
                "site_id",
                D::ForeignKeyZipf {
                    target_rows: sites,
                    s: 1.0,
                },
            ),
        ],
    );
    b.table(
        "answer",
        r(20_000),
        vec![
            Col::indexed(
                "question_id",
                D::ForeignKeyZipf {
                    target_rows: questions,
                    s: 1.15,
                },
            ),
            Col::indexed(
                "owner_id",
                D::ForeignKeyZipf {
                    target_rows: users,
                    s: 1.25,
                },
            ),
            Col::plain("score", D::Zipf { n: 100, s: 1.0 }),
        ],
    );
    b.table(
        "tag_question",
        r(18_000),
        vec![
            Col::indexed(
                "tag_id",
                D::ForeignKeyZipf {
                    target_rows: tags,
                    s: 1.2,
                },
            ),
            Col::indexed(
                "question_id",
                D::ForeignKeyZipf {
                    target_rows: questions,
                    s: 1.1,
                },
            ),
        ],
    );
    b.table(
        "badge",
        r(8000),
        vec![
            Col::indexed(
                "user_id",
                D::ForeignKeyZipf {
                    target_rows: users,
                    s: 1.2,
                },
            ),
            Col::plain("grp", D::Zipf { n: 50, s: 0.9 }),
        ],
    );
    b.table(
        "comment",
        r(15_000),
        vec![
            Col::indexed(
                "post_id",
                D::ForeignKeyZipf {
                    target_rows: questions,
                    s: 1.2,
                },
            ),
            Col::plain(
                "user_id",
                D::ForeignKeyZipf {
                    target_rows: users,
                    s: 1.2,
                },
            ),
        ],
    );
    b.table(
        "post_link",
        r(3000),
        vec![
            Col::indexed(
                "question_from",
                D::ForeignKeyZipf {
                    target_rows: questions,
                    s: 1.0,
                },
            ),
            Col::plain(
                "question_to",
                D::ForeignKeyUniform {
                    target_rows: questions,
                },
            ),
        ],
    );
    b.table(
        "vote",
        r(10_000),
        vec![
            Col::indexed(
                "question_id",
                D::ForeignKeyZipf {
                    target_rows: questions,
                    s: 1.25,
                },
            ),
            Col::plain("vote_type", D::Uniform { lo: 0, hi: 3 }),
        ],
    );
    b
}

/// Build the 12 templates.
pub fn templates() -> Vec<Template> {
    // question columns: id=0 site_id=1 owner_id=2 score=3
    // so_user columns: id=0 site_id=1 reputation=2
    let mut out = Vec::with_capacity(TEMPLATE_IDS.len());
    for (k, &id) in TEMPLATE_IDS.iter().enumerate() {
        let mut rels = vec![TemplateRel::new("question", "q").pred(PredSpec::EqSkewed {
            column: 3,
            lo: 0,
            hi: 50,
        })];
        let mut joins = Vec::new();
        // Every template joins answers (the workhorse join in Stack).
        let a = rels.len();
        rels.push(TemplateRel::new("answer", "a").pred(PredSpec::EqSkewed {
            column: 2,
            lo: 0,
            hi: 20,
        }));
        joins.push((0, 0, a, 0));
        if k % 2 == 0 {
            let u = rels.len();
            rels.push(TemplateRel::new("so_user", "u").pred(PredSpec::EqSkewed {
                column: 2,
                lo: 0,
                hi: 100,
            }));
            joins.push((0, 2, u, 0));
        }
        if k % 3 == 0 {
            let tq = rels.len();
            rels.push(TemplateRel::new("tag_question", "tq"));
            joins.push((0, 0, tq, 1));
            let t = rels.len();
            rels.push(TemplateRel::new("tag", "t"));
            joins.push((tq, 0, t, 0));
        }
        if k % 4 == 1 {
            let c = rels.len();
            rels.push(TemplateRel::new("comment", "c"));
            joins.push((0, 0, c, 0));
        }
        if k % 5 == 2 {
            let s = rels.len();
            rels.push(TemplateRel::new("site", "s"));
            joins.push((0, 1, s, 0));
        }
        if k % 6 == 3 {
            let v = rels.len();
            rels.push(TemplateRel::new("vote", "v"));
            joins.push((0, 0, v, 0));
        }
        if k % 4 == 2 {
            let pl = rels.len();
            rels.push(TemplateRel::new("post_link", "pl"));
            joins.push((0, 0, pl, 0));
        }
        if k >= 8 {
            // Later templates join the badge table through the user.
            let u2 = rels.len();
            rels.push(TemplateRel::new("so_user", "u2"));
            joins.push((a, 1, u2, 0));
            let bd = rels.len();
            rels.push(TemplateRel::new("badge", "b").pred(PredSpec::EqSkewed {
                column: 1,
                lo: 0,
                hi: 25,
            }));
            joins.push((u2, 0, bd, 0));
        }
        out.push(Template { id, rels, joins });
    }
    out
}

/// Materialise Stack-lite: 10 queries per template, 8/2 split.
pub fn build(spec: WorkloadSpec) -> Result<Workload> {
    let (schema, db, optimizer) = schema(&spec).build(spec.seed)?;
    let stream = foss_common::SeedStream::new(spec.seed);
    let mut rng = StdRng::seed_from_u64(stream.derive("stack-queries"));
    let templates = templates();
    let queries = instantiate_all(&templates, &schema, 10, &mut rng)?;
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, q) in queries.into_iter().enumerate() {
        if i % 10 >= 8 {
            test.push(q);
        } else {
            train.push(q);
        }
    }
    let max_relations = train
        .iter()
        .chain(&test)
        .map(|q| q.relation_count())
        .max()
        .unwrap_or(2);
    Ok(Workload {
        name: "stacklite".into(),
        db,
        optimizer,
        train,
        test,
        max_relations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_templates_with_paper_ids() {
        let ts = templates();
        assert_eq!(ts.len(), 12);
        assert_eq!(
            ts.iter().map(|t| t.id).collect::<Vec<_>>(),
            TEMPLATE_IDS.to_vec()
        );
    }

    #[test]
    fn heavy_tail_in_answers() {
        let wl = build(WorkloadSpec::tiny(1)).unwrap();
        let schema = wl.db.schema();
        let ans = wl.db.table(schema.table_id("answer").unwrap());
        let col = ans.column(0);
        let hot: usize = col.values().iter().filter(|&&v| v < 10).count();
        // The 10 hottest questions should own a clearly outsized share.
        assert!(
            hot as f64 > col.len() as f64 * 0.05,
            "hot={hot}/{}",
            col.len()
        );
    }

    #[test]
    fn split_is_eight_to_two() {
        let wl = build(WorkloadSpec::tiny(2)).unwrap();
        assert_eq!(wl.train.len(), 96);
        assert_eq!(wl.test.len(), 24);
        for q in wl.all_queries() {
            q.validate(wl.db.schema()).unwrap();
        }
    }
}
