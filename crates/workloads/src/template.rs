//! Query templates and their instantiation.
//!
//! A template fixes the relational shape (tables, aliases, join edges) and
//! describes predicates as *distributions*; instantiation draws concrete
//! constants, yielding the N-queries-per-template structure of JOB, TPC-DS
//! and Stack.

use foss_catalog::Schema;
use foss_common::{QueryId, Result};
use foss_query::{Predicate, Query, QueryBuilder};
use rand::rngs::StdRng;
use rand::RngExt;

/// How a predicate constant is drawn at instantiation time.
#[derive(Debug, Clone, Copy)]
pub enum PredSpec {
    /// `col = U[lo, hi]`.
    EqUniform {
        /// Column index.
        column: usize,
        /// Inclusive lower bound of the constant.
        lo: i64,
        /// Inclusive upper bound of the constant.
        hi: i64,
    },
    /// `col = floor(|N(0, (hi−lo)/6)|) + lo` — biased towards small values,
    /// matching Zipf-distributed columns (hot constants are queried more).
    EqSkewed {
        /// Column index.
        column: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// `col BETWEEN x AND x + w` with `x` uniform and `w ∈ [min_w, max_w]`.
    Range {
        /// Column index.
        column: usize,
        /// Domain lower bound.
        lo: i64,
        /// Domain upper bound.
        hi: i64,
        /// Minimum range width.
        min_w: i64,
        /// Maximum range width.
        max_w: i64,
    },
}

impl PredSpec {
    fn draw(&self, rng: &mut StdRng) -> Predicate {
        match *self {
            PredSpec::EqUniform { column, lo, hi } => Predicate::Eq {
                column,
                value: rng.random_range(lo..=hi),
            },
            PredSpec::EqSkewed { column, lo, hi } => {
                // Square a uniform draw: density ~ 1/sqrt, biased low.
                let span = (hi - lo).max(1) as f64;
                let u: f64 = rng.random_range(0.0..1.0);
                let v = lo + (u * u * span) as i64;
                Predicate::Eq {
                    column,
                    value: v.min(hi),
                }
            }
            PredSpec::Range {
                column,
                lo,
                hi,
                min_w,
                max_w,
            } => {
                let w = rng.random_range(min_w..=max_w);
                let start = rng.random_range(lo..=(hi - w).max(lo));
                Predicate::Range {
                    column,
                    lo: start,
                    hi: start + w,
                }
            }
        }
    }
}

/// One relation of a template.
#[derive(Debug, Clone)]
pub struct TemplateRel {
    /// Base table name.
    pub table: String,
    /// Alias (unique within the template).
    pub alias: String,
    /// Predicate distributions.
    pub preds: Vec<PredSpec>,
}

impl TemplateRel {
    /// Convenience constructor.
    pub fn new(table: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            alias: alias.into(),
            preds: Vec::new(),
        }
    }

    /// Attach a predicate spec.
    pub fn pred(mut self, p: PredSpec) -> Self {
        self.preds.push(p);
        self
    }
}

/// A query template: relations + join edges (by relation index + column).
#[derive(Debug, Clone)]
pub struct Template {
    /// Template number (as reported in result tables).
    pub id: u32,
    /// Relations.
    pub rels: Vec<TemplateRel>,
    /// Join edges `(rel_a, col_a, rel_b, col_b)`.
    pub joins: Vec<(usize, usize, usize, usize)>,
}

impl Template {
    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.rels.len()
    }

    /// Draw one concrete query.
    pub fn instantiate(&self, schema: &Schema, qid: QueryId, rng: &mut StdRng) -> Result<Query> {
        let mut qb = QueryBuilder::new(qid, self.id);
        let mut rel_idx = Vec::with_capacity(self.rels.len());
        for rel in &self.rels {
            let table = schema.table_id(&rel.table)?;
            let idx = qb.relation(table, rel.alias.clone());
            for spec in &rel.preds {
                qb.predicate(idx, spec.draw(rng));
            }
            rel_idx.push(idx);
        }
        for &(a, ca, b, cb) in &self.joins {
            qb.join(rel_idx[a], ca, rel_idx[b], cb);
        }
        qb.build(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, TableDef};
    use rand::SeedableRng;

    fn schema() -> Schema {
        let mut s = Schema::new();
        for name in ["x", "y"] {
            s.add_table(TableDef {
                name: name.into(),
                columns: vec![ColumnDef::indexed("id"), ColumnDef::plain("v")],
            })
            .unwrap();
        }
        s
    }

    fn template() -> Template {
        Template {
            id: 9,
            rels: vec![
                TemplateRel::new("x", "x1").pred(PredSpec::EqUniform {
                    column: 1,
                    lo: 0,
                    hi: 9,
                }),
                TemplateRel::new("y", "y1").pred(PredSpec::Range {
                    column: 1,
                    lo: 0,
                    hi: 100,
                    min_w: 5,
                    max_w: 20,
                }),
            ],
            joins: vec![(0, 0, 1, 1)],
        }
    }

    #[test]
    fn instantiation_produces_valid_queries() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(3);
        let q = template()
            .instantiate(&s, QueryId::new(0), &mut rng)
            .unwrap();
        assert_eq!(q.template, 9);
        assert_eq!(q.relation_count(), 2);
        assert_eq!(q.relations[0].predicates.len(), 1);
        assert_eq!(q.relations[1].predicates.len(), 1);
    }

    #[test]
    fn different_draws_differ_and_seeds_repeat() {
        let s = schema();
        let t = template();
        let mut rng = StdRng::seed_from_u64(5);
        let a = t.instantiate(&s, QueryId::new(0), &mut rng).unwrap();
        let b = t.instantiate(&s, QueryId::new(1), &mut rng).unwrap();
        assert_ne!(a.relations[0].predicates, b.relations[0].predicates);
        let mut rng2 = StdRng::seed_from_u64(5);
        let a2 = t.instantiate(&s, QueryId::new(0), &mut rng2).unwrap();
        assert_eq!(a.relations[0].predicates, a2.relations[0].predicates);
    }

    #[test]
    fn skewed_pred_prefers_small_constants() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(7);
        let spec = PredSpec::EqSkewed {
            column: 1,
            lo: 0,
            hi: 100,
        };
        let mut small = 0;
        for _ in 0..500 {
            if let Predicate::Eq { value, .. } = spec.draw(&mut rng) {
                if value < 25 {
                    small += 1;
                }
            }
            let _ = &s;
        }
        assert!(small > 200, "small constants drawn only {small}/500 times");
    }

    #[test]
    fn range_bounds_are_ordered() {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = PredSpec::Range {
            column: 0,
            lo: 0,
            hi: 50,
            min_w: 1,
            max_w: 10,
        };
        for _ in 0..100 {
            if let Predicate::Range { lo, hi, .. } = spec.draw(&mut rng) {
                assert!(lo <= hi);
            }
        }
    }
}
