//! Benchmark workloads: JOB-lite, TPC-DS-lite, Stack-lite, DSB-lite and
//! skew-stress.
//!
//! The first three are synthetic stand-ins for the paper's benchmarks,
//! built to preserve what makes each hard (or easy) for a traditional
//! optimizer; the last two extend the scenario matrix towards correlated
//! and extreme-skew regimes:
//!
//! * **JOB-lite** (`joblite`) — the IMDb shape: 21 tables around a `title`
//!   hub, Zipf-skewed fan-outs and correlated predicates, 33 templates /
//!   113 queries with Balsa's 94/19 random split. Skew + correlation break
//!   the independence assumption, so the expert's plans leave headroom.
//! * **TPC-DS-lite** (`tpcdslite`) — three fact tables over shared
//!   dimensions, mild skew, 19 templates × 6 queries (5/1 per template).
//!   The expert is already close to optimal here (paper: WRL ≈ 0.87).
//! * **Stack-lite** (`stacklite`) — StackExchange shape: heavy-tailed user /
//!   question activity, 12 templates × 10 queries (8/2 per template).
//! * **DSB-lite** (`dsblite`) — the TPC-DS star/snowflake regenerated with
//!   DSB-style hostile statistics: correlated column pairs and jointly
//!   Zipf-skewed fact foreign keys, 15 templates × 6 queries (5/1 per
//!   template), every template filtering both halves of a correlated pair.
//! * **Skew-stress** (`skewstress`) — a small-schema stress instrument:
//!   extreme heavy-tail join keys (Zipf s ≥ 1.5) and range predicates with
//!   order-of-magnitude selectivity spreads, 10 templates × 8 queries
//!   (6/2 per template).
//!
//! Workloads are materialised by canonical name through
//! [`Workload::by_name`] (the registry every binary and runner routes
//! through); [`WORKLOAD_NAMES`] lists the valid names. Queries are generated
//! from explicit templates via [`template`], fully deterministic from the
//! workload seed.

pub(crate) mod builder;
pub mod dsblite;
pub mod joblite;
pub mod metrics;
pub mod skewstress;
pub mod stacklite;
pub mod template;
pub mod tpcdslite;

use std::sync::Arc;

use foss_common::Result;
use foss_executor::Database;
use foss_optimizer::TraditionalOptimizer;
use foss_query::Query;

pub use metrics::{geometric_mean_relevant_latency, workload_relevant_latency, QueryOutcome};
pub use template::{PredSpec, Template, TemplateRel};

/// Canonical workload names, in presentation order. The single source of
/// truth for every `--workload` flag, runner loop and error message.
pub const WORKLOAD_NAMES: [&str; 5] =
    ["joblite", "tpcdslite", "stacklite", "dsblite", "skewstress"];

/// A fully materialised benchmark: data, expert optimizer, query splits.
pub struct Workload {
    /// Benchmark name (one of [`WORKLOAD_NAMES`]).
    pub name: String,
    /// The stored database (tables, indexes, statistics).
    pub db: Arc<Database>,
    /// The expert engine bound to this database's statistics.
    pub optimizer: Arc<TraditionalOptimizer>,
    /// Training queries.
    pub train: Vec<Query>,
    /// Held-out test queries.
    pub test: Vec<Query>,
    /// Largest relation count across all queries (sizes action spaces).
    pub max_relations: usize,
}

impl Workload {
    /// Materialise a workload by registry name.
    ///
    /// This is the one place workload names are interpreted — harness
    /// runners, bench binaries and the service front end all route through
    /// it, so a typo gets one helpful error instead of five divergent
    /// `match` arms:
    ///
    /// ```text
    /// unknown name: workload `tpcds` — valid workloads: joblite,
    /// tpcdslite, stacklite, dsblite, skewstress
    /// ```
    pub fn by_name(name: &str, spec: WorkloadSpec) -> Result<Self> {
        match name {
            "joblite" => joblite::build(spec),
            "tpcdslite" => tpcdslite::build(spec),
            "stacklite" => stacklite::build(spec),
            "dsblite" => dsblite::build(spec),
            "skewstress" => skewstress::build(spec),
            other => Err(foss_common::FossError::UnknownName(format!(
                "workload `{other}` — valid workloads: {}",
                WORKLOAD_NAMES.join(", ")
            ))),
        }
    }

    /// Train + test queries, train first.
    pub fn all_queries(&self) -> Vec<Query> {
        let mut all = self.train.clone();
        all.extend(self.test.iter().cloned());
        all
    }

    /// Per-table row counts (feeds FOSS's plan encoder).
    pub fn table_rows(&self) -> Vec<u64> {
        self.db.stats().iter().map(|s| s.row_count).collect()
    }

    /// Number of base tables.
    pub fn table_count(&self) -> usize {
        self.db.schema().table_count()
    }
}

/// Scale factor applied to every generated table (1.0 = defaults; smaller
/// values make unit tests fast).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Experiment seed.
    pub seed: u64,
    /// Row-count multiplier.
    pub scale: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            seed: 42,
            scale: 1.0,
        }
    }
}

impl WorkloadSpec {
    /// Spec with an explicit seed at full scale.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, scale: 1.0 }
    }

    /// Tiny variant for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self { seed, scale: 0.1 }
    }

    pub(crate) fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_workloads_materialise_by_name() {
        for name in WORKLOAD_NAMES {
            let wl = Workload::by_name(name, WorkloadSpec::tiny(1)).expect("workload builds");
            assert_eq!(wl.name, name);
            assert!(!wl.train.is_empty());
            assert!(!wl.test.is_empty());
            assert!(wl.max_relations >= 3);
            assert!(wl.table_count() > 5);
            assert_eq!(wl.table_rows().len(), wl.table_count());
        }
    }

    #[test]
    fn unknown_name_lists_valid_workloads() {
        let msg = match Workload::by_name("tpcds", WorkloadSpec::tiny(1)) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("typo should not resolve to a workload"),
        };
        for name in WORKLOAD_NAMES {
            assert!(msg.contains(name), "error {msg:?} should list {name}");
        }
    }

    #[test]
    fn query_counts_match_paper_structure() {
        let job = joblite::build(WorkloadSpec::tiny(2)).unwrap();
        assert_eq!(job.train.len() + job.test.len(), 113);
        assert_eq!(job.test.len(), 19);
        let tpcds = tpcdslite::build(WorkloadSpec::tiny(2)).unwrap();
        assert_eq!(tpcds.train.len(), 19 * 5);
        assert_eq!(tpcds.test.len(), 19);
        let stack = stacklite::build(WorkloadSpec::tiny(2)).unwrap();
        assert_eq!(stack.train.len(), 12 * 8);
        assert_eq!(stack.test.len(), 12 * 2);
        let dsb = dsblite::build(WorkloadSpec::tiny(2)).unwrap();
        assert_eq!(dsb.train.len(), 15 * 5);
        assert_eq!(dsb.test.len(), 15);
        let stress = skewstress::build(WorkloadSpec::tiny(2)).unwrap();
        assert_eq!(stress.train.len(), 10 * 6);
        assert_eq!(stress.test.len(), 10 * 2);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = joblite::build(WorkloadSpec::tiny(7)).unwrap();
        let b = joblite::build(WorkloadSpec::tiny(7)).unwrap();
        assert_eq!(a.train.len(), b.train.len());
        for (qa, qb) in a.train.iter().zip(&b.train) {
            assert_eq!(qa, qb);
        }
        let c = joblite::build(WorkloadSpec::tiny(8)).unwrap();
        // Different seed shuffles the split differently.
        assert!(a.train.iter().zip(&c.train).any(|(x, y)| x != y));
    }

    #[test]
    fn every_query_plans_and_executes() {
        use foss_executor::Executor;
        let wl = tpcdslite::build(WorkloadSpec::tiny(3)).unwrap();
        let exec = Executor::new(&wl.db, *wl.optimizer.cost_model());
        for q in wl.all_queries().iter().take(12) {
            let plan = wl.optimizer.optimize(q).expect("plans");
            let out = exec.execute(q, &plan, None).expect("executes");
            assert!(out.latency > 0.0);
        }
    }
}
