//! The paper's evaluation metrics (§VI-A Metrics).
//!
//! * **GMRL** — Geometric Mean Relevant Latency: per-query latency ratio vs
//!   the expert, geometric-averaged. Query-level optimisation quality.
//! * **WRL** — Workload Relevant Latency: total (latency + optimisation
//!   time) ratio over the whole workload. Dominated by the heavy queries.
//!
//! For both, < 1 beats the expert optimizer.

/// One query's measurement for a learned optimizer vs the expert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOutcome {
    /// Learned optimizer's execution latency (`ET_l`).
    pub learned_latency: f64,
    /// Expert's execution latency (`ET_e`).
    pub expert_latency: f64,
    /// Learned optimizer's optimisation (planning) time (`OT_l`).
    pub learned_opt_time: f64,
    /// Expert's optimisation time (`OT_e`).
    pub expert_opt_time: f64,
}

/// `GMRL = (∏ ET_l / ET_e)^(1/|W|)`.
pub fn geometric_mean_relevant_latency(outcomes: &[QueryOutcome]) -> f64 {
    assert!(!outcomes.is_empty(), "GMRL over empty workload");
    let log_sum: f64 = outcomes
        .iter()
        .map(|o| (o.learned_latency.max(1e-12) / o.expert_latency.max(1e-12)).ln())
        .sum();
    (log_sum / outcomes.len() as f64).exp()
}

/// `WRL = Σ(ET_l + OT_l) / Σ(ET_e + OT_e)`.
pub fn workload_relevant_latency(outcomes: &[QueryOutcome]) -> f64 {
    assert!(!outcomes.is_empty(), "WRL over empty workload");
    let num: f64 = outcomes
        .iter()
        .map(|o| o.learned_latency + o.learned_opt_time)
        .sum();
    let den: f64 = outcomes
        .iter()
        .map(|o| o.expert_latency + o.expert_opt_time)
        .sum();
    num / den.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(l: f64, e: f64) -> QueryOutcome {
        QueryOutcome {
            learned_latency: l,
            expert_latency: e,
            learned_opt_time: 0.0,
            expert_opt_time: 0.0,
        }
    }

    #[test]
    fn identical_latencies_give_unity() {
        let out = vec![o(10.0, 10.0), o(5.0, 5.0)];
        assert!((geometric_mean_relevant_latency(&out) - 1.0).abs() < 1e-12);
        assert!((workload_relevant_latency(&out) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gmrl_is_geometric() {
        // Ratios 0.25 and 4.0 cancel geometrically.
        let out = vec![o(25.0, 100.0), o(400.0, 100.0)];
        assert!((geometric_mean_relevant_latency(&out) - 1.0).abs() < 1e-9);
        // WRL is dominated by totals instead: (25+400)/(200) = 2.125.
        assert!((workload_relevant_latency(&out) - 2.125).abs() < 1e-9);
    }

    #[test]
    fn wrl_includes_optimisation_time() {
        let out = vec![QueryOutcome {
            learned_latency: 50.0,
            expert_latency: 100.0,
            learned_opt_time: 50.0,
            expert_opt_time: 0.0,
        }];
        // Latency halved, but planning overhead eats the gain.
        assert!((workload_relevant_latency(&out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn better_everywhere_is_below_one() {
        let out = vec![o(50.0, 100.0), o(5.0, 20.0)];
        assert!(geometric_mean_relevant_latency(&out) < 1.0);
        assert!(workload_relevant_latency(&out) < 1.0);
    }
}
