//! Internal helper shared by the three workload definitions: declare tables
//! once and get schema + generated data + database + expert optimizer.

use std::sync::Arc;

use foss_catalog::{ColumnDef, ForeignKey, Schema, TableDef};
use foss_common::Result;
use foss_executor::Database;
use foss_optimizer::{CardinalityEstimator, CostModel, TraditionalOptimizer};
use foss_storage::{ColumnSpec, Distribution, TableGenerator};

/// One declared column: schema definition + data distribution.
pub(crate) struct Col {
    pub def: ColumnDef,
    pub dist: Distribution,
}

impl Col {
    pub fn indexed(name: &str, dist: Distribution) -> Self {
        Self {
            def: ColumnDef::indexed(name),
            dist,
        }
    }

    pub fn plain(name: &str, dist: Distribution) -> Self {
        Self {
            def: ColumnDef::plain(name),
            dist,
        }
    }
}

/// Declarative database builder.
pub(crate) struct DbBuilder {
    tables: Vec<(String, usize, Vec<Col>)>,
    fks: Vec<(String, String, String, String)>,
}

impl DbBuilder {
    pub fn new() -> Self {
        Self {
            tables: Vec::new(),
            fks: Vec::new(),
        }
    }

    /// Declare a table.
    pub fn table(&mut self, name: &str, rows: usize, cols: Vec<Col>) -> &mut Self {
        self.tables.push((name.to_string(), rows, cols));
        self
    }

    /// Declare a foreign key (by names) — recorded in the schema's join
    /// graph for documentation; templates join explicitly by column index.
    pub fn fk(&mut self, from: &str, from_col: &str, to: &str, to_col: &str) -> &mut Self {
        self.fks.push((
            from.to_string(),
            from_col.to_string(),
            to.to_string(),
            to_col.to_string(),
        ));
        self
    }

    /// Generate data and assemble the database + optimizer.
    pub fn build(
        self,
        seed: u64,
    ) -> Result<(Arc<Schema>, Arc<Database>, Arc<TraditionalOptimizer>)> {
        let mut schema = Schema::new();
        for (name, _, cols) in &self.tables {
            schema.add_table(TableDef {
                name: name.clone(),
                columns: cols.iter().map(|c| c.def.clone()).collect(),
            })?;
        }
        for (from, from_col, to, to_col) in &self.fks {
            let ft = schema.table_id(from)?;
            let tt = schema.table_id(to)?;
            let fc = schema
                .table(ft)
                .column_index(from_col)
                .ok_or_else(|| foss_common::FossError::UnknownName(from_col.clone()))?;
            let tc = schema
                .table(tt)
                .column_index(to_col)
                .ok_or_else(|| foss_common::FossError::UnknownName(to_col.clone()))?;
            schema.add_foreign_key(ForeignKey {
                from_table: ft,
                from_column: fc,
                to_table: tt,
                to_column: tc,
            })?;
        }
        let schema = Arc::new(schema);
        let gen = TableGenerator::new(seed);
        let mut tables = Vec::with_capacity(self.tables.len());
        for (name, rows, cols) in &self.tables {
            let specs: Vec<ColumnSpec> = cols
                .iter()
                .map(|c| ColumnSpec::new(c.def.name.clone(), c.dist.clone()))
                .collect();
            tables.push(gen.generate(name, *rows, &specs)?);
        }
        let db = Arc::new(Database::new(schema.clone(), tables, 32)?);
        let optimizer = Arc::new(TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(db.stats_vec()),
            CostModel::default(),
        ));
        Ok((schema, db, optimizer))
    }
}

/// Instantiate `per_template` queries from each template, assigning
/// sequential query ids.
pub(crate) fn instantiate_all(
    templates: &[crate::template::Template],
    schema: &Schema,
    per_template: usize,
    rng: &mut rand::rngs::StdRng,
) -> Result<Vec<foss_query::Query>> {
    let mut queries = Vec::with_capacity(templates.len() * per_template);
    let mut qid = 0usize;
    for t in templates {
        for _ in 0..per_template {
            queries.push(t.instantiate(schema, foss_common::QueryId::new(qid), rng)?);
            qid += 1;
        }
    }
    Ok(queries)
}
