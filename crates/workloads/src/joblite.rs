//! JOB-lite: the IMDb-shaped workload (21 tables, 33 templates, 113 queries).
//!
//! Matches the Join Order Benchmark's structural recipe:
//!
//! * a `title` hub with many-to-many satellite facts (`cast_info`,
//!   `movie_info`, `movie_keyword`, `movie_companies`, …) and small
//!   dimension tables,
//! * Zipf-skewed foreign keys (a few blockbuster titles own most cast and
//!   info rows) so join fan-outs are wildly non-uniform,
//! * skew-correlated predicates (hot constants are queried more often),
//!
//! which together defeat per-column histograms + independence — the expert's
//! plans on JOB-lite leave real room for the plan doctor, as Table I of the
//! paper shows for real JOB (FOSS WRL 0.16).

use foss_common::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use foss_storage::Distribution as D;

use crate::builder::{Col, DbBuilder};
use crate::template::{PredSpec, Template, TemplateRel};
use crate::{Workload, WorkloadSpec};

/// Number of individual queries, matching JOB.
pub const QUERY_COUNT: usize = 113;
/// Test-split size, matching Balsa's random partition of JOB.
pub const TEST_COUNT: usize = 19;

fn schema(spec: &WorkloadSpec) -> DbBuilder {
    let mut b = DbBuilder::new();
    let r = |base: usize| spec.rows(base);
    // Dimension tables.
    b.table(
        "kind_type",
        r(8).min(8),
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("kind", D::Uniform { lo: 0, hi: 7 }),
        ],
    );
    b.table(
        "company_type",
        r(8).min(8),
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("kind", D::Uniform { lo: 0, hi: 3 }),
        ],
    );
    b.table(
        "info_type",
        r(110),
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("grp", D::Uniform { lo: 0, hi: 10 }),
        ],
    );
    b.table(
        "link_type",
        r(18).min(18),
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("grp", D::Uniform { lo: 0, hi: 5 }),
        ],
    );
    b.table(
        "role_type",
        r(12).min(12),
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("grp", D::Uniform { lo: 0, hi: 3 }),
        ],
    );
    b.table(
        "comp_cast_type",
        r(8).min(4),
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("kind", D::Uniform { lo: 0, hi: 3 }),
        ],
    );
    b.table(
        "keyword",
        r(3000),
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("grp", D::Zipf { n: 200, s: 1.1 }),
        ],
    );
    b.table(
        "company_name",
        r(2000),
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("country", D::Zipf { n: 60, s: 1.2 }),
        ],
    );
    b.table(
        "name",
        r(8000),
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("gender", D::Uniform { lo: 0, hi: 2 }),
            Col::plain("grp", D::Zipf { n: 500, s: 1.0 }),
        ],
    );
    b.table(
        "char_name",
        r(4000),
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("grp", D::Zipf { n: 300, s: 1.0 }),
        ],
    );
    // The hub.
    let titles = r(8000) as u64;
    b.table(
        "title",
        titles as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain(
                "kind_id",
                D::ForeignKeyZipf {
                    target_rows: 8,
                    s: 0.9,
                },
            ),
            Col::plain("production_year", D::Zipf { n: 140, s: 0.6 }), // 0 = recent
            Col::plain("grp", D::Zipf { n: 400, s: 1.0 }),
        ],
    );
    let names = r(8000) as u64;
    let keywords = r(3000) as u64;
    let companies = r(2000) as u64;
    let info_types = r(110) as u64;
    // Satellite facts (movie_id indexed to admit index nested loops).
    b.table(
        "movie_companies",
        r(12_000),
        vec![
            Col::indexed(
                "movie_id",
                D::ForeignKeyZipf {
                    target_rows: titles,
                    s: 1.05,
                },
            ),
            Col::plain(
                "company_id",
                D::ForeignKeyZipf {
                    target_rows: companies,
                    s: 1.1,
                },
            ),
            Col::plain("company_type_id", D::ForeignKeyUniform { target_rows: 4 }),
        ],
    );
    b.table(
        "movie_info",
        r(16_000),
        vec![
            Col::indexed(
                "movie_id",
                D::ForeignKeyZipf {
                    target_rows: titles,
                    s: 1.0,
                },
            ),
            Col::plain(
                "info_type_id",
                D::ForeignKeyZipf {
                    target_rows: info_types,
                    s: 1.2,
                },
            ),
            Col::plain("val", D::Zipf { n: 1000, s: 1.1 }),
        ],
    );
    b.table(
        "movie_info_idx",
        r(6000),
        vec![
            Col::indexed(
                "movie_id",
                D::ForeignKeyZipf {
                    target_rows: titles,
                    s: 0.9,
                },
            ),
            Col::plain(
                "info_type_id",
                D::ForeignKeyZipf {
                    target_rows: info_types,
                    s: 1.0,
                },
            ),
            Col::plain("val", D::Zipf { n: 100, s: 0.8 }),
        ],
    );
    b.table(
        "movie_keyword",
        r(12_000),
        vec![
            Col::indexed(
                "movie_id",
                D::ForeignKeyZipf {
                    target_rows: titles,
                    s: 1.1,
                },
            ),
            Col::plain(
                "keyword_id",
                D::ForeignKeyZipf {
                    target_rows: keywords,
                    s: 1.1,
                },
            ),
        ],
    );
    b.table(
        "cast_info",
        r(25_000),
        vec![
            Col::indexed(
                "movie_id",
                D::ForeignKeyZipf {
                    target_rows: titles,
                    s: 1.1,
                },
            ),
            Col::indexed(
                "person_id",
                D::ForeignKeyZipf {
                    target_rows: names,
                    s: 1.05,
                },
            ),
            Col::plain("role_id", D::ForeignKeyUniform { target_rows: 12 }),
        ],
    );
    b.table(
        "complete_cast",
        r(1500),
        vec![
            Col::indexed(
                "movie_id",
                D::ForeignKeyZipf {
                    target_rows: titles,
                    s: 0.8,
                },
            ),
            Col::plain("subject_id", D::ForeignKeyUniform { target_rows: 4 }),
        ],
    );
    b.table(
        "movie_link",
        r(1500),
        vec![
            Col::indexed(
                "movie_id",
                D::ForeignKeyZipf {
                    target_rows: titles,
                    s: 0.9,
                },
            ),
            Col::plain(
                "linked_movie_id",
                D::ForeignKeyUniform {
                    target_rows: titles,
                },
            ),
            Col::plain("link_type_id", D::ForeignKeyUniform { target_rows: 18 }),
        ],
    );
    b.table(
        "person_info",
        r(8000),
        vec![
            Col::indexed(
                "person_id",
                D::ForeignKeyZipf {
                    target_rows: names,
                    s: 1.1,
                },
            ),
            Col::plain(
                "info_type_id",
                D::ForeignKeyUniform {
                    target_rows: info_types,
                },
            ),
        ],
    );
    b.table(
        "aka_name",
        r(3000),
        vec![
            Col::indexed(
                "person_id",
                D::ForeignKeyZipf {
                    target_rows: names,
                    s: 1.0,
                },
            ),
            Col::plain("grp", D::Uniform { lo: 0, hi: 50 }),
        ],
    );
    b.table(
        "aka_title",
        r(2000),
        vec![
            Col::indexed(
                "movie_id",
                D::ForeignKeyZipf {
                    target_rows: titles,
                    s: 0.9,
                },
            ),
            Col::plain("grp", D::Uniform { lo: 0, hi: 50 }),
        ],
    );
    // FK graph (for documentation / tooling).
    b.fk("movie_companies", "movie_id", "title", "id");
    b.fk("movie_companies", "company_id", "company_name", "id");
    b.fk("movie_info", "movie_id", "title", "id");
    b.fk("movie_keyword", "movie_id", "title", "id");
    b.fk("movie_keyword", "keyword_id", "keyword", "id");
    b.fk("cast_info", "movie_id", "title", "id");
    b.fk("cast_info", "person_id", "name", "id");
    b
}

/// The 33 JOB-lite templates.
///
/// Each template mirrors a JOB family: `title` joined with a combination of
/// satellite facts and their dimensions, with skew-correlated predicates.
/// Relation counts range from 3 to 10 (real JOB: 3–16, mean 8).
pub fn templates() -> Vec<Template> {
    // Building blocks. Each block lists (rels, joins-to-title, preds).
    // Columns: see `schema` — title: id=0 kind_id=1 year=2 grp=3.
    let mut out = Vec::new();
    // Block combos per template (indexes into BLOCKS below) + extra preds.
    const MC: usize = 0; // movie_companies + company_name
    const MCT: usize = 1; // movie_companies + company_name + company_type
    const MI: usize = 2; // movie_info + info_type
    const MIDX: usize = 3; // movie_info_idx + info_type
    const MK: usize = 4; // movie_keyword + keyword
    const CI: usize = 5; // cast_info + name
    const CIR: usize = 6; // cast_info + name + role_type
    const CC: usize = 7; // complete_cast + comp_cast_type
    const ML: usize = 8; // movie_link + link_type
    const AT: usize = 9; // aka_title
    const PI: usize = 10; // person_info (requires CI/CIR)
    const AN: usize = 11; // aka_name (requires CI/CIR)
    const KT: usize = 12; // kind_type dimension on title

    // The 33 combos (template families follow JOB's 1a..33c progression:
    // small chains first, wide stars later).
    let combos: Vec<Vec<usize>> = vec![
        vec![MC],                // 1: t, mc, cn
        vec![MI],                // 2
        vec![MK],                // 3
        vec![MIDX],              // 4
        vec![CI],                // 5
        vec![MC, KT],            // 6
        vec![MI, KT],            // 7
        vec![MK, MI],            // 8
        vec![CI, MK],            // 9
        vec![MC, MI],            // 10
        vec![MCT],               // 11
        vec![CIR],               // 12
        vec![MIDX, MI],          // 13
        vec![MC, MK],            // 14
        vec![CI, MC],            // 15
        vec![CI, MI],            // 16
        vec![CC],                // 17
        vec![ML],                // 18
        vec![AT, MI],            // 19
        vec![CI, PI],            // 20
        vec![CI, AN],            // 21
        vec![MCT, MI],           // 22
        vec![MK, MIDX],          // 23
        vec![CIR, MK],           // 24
        vec![MC, MI, MK],        // 25
        vec![CI, MC, MI],        // 26
        vec![CIR, MC, KT],       // 27
        vec![CC, MK, MI],        // 28
        vec![ML, MK],            // 29
        vec![CI, MI, MIDX],      // 30
        vec![CIR, PI, MK],       // 31
        vec![MCT, MIDX, MK, KT], // 32
        vec![CIR, MC, MI, MK],   // 33
    ];

    for (ti, combo) in combos.iter().enumerate() {
        let id = ti as u32 + 1;
        let mut rels: Vec<TemplateRel> =
            vec![TemplateRel::new("title", "t").pred(PredSpec::EqSkewed {
                column: 2,
                lo: 0,
                hi: 60,
            })];
        let mut joins: Vec<(usize, usize, usize, usize)> = Vec::new();
        let mut ci_name_rel: Option<usize> = None;
        for &block in combo {
            match block {
                MC | MCT => {
                    let mc = rels.len();
                    rels.push(TemplateRel::new("movie_companies", "mc"));
                    joins.push((0, 0, mc, 0)); // t.id = mc.movie_id
                    let cn = rels.len();
                    rels.push(
                        TemplateRel::new("company_name", "cn").pred(PredSpec::EqSkewed {
                            column: 1,
                            lo: 0,
                            hi: 30,
                        }),
                    );
                    joins.push((mc, 1, cn, 0)); // mc.company_id = cn.id
                    if block == MCT {
                        let ct = rels.len();
                        rels.push(TemplateRel::new("company_type", "ct"));
                        joins.push((mc, 2, ct, 0));
                    }
                }
                MI => {
                    let mi = rels.len();
                    rels.push(
                        TemplateRel::new("movie_info", "mi").pred(PredSpec::EqSkewed {
                            column: 2,
                            lo: 0,
                            hi: 200,
                        }),
                    );
                    joins.push((0, 0, mi, 0));
                    let it = rels.len();
                    rels.push(TemplateRel::new("info_type", "it"));
                    joins.push((mi, 1, it, 0));
                }
                MIDX => {
                    let mi = rels.len();
                    rels.push(TemplateRel::new("movie_info_idx", "mi_idx").pred(
                        PredSpec::EqSkewed {
                            column: 2,
                            lo: 0,
                            hi: 40,
                        },
                    ));
                    joins.push((0, 0, mi, 0));
                    let it = rels.len();
                    rels.push(TemplateRel::new("info_type", "it2"));
                    joins.push((mi, 1, it, 0));
                }
                MK => {
                    let mk = rels.len();
                    rels.push(TemplateRel::new("movie_keyword", "mk"));
                    joins.push((0, 0, mk, 0));
                    let k = rels.len();
                    rels.push(TemplateRel::new("keyword", "k").pred(PredSpec::EqSkewed {
                        column: 1,
                        lo: 0,
                        hi: 100,
                    }));
                    joins.push((mk, 1, k, 0));
                }
                CI | CIR => {
                    let ci = rels.len();
                    rels.push(TemplateRel::new("cast_info", "ci"));
                    joins.push((0, 0, ci, 0));
                    let n = rels.len();
                    rels.push(TemplateRel::new("name", "n").pred(PredSpec::EqUniform {
                        column: 1,
                        lo: 0,
                        hi: 2,
                    }));
                    joins.push((ci, 1, n, 0));
                    ci_name_rel = Some(n);
                    if block == CIR {
                        let rt = rels.len();
                        rels.push(TemplateRel::new("role_type", "rt"));
                        joins.push((ci, 2, rt, 0));
                    }
                }
                CC => {
                    let cc = rels.len();
                    rels.push(TemplateRel::new("complete_cast", "cc"));
                    joins.push((0, 0, cc, 0));
                    let cct = rels.len();
                    rels.push(TemplateRel::new("comp_cast_type", "cct"));
                    joins.push((cc, 1, cct, 0));
                }
                ML => {
                    let ml = rels.len();
                    rels.push(TemplateRel::new("movie_link", "ml"));
                    joins.push((0, 0, ml, 0));
                    let lt = rels.len();
                    rels.push(TemplateRel::new("link_type", "lt"));
                    joins.push((ml, 2, lt, 0));
                }
                AT => {
                    let at = rels.len();
                    rels.push(
                        TemplateRel::new("aka_title", "at").pred(PredSpec::EqUniform {
                            column: 1,
                            lo: 0,
                            hi: 25,
                        }),
                    );
                    joins.push((0, 0, at, 0));
                }
                PI => {
                    let n = ci_name_rel.expect("PI requires a CI block first");
                    let pi = rels.len();
                    rels.push(TemplateRel::new("person_info", "pi"));
                    joins.push((n, 0, pi, 0));
                }
                AN => {
                    let n = ci_name_rel.expect("AN requires a CI block first");
                    let an = rels.len();
                    rels.push(
                        TemplateRel::new("aka_name", "an").pred(PredSpec::EqUniform {
                            column: 1,
                            lo: 0,
                            hi: 25,
                        }),
                    );
                    joins.push((n, 0, an, 0));
                }
                KT => {
                    let kt = rels.len();
                    rels.push(TemplateRel::new("kind_type", "kt"));
                    joins.push((0, 1, kt, 0));
                }
                _ => unreachable!(),
            }
        }
        out.push(Template { id, rels, joins });
    }
    out
}

/// Materialise JOB-lite.
pub fn build(spec: WorkloadSpec) -> Result<Workload> {
    let (schema, db, optimizer) = schema(&spec).build(spec.seed)?;
    let stream = foss_common::SeedStream::new(spec.seed);
    let mut rng = StdRng::seed_from_u64(stream.derive("joblite-queries"));
    let templates = templates();
    // JOB has 113 queries over 33 templates (1–6 variants each); we draw
    // 3–4 per template to land exactly on 113.
    let mut queries = Vec::with_capacity(QUERY_COUNT);
    let mut qid = 0usize;
    'outer: loop {
        for t in &templates {
            queries.push(t.instantiate(&schema, foss_common::QueryId::new(qid), &mut rng)?);
            qid += 1;
            if queries.len() == QUERY_COUNT {
                break 'outer;
            }
        }
    }
    // Balsa's random partition: shuffle, 19 held out.
    let mut order: Vec<usize> = (0..queries.len()).collect();
    let mut split_rng = StdRng::seed_from_u64(stream.derive("joblite-split"));
    order.shuffle(&mut split_rng);
    let test_idx: std::collections::HashSet<usize> = order[..TEST_COUNT].iter().copied().collect();
    let mut train = Vec::with_capacity(QUERY_COUNT - TEST_COUNT);
    let mut test = Vec::with_capacity(TEST_COUNT);
    for (i, q) in queries.into_iter().enumerate() {
        if test_idx.contains(&i) {
            test.push(q);
        } else {
            train.push(q);
        }
    }
    let max_relations = train
        .iter()
        .chain(&test)
        .map(|q| q.relation_count())
        .max()
        .unwrap_or(2);
    Ok(Workload {
        name: "joblite".into(),
        db,
        optimizer,
        train,
        test,
        max_relations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_33_templates_with_job_like_sizes() {
        let ts = templates();
        assert_eq!(ts.len(), 33);
        let sizes: Vec<usize> = ts.iter().map(Template::relation_count).collect();
        assert_eq!(*sizes.iter().min().unwrap(), 3);
        assert!(*sizes.iter().max().unwrap() >= 9);
        let mean: f64 = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(mean >= 4.0, "mean template size {mean}");
    }

    #[test]
    fn builds_21_tables() {
        let wl = build(WorkloadSpec::tiny(1)).unwrap();
        assert_eq!(wl.table_count(), 21);
        assert_eq!(wl.name, "joblite");
    }

    #[test]
    fn skew_exists_in_cast_info_fanout() {
        let wl = build(WorkloadSpec::tiny(1)).unwrap();
        let schema = wl.db.schema();
        let ci = wl.db.table(schema.table_id("cast_info").unwrap());
        let col = ci.column(0); // movie_id
        let hot = col.values().iter().filter(|&&v| v == 0).count();
        let rows = col.len();
        // Title 0 should own far more than its uniform share.
        assert!(hot * 20 > rows / 100, "hot={hot} rows={rows}");
    }

    #[test]
    fn queries_validate_against_schema() {
        let wl = build(WorkloadSpec::tiny(4)).unwrap();
        for q in wl.all_queries() {
            q.validate(wl.db.schema()).unwrap();
        }
    }
}
