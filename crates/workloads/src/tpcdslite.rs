//! TPC-DS-lite: the star/snowflake decision-support workload.
//!
//! Three fact tables (`store_sales`, `catalog_sales`, `web_sales`) over
//! shared dimensions, with only mild skew — a workload where the expert
//! optimizer's estimates are good and the doctor's headroom is small, as in
//! the paper (FOSS WRL 0.87 ≈ Bao 0.86 on TPC-DS).
//!
//! 19 templates carrying the paper's selected template numbers
//! (3, 7, 12, 18, 20, 26, 27, 37, 42, 43, 50, 52, 55, 62, 82, 91, 96, 98,
//! 99), 6 queries each, 5 train / 1 test per template.

use foss_common::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;

use foss_storage::Distribution as D;

use crate::builder::{instantiate_all, Col, DbBuilder};
use crate::template::{PredSpec, Template, TemplateRel};
use crate::{Workload, WorkloadSpec};

/// The template numbers used in the paper's TPC-DS selection.
pub const TEMPLATE_IDS: [u32; 19] = [
    3, 7, 12, 18, 20, 26, 27, 37, 42, 43, 50, 52, 55, 62, 82, 91, 96, 98, 99,
];

fn schema(spec: &WorkloadSpec) -> DbBuilder {
    let mut b = DbBuilder::new();
    let r = |base: usize| spec.rows(base);
    let dates = r(1500) as u64;
    let items = r(2000) as u64;
    let customers = r(4000) as u64;
    let addresses = r(2000) as u64;
    let demos = r(1000) as u64;
    let stores = r(64).max(16) as u64;
    let hds = r(400) as u64;
    let promos = r(128).max(16) as u64;
    let times = r(800) as u64;
    b.table(
        "date_dim",
        dates as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("year", D::Uniform { lo: 0, hi: 9 }),
            Col::plain("moy", D::Uniform { lo: 1, hi: 12 }),
        ],
    );
    b.table(
        "item",
        items as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("category", D::Zipf { n: 20, s: 0.6 }),
            Col::plain("brand", D::Zipf { n: 100, s: 0.6 }),
        ],
    );
    b.table(
        "customer",
        customers as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("cdemo_id", D::ForeignKeyUniform { target_rows: demos }),
            Col::plain(
                "addr_id",
                D::ForeignKeyUniform {
                    target_rows: addresses,
                },
            ),
        ],
    );
    b.table(
        "customer_address",
        addresses as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("state", D::Zipf { n: 50, s: 0.7 }),
        ],
    );
    b.table(
        "customer_demographics",
        demos as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("dep_count", D::Uniform { lo: 0, hi: 9 }),
        ],
    );
    b.table(
        "store",
        stores as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("county", D::Uniform { lo: 0, hi: 15 }),
        ],
    );
    b.table(
        "household_demographics",
        hds as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("income_band", D::Uniform { lo: 0, hi: 19 }),
        ],
    );
    b.table(
        "promotion",
        promos as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("channel", D::Uniform { lo: 0, hi: 3 }),
        ],
    );
    b.table(
        "time_dim",
        times as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("hour", D::Uniform { lo: 0, hi: 23 }),
        ],
    );
    // Facts: mild skew only (s ≤ 0.5) — TPC-DS data is far more uniform
    // than IMDb, which is why the expert does well here.
    let fact = || {
        vec![
            Col::indexed(
                "sold_date",
                D::ForeignKeyZipf {
                    target_rows: dates,
                    s: 0.4,
                },
            ),
            Col::indexed(
                "item_id",
                D::ForeignKeyZipf {
                    target_rows: items,
                    s: 0.5,
                },
            ),
            Col::plain(
                "customer_id",
                D::ForeignKeyUniform {
                    target_rows: customers,
                },
            ),
            Col::plain(
                "store_id",
                D::ForeignKeyUniform {
                    target_rows: stores,
                },
            ),
            Col::plain("hdemo_id", D::ForeignKeyUniform { target_rows: hds }),
            Col::plain(
                "promo_id",
                D::ForeignKeyUniform {
                    target_rows: promos,
                },
            ),
            Col::plain("cdemo_id", D::ForeignKeyUniform { target_rows: demos }),
            Col::plain("time_id", D::ForeignKeyUniform { target_rows: times }),
            Col::plain("quantity", D::Uniform { lo: 1, hi: 100 }),
        ]
    };
    b.table("store_sales", r(30_000), fact());
    b.table("catalog_sales", r(15_000), fact());
    b.table("web_sales", r(10_000), fact());
    b
}

/// Build the 19 templates.
pub fn templates() -> Vec<Template> {
    // Fact column indexes: sold_date=0 item=1 customer=2 store=3 hdemo=4
    // promo=5 cdemo=6 time=7 quantity=8.
    let facts = ["store_sales", "catalog_sales", "web_sales"];
    let mut out = Vec::with_capacity(TEMPLATE_IDS.len());
    for (k, &id) in TEMPLATE_IDS.iter().enumerate() {
        let fact = facts[k % 3];
        let mut rels = vec![TemplateRel::new(fact, "f").pred(PredSpec::Range {
            column: 8,
            lo: 1,
            hi: 100,
            min_w: 20,
            max_w: 60,
        })];
        let mut joins = Vec::new();
        // Every template filters by date year.
        let d = rels.len();
        rels.push(TemplateRel::new("date_dim", "d").pred(PredSpec::EqUniform {
            column: 1,
            lo: 0,
            hi: 9,
        }));
        joins.push((0, 0, d, 0));
        // Dimension mix varies by template index.
        if k % 2 == 0 {
            let i = rels.len();
            rels.push(TemplateRel::new("item", "i").pred(PredSpec::EqSkewed {
                column: 1,
                lo: 0,
                hi: 19,
            }));
            joins.push((0, 1, i, 0));
        }
        if k % 3 == 0 {
            let c = rels.len();
            rels.push(TemplateRel::new("customer", "c"));
            joins.push((0, 2, c, 0));
            let ca = rels.len();
            rels.push(
                TemplateRel::new("customer_address", "ca").pred(PredSpec::EqSkewed {
                    column: 1,
                    lo: 0,
                    hi: 30,
                }),
            );
            joins.push((c, 2, ca, 0));
        }
        if k % 4 == 0 {
            let s = rels.len();
            rels.push(TemplateRel::new("store", "s"));
            joins.push((0, 3, s, 0));
        }
        if k % 5 == 0 {
            let hd = rels.len();
            rels.push(
                TemplateRel::new("household_demographics", "hd").pred(PredSpec::EqUniform {
                    column: 1,
                    lo: 0,
                    hi: 19,
                }),
            );
            joins.push((0, 4, hd, 0));
        }
        if k % 6 == 0 {
            let p = rels.len();
            rels.push(TemplateRel::new("promotion", "p"));
            joins.push((0, 5, p, 0));
        }
        if k % 7 == 0 {
            let t = rels.len();
            rels.push(TemplateRel::new("time_dim", "t").pred(PredSpec::Range {
                column: 1,
                lo: 0,
                hi: 23,
                min_w: 4,
                max_w: 12,
            }));
            joins.push((0, 7, t, 0));
        }
        out.push(Template { id, rels, joins });
    }
    out
}

/// Materialise TPC-DS-lite: 6 queries per template, 5/1 split.
pub fn build(spec: WorkloadSpec) -> Result<Workload> {
    let (schema, db, optimizer) = schema(&spec).build(spec.seed)?;
    let stream = foss_common::SeedStream::new(spec.seed);
    let mut rng = StdRng::seed_from_u64(stream.derive("tpcds-queries"));
    let templates = templates();
    let queries = instantiate_all(&templates, &schema, 6, &mut rng)?;
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, q) in queries.into_iter().enumerate() {
        if i % 6 == 5 {
            test.push(q);
        } else {
            train.push(q);
        }
    }
    let max_relations = train
        .iter()
        .chain(&test)
        .map(|q| q.relation_count())
        .max()
        .unwrap_or(2);
    Ok(Workload {
        name: "tpcdslite".into(),
        db,
        optimizer,
        train,
        test,
        max_relations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_templates_with_paper_ids() {
        let ts = templates();
        assert_eq!(ts.len(), 19);
        let ids: Vec<u32> = ts.iter().map(|t| t.id).collect();
        assert_eq!(ids, TEMPLATE_IDS.to_vec());
        assert!(ts.iter().all(|t| t.relation_count() >= 2));
    }

    #[test]
    fn star_shape_has_fact_hub() {
        for t in templates() {
            // Relation 0 is the fact; most joins touch it.
            let fact_joins = t.joins.iter().filter(|j| j.0 == 0).count();
            assert!(
                fact_joins + 1 >= t.joins.len(),
                "template {} not star-ish",
                t.id
            );
        }
    }

    #[test]
    fn split_is_five_to_one() {
        let wl = build(WorkloadSpec::tiny(5)).unwrap();
        assert_eq!(wl.train.len(), 95);
        assert_eq!(wl.test.len(), 19);
        for q in wl.all_queries() {
            q.validate(wl.db.schema()).unwrap();
        }
    }
}
