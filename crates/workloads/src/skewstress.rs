//! Skew-stress: a small-schema workload engineered to hurt.
//!
//! Where the benchmark-shaped workloads imitate real datasets, this one is a
//! pure stress instrument: every join key is drawn from an *extreme*
//! heavy-tail Zipf (s ≥ 1.5, so the hottest key owns ~40% of each fact
//! table) and every template carries a range predicate whose width is drawn
//! across almost the whole domain, giving per-query selectivities that swing
//! from ≪1% to ~100%. That combination stresses exactly two subsystems:
//!
//! * the chunked executor's **hash joins** — one bucket holds nearly half of
//!   every build side, so probe costs are dominated by a single chain and
//!   join outputs explode or vanish depending on which side of the skew the
//!   drawn constants land;
//! * the executor cache's **eviction policy** — the selectivity spread makes
//!   result sizes (and thus the value of caching) wildly non-uniform.
//!
//! 10 templates around a single `hub` table, 8 queries each, 6 train /
//! 2 test per template.

use foss_common::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;

use foss_storage::Distribution as D;

use crate::builder::{instantiate_all, Col, DbBuilder};
use crate::template::{PredSpec, Template, TemplateRel};
use crate::{Workload, WorkloadSpec};

/// Template numbers (a plain 1..10 run — there is no paper numbering to
/// preserve on a synthetic stress workload).
pub const TEMPLATE_IDS: [u32; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

fn schema(spec: &WorkloadSpec) -> DbBuilder {
    let mut b = DbBuilder::new();
    let r = |base: usize| spec.rows(base);
    let hubs = r(2500) as u64;
    let parts = r(800) as u64;
    let suppliers = r(200) as u64;
    b.table(
        "hub",
        hubs as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("grp", D::Zipf { n: 64, s: 1.5 }),
        ],
    );
    b.table(
        "part",
        parts as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("cat", D::Zipf { n: 40, s: 1.6 }),
        ],
    );
    b.table(
        "supplier",
        suppliers as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("region", D::Uniform { lo: 0, hi: 7 }),
        ],
    );
    b.table(
        "event",
        r(9000),
        vec![
            Col::indexed(
                "hub_id",
                D::ForeignKeyZipf {
                    target_rows: hubs,
                    s: 1.6,
                },
            ),
            Col::plain(
                "part_id",
                D::ForeignKeyZipf {
                    target_rows: parts,
                    s: 1.5,
                },
            ),
            Col::plain("val", D::Zipf { n: 1000, s: 1.5 }),
        ],
    );
    b.table(
        "log",
        r(7000),
        vec![
            Col::indexed(
                "hub_id",
                D::ForeignKeyZipf {
                    target_rows: hubs,
                    s: 1.8,
                },
            ),
            Col::plain(
                "supp_id",
                D::ForeignKeyZipf {
                    target_rows: suppliers,
                    s: 1.5,
                },
            ),
            Col::plain("metric", D::Uniform { lo: 0, hi: 9999 }),
        ],
    );
    b.table(
        "audit",
        r(5000),
        vec![
            Col::indexed(
                "hub_id",
                D::ForeignKeyZipf {
                    target_rows: hubs,
                    s: 1.5,
                },
            ),
            Col::plain("flag", D::Uniform { lo: 0, hi: 3 }),
        ],
    );
    b
}

/// Build the 10 templates.
pub fn templates() -> Vec<Template> {
    // event columns: hub_id=0 part_id=1 val=2; log: hub_id=0 supp_id=1
    // metric=2; audit: hub_id=0 flag=1; hub: id=0 grp=1.
    let mut out = Vec::with_capacity(TEMPLATE_IDS.len());
    for (k, &id) in TEMPLATE_IDS.iter().enumerate() {
        // The wide-spread range filter: widths from 1 to nearly the whole
        // domain, so instances of one template differ by orders of
        // magnitude in selectivity.
        let mut rels = vec![TemplateRel::new("event", "e").pred(PredSpec::Range {
            column: 2,
            lo: 0,
            hi: 999,
            min_w: 1,
            max_w: 950,
        })];
        let mut joins = Vec::new();
        let h = rels.len();
        rels.push(TemplateRel::new("hub", "h").pred(PredSpec::EqSkewed {
            column: 1,
            lo: 0,
            hi: 63,
        }));
        joins.push((0, 0, h, 0));
        if k % 2 == 0 {
            // The heavy-tail collision: event and log share hub keys, and
            // both hot heads sit on the same few hubs.
            let l = rels.len();
            rels.push(TemplateRel::new("log", "l").pred(PredSpec::Range {
                column: 2,
                lo: 0,
                hi: 9999,
                min_w: 50,
                max_w: 3000,
            }));
            joins.push((h, 0, l, 0));
            if k % 4 == 0 {
                let s = rels.len();
                rels.push(TemplateRel::new("supplier", "s").pred(PredSpec::EqUniform {
                    column: 1,
                    lo: 0,
                    hi: 7,
                }));
                joins.push((l, 1, s, 0));
            }
        } else {
            let p = rels.len();
            rels.push(TemplateRel::new("part", "p").pred(PredSpec::EqSkewed {
                column: 1,
                lo: 0,
                hi: 39,
            }));
            joins.push((0, 1, p, 0));
        }
        if k % 3 == 0 {
            let a = rels.len();
            rels.push(TemplateRel::new("audit", "a").pred(PredSpec::EqUniform {
                column: 1,
                lo: 0,
                hi: 3,
            }));
            joins.push((h, 0, a, 0));
        }
        if k % 5 == 4 {
            let a2 = rels.len();
            rels.push(TemplateRel::new("audit", "a2"));
            joins.push((h, 0, a2, 0));
        }
        out.push(Template { id, rels, joins });
    }
    out
}

/// Materialise skew-stress: 8 queries per template, 6/2 split.
pub fn build(spec: WorkloadSpec) -> Result<Workload> {
    let (schema, db, optimizer) = schema(&spec).build(spec.seed)?;
    let stream = foss_common::SeedStream::new(spec.seed);
    let mut rng = StdRng::seed_from_u64(stream.derive("skewstress-queries"));
    let templates = templates();
    let queries = instantiate_all(&templates, &schema, 8, &mut rng)?;
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, q) in queries.into_iter().enumerate() {
        if i % 8 >= 6 {
            test.push(q);
        } else {
            train.push(q);
        }
    }
    let max_relations = train
        .iter()
        .chain(&test)
        .map(|q| q.relation_count())
        .max()
        .unwrap_or(2);
    Ok(Workload {
        name: "skewstress".into(),
        db,
        optimizer,
        train,
        test,
        max_relations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_templates() {
        let ts = templates();
        assert_eq!(ts.len(), 10);
        assert!(ts.iter().all(|t| t.relation_count() >= 2));
        assert!(ts.iter().any(|t| t.relation_count() >= 4));
    }

    #[test]
    fn join_keys_are_extremely_heavy_tailed() {
        let wl = build(WorkloadSpec::tiny(1)).unwrap();
        let schema = wl.db.schema();
        for table in ["event", "log", "audit"] {
            let t = wl.db.table(schema.table_id(table).unwrap());
            let keys = t.column(0).values();
            let hot = keys.iter().filter(|&&v| v == 0).count();
            // s ≥ 1.5 concentrates ≳30% of the table on the single hottest
            // key — far beyond anything the benchmark workloads plant.
            assert!(
                hot as f64 > 0.25 * keys.len() as f64,
                "{table}: hottest key owns only {hot}/{}",
                keys.len()
            );
        }
    }

    #[test]
    fn split_is_six_to_two() {
        let wl = build(WorkloadSpec::tiny(2)).unwrap();
        assert_eq!(wl.train.len(), 60);
        assert_eq!(wl.test.len(), 20);
        for q in wl.all_queries() {
            q.validate(wl.db.schema()).unwrap();
        }
    }

    #[test]
    fn selectivity_spread_is_wide() {
        // The val-range widths across instantiated queries must span at
        // least an order of magnitude.
        use foss_query::Predicate;
        let wl = build(WorkloadSpec::tiny(3)).unwrap();
        let mut widths = Vec::new();
        for q in wl.all_queries() {
            for p in &q.relations[0].predicates {
                if let Predicate::Range { lo, hi, .. } = p {
                    widths.push(hi - lo);
                }
            }
        }
        let min = widths.iter().min().copied().unwrap();
        let max = widths.iter().max().copied().unwrap();
        assert!(
            max >= 10 * min.max(1),
            "selectivity spread too narrow: {min}..{max}"
        );
    }
}
