//! DSB-lite: TPC-DS's star/snowflake shape with DSB's hostile statistics.
//!
//! DSB (PVLDB'21) extends TPC-DS with correlated attribute pairs and skewed
//! fact foreign keys precisely because uniform, independent data flatters
//! optimizers. This workload reuses the TPC-DS-lite star/snowflake layout
//! but regenerates it with the correlation-planting distributions:
//!
//! * **correlated column pairs** ([`foss_storage::Distribution::Correlated`]):
//!   `(year, moy)` on the date dimension, `(category, brand)` on items,
//!   `(state, country)` on addresses, `(dep_count, income_band)` on
//!   demographics and `(quantity, discount)` inside every fact row — each
//!   template filters *both* halves of at least one pair, so the expert's
//!   per-column selectivity product underestimates badly;
//! * **Zipf-skewed fact foreign keys** (`sold_date` at s = 1.0) and a
//!   **jointly skewed** `item_id` ([`foss_storage::Distribution::ZipfJoint`])
//!   coupled to `sold_date`, so hot dates co-occur with hot items and join
//!   fan-outs compound instead of averaging out.
//!
//! 15 templates, 6 queries each, 5 train / 1 test per template.

use foss_common::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;

use foss_storage::Distribution as D;

use crate::builder::{instantiate_all, Col, DbBuilder};
use crate::template::{PredSpec, Template, TemplateRel};
use crate::{Workload, WorkloadSpec};

/// The DSB-lite template numbers (TPC-DS-derived ids kept for reporting).
pub const TEMPLATE_IDS: [u32; 15] = [2, 5, 13, 18, 27, 40, 50, 54, 62, 72, 81, 84, 91, 99, 100];

fn schema(spec: &WorkloadSpec) -> DbBuilder {
    let mut b = DbBuilder::new();
    let r = |base: usize| spec.rows(base);
    let dates = r(1500) as u64;
    let items = r(2000) as u64;
    let customers = r(4000) as u64;
    let addresses = r(2000) as u64;
    let demos = r(1000) as u64;
    let stores = r(64).max(16) as u64;
    let promos = r(128).max(16) as u64;
    b.table(
        "date_dim",
        dates as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("year", D::Uniform { lo: 0, hi: 9 }),
            // moy tracks year (seasonal batches land together): filtering
            // both is nearly one filter, not two.
            Col::plain(
                "moy",
                D::Correlated {
                    source: 1,
                    lo: 1,
                    hi: 12,
                    rho: 0.8,
                },
            ),
        ],
    );
    b.table(
        "item",
        items as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("category", D::Zipf { n: 25, s: 0.9 }),
            // Brands nest inside categories — the classic DSB pair.
            Col::plain(
                "brand",
                D::Correlated {
                    source: 1,
                    lo: 0,
                    hi: 99,
                    rho: 0.85,
                },
            ),
        ],
    );
    b.table(
        "customer",
        customers as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("cdemo_id", D::ForeignKeyUniform { target_rows: demos }),
            Col::plain(
                "addr_id",
                D::ForeignKeyUniform {
                    target_rows: addresses,
                },
            ),
        ],
    );
    b.table(
        "customer_address",
        addresses as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("state", D::Zipf { n: 50, s: 0.8 }),
            Col::plain(
                "country",
                D::Correlated {
                    source: 1,
                    lo: 0,
                    hi: 49,
                    rho: 0.9,
                },
            ),
        ],
    );
    b.table(
        "customer_demographics",
        demos as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("dep_count", D::Uniform { lo: 0, hi: 9 }),
            Col::plain(
                "income_band",
                D::Correlated {
                    source: 1,
                    lo: 0,
                    hi: 9,
                    rho: 0.75,
                },
            ),
        ],
    );
    b.table(
        "store",
        stores as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("county", D::Uniform { lo: 0, hi: 15 }),
        ],
    );
    b.table(
        "promotion",
        promos as usize,
        vec![
            Col::indexed("id", D::SequentialId),
            Col::plain("channel", D::Uniform { lo: 0, hi: 3 }),
        ],
    );
    // Facts: real skew (s = 1.0+, vs TPC-DS-lite's ≤ 0.5) and a jointly
    // skewed item key coupled to the date key.
    let fact = || {
        vec![
            Col::indexed(
                "sold_date",
                D::ForeignKeyZipf {
                    target_rows: dates,
                    s: 1.0,
                },
            ),
            Col::indexed(
                "item_id",
                D::ZipfJoint {
                    target_rows: items,
                    s: 1.0,
                    source: 0,
                    rho: 0.5,
                },
            ),
            Col::plain(
                "customer_id",
                D::ForeignKeyUniform {
                    target_rows: customers,
                },
            ),
            Col::plain(
                "store_id",
                D::ForeignKeyZipf {
                    target_rows: stores,
                    s: 1.2,
                },
            ),
            Col::plain(
                "promo_id",
                D::ForeignKeyUniform {
                    target_rows: promos,
                },
            ),
            Col::plain("quantity", D::Uniform { lo: 1, hi: 100 }),
            // Bulk orders are discounted: quantity and discount move
            // together inside every fact row.
            Col::plain(
                "discount",
                D::Correlated {
                    source: 5,
                    lo: 0,
                    hi: 99,
                    rho: 0.7,
                },
            ),
        ]
    };
    b.table("store_sales", r(24_000), fact());
    b.table("catalog_sales", r(12_000), fact());
    b.table("web_sales", r(8_000), fact());
    b
}

/// Build the 15 templates. Every template filters both halves of at least
/// one correlated pair, so the expert's independence-assuming selectivity
/// product is wrong on every query.
pub fn templates() -> Vec<Template> {
    // Fact column indexes: sold_date=0 item_id=1 customer_id=2 store_id=3
    // promo_id=4 quantity=5 discount=6.
    let facts = ["store_sales", "catalog_sales", "web_sales"];
    let mut out = Vec::with_capacity(TEMPLATE_IDS.len());
    for (k, &id) in TEMPLATE_IDS.iter().enumerate() {
        let mut rels = vec![TemplateRel::new(facts[k % 3], "f").pred(PredSpec::Range {
            column: 5,
            lo: 1,
            hi: 100,
            min_w: 10,
            max_w: 90,
        })];
        if k % 2 == 1 {
            // (quantity, discount): the intra-fact correlated pair.
            rels[0] = rels[0].clone().pred(PredSpec::Range {
                column: 6,
                lo: 0,
                hi: 99,
                min_w: 10,
                max_w: 90,
            });
        }
        let mut joins = Vec::new();
        // Every template filters the date year; even templates also pin the
        // (correlated) month, odd templates hit the item pair instead.
        let d = rels.len();
        let mut date_rel = TemplateRel::new("date_dim", "d").pred(PredSpec::EqUniform {
            column: 1,
            lo: 0,
            hi: 9,
        });
        if k % 2 == 0 {
            date_rel = date_rel.pred(PredSpec::Range {
                column: 2,
                lo: 1,
                hi: 12,
                min_w: 2,
                max_w: 6,
            });
        }
        rels.push(date_rel);
        joins.push((0, 0, d, 0));
        if k % 2 == 1 {
            // (category, brand): both filtered, and the brand range sits
            // inside the category fold so the predicates overlap heavily.
            let i = rels.len();
            rels.push(
                TemplateRel::new("item", "i")
                    .pred(PredSpec::EqSkewed {
                        column: 1,
                        lo: 0,
                        hi: 24,
                    })
                    .pred(PredSpec::Range {
                        column: 2,
                        lo: 0,
                        hi: 24,
                        min_w: 3,
                        max_w: 10,
                    }),
            );
            joins.push((0, 1, i, 0));
        }
        if k % 3 == 0 {
            // Snowflake arm: customer → address with the (state, country)
            // pair both filtered.
            let c = rels.len();
            rels.push(TemplateRel::new("customer", "c"));
            joins.push((0, 2, c, 0));
            let ca = rels.len();
            rels.push(
                TemplateRel::new("customer_address", "ca")
                    .pred(PredSpec::EqSkewed {
                        column: 1,
                        lo: 0,
                        hi: 49,
                    })
                    .pred(PredSpec::Range {
                        column: 2,
                        lo: 0,
                        hi: 49,
                        min_w: 5,
                        max_w: 15,
                    }),
            );
            joins.push((c, 2, ca, 0));
            if k % 6 == 0 {
                // Deeper snowflake: demographics with (dep_count,
                // income_band) both filtered.
                let cd = rels.len();
                rels.push(
                    TemplateRel::new("customer_demographics", "cd")
                        .pred(PredSpec::EqUniform {
                            column: 1,
                            lo: 0,
                            hi: 9,
                        })
                        .pred(PredSpec::Range {
                            column: 2,
                            lo: 0,
                            hi: 9,
                            min_w: 1,
                            max_w: 4,
                        }),
                );
                joins.push((c, 1, cd, 0));
            }
        }
        if k % 4 == 2 {
            let s = rels.len();
            rels.push(TemplateRel::new("store", "s").pred(PredSpec::EqUniform {
                column: 1,
                lo: 0,
                hi: 15,
            }));
            joins.push((0, 3, s, 0));
        }
        if k % 5 == 3 {
            let p = rels.len();
            rels.push(TemplateRel::new("promotion", "p"));
            joins.push((0, 4, p, 0));
        }
        out.push(Template { id, rels, joins });
    }
    out
}

/// Materialise DSB-lite: 6 queries per template, 5/1 split.
pub fn build(spec: WorkloadSpec) -> Result<Workload> {
    let (schema, db, optimizer) = schema(&spec).build(spec.seed)?;
    let stream = foss_common::SeedStream::new(spec.seed);
    let mut rng = StdRng::seed_from_u64(stream.derive("dsb-queries"));
    let templates = templates();
    let queries = instantiate_all(&templates, &schema, 6, &mut rng)?;
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, q) in queries.into_iter().enumerate() {
        if i % 6 == 5 {
            test.push(q);
        } else {
            train.push(q);
        }
    }
    let max_relations = train
        .iter()
        .chain(&test)
        .map(|q| q.relation_count())
        .max()
        .unwrap_or(2);
    Ok(Workload {
        name: "dsblite".into(),
        db,
        optimizer,
        train,
        test,
        max_relations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_templates_with_dsb_ids() {
        let ts = templates();
        assert_eq!(ts.len(), 15);
        assert_eq!(
            ts.iter().map(|t| t.id).collect::<Vec<_>>(),
            TEMPLATE_IDS.to_vec()
        );
        assert!(ts.iter().all(|t| t.relation_count() >= 2));
    }

    #[test]
    fn every_template_hits_a_correlated_pair() {
        // Correlated pairs live on: date_dim (year=1, moy=2), item
        // (category=1, brand=2), customer_address (state=1, country=2),
        // customer_demographics (dep_count=1, income_band=2) and the fact
        // tables (quantity=5, discount=6).
        for t in templates() {
            let hits_pair = t.rels.iter().any(|rel| {
                let cols: Vec<usize> = rel
                    .preds
                    .iter()
                    .map(|p| match *p {
                        PredSpec::EqUniform { column, .. }
                        | PredSpec::EqSkewed { column, .. }
                        | PredSpec::Range { column, .. } => column,
                    })
                    .collect();
                match rel.table.as_str() {
                    "date_dim" => cols.contains(&1) && cols.contains(&2),
                    "item" => cols.contains(&1) && cols.contains(&2),
                    "customer_address" => cols.contains(&1) && cols.contains(&2),
                    "customer_demographics" => cols.contains(&1) && cols.contains(&2),
                    _ => cols.contains(&5) && cols.contains(&6),
                }
            });
            assert!(hits_pair, "template {} misses every correlated pair", t.id);
        }
    }

    #[test]
    fn split_is_five_to_one() {
        let wl = build(WorkloadSpec::tiny(5)).unwrap();
        assert_eq!(wl.train.len(), 75);
        assert_eq!(wl.test.len(), 15);
        for q in wl.all_queries() {
            q.validate(wl.db.schema()).unwrap();
        }
    }

    #[test]
    fn fact_keys_are_skewed_and_coupled() {
        let wl = build(WorkloadSpec::tiny(3)).unwrap();
        let schema = wl.db.schema();
        let ss = wl.db.table(schema.table_id("store_sales").unwrap());
        let dates = ss.column(0).values();
        let items = ss.column(1).values();
        // Skew: the hottest date owns far more than its uniform share.
        let hot = dates.iter().filter(|&&v| v == 0).count();
        assert!(
            hot * 20 > dates.len(),
            "hot date share {hot}/{}",
            dates.len()
        );
        // Coupling: item_id equals the folded date key on ~rho of rows.
        let n = wl.table_rows()[schema.table_id("item").unwrap().index()] as i64;
        let coupled = dates
            .iter()
            .zip(items)
            .filter(|&(&d, &i)| i == d.rem_euclid(n))
            .count();
        assert!(
            coupled as f64 > 0.4 * dates.len() as f64,
            "coupling too weak: {coupled}/{}",
            dates.len()
        );
    }
}
