//! Dense row-major `f32` matrices with the handful of BLAS-like kernels the
//! autograd tape needs.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major data; `data[r * cols + c]`.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from a nested-slice literal (tests / small constants).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build from a flat vec.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// A 1×1 matrix.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self @ other` without allocating. `out` is overwritten.
    ///
    /// Register-blocked kernel: two rows of `self` advance together, sharing
    /// every loaded row of `other`, with a 4-way unrolled `k` inner kernel
    /// and slice-based addressing (no per-element bounds checks, no
    /// data-dependent branches). The per-element accumulation order — `k` in
    /// groups of four, remainder singly — is a function of `k` alone, never
    /// of the row count or a row's position in the blocking, so stacking
    /// extra rows onto a batch cannot change any existing row's result bit
    /// pattern — the property the batched inference path relies on.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        if self.cols == 0 {
            out.data.fill(0.0);
            return;
        }
        // Initialise each output row by *assigning* the first k-group's
        // contribution instead of zero-filling and accumulating — one whole
        // pass over `out` saved. `0.0 + x == x` for every finite x except
        // that `-0.0` would become `+0.0`, and `-0.0 == 0.0` anyway, so the
        // k-grouping (and with it every accumulation-order guarantee) is
        // unchanged from [`Matrix::matmul_acc_into`].
        let n = other.cols;
        let kd = self.cols;
        let b = &other.data;
        let mut i = 0;
        while i + 2 <= self.rows {
            let (o0, o1) = out.data[i * n..(i + 2) * n].split_at_mut(n);
            let ar0 = &self.data[i * kd..(i + 1) * kd];
            let ar1 = &self.data[(i + 1) * kd..(i + 2) * kd];
            let mut k = if kd >= 4 {
                let (x00, x01, x02, x03) = (ar0[0], ar0[1], ar0[2], ar0[3]);
                let (x10, x11, x12, x13) = (ar1[0], ar1[1], ar1[2], ar1[3]);
                let b0 = &b[..n];
                let b1 = &b[n..2 * n];
                let b2 = &b[2 * n..3 * n];
                let b3 = &b[3 * n..4 * n];
                for j in 0..n {
                    o0[j] = x00 * b0[j] + x01 * b1[j] + x02 * b2[j] + x03 * b3[j];
                    o1[j] = x10 * b0[j] + x11 * b1[j] + x12 * b2[j] + x13 * b3[j];
                }
                4
            } else {
                let (x0, x1) = (ar0[0], ar1[0]);
                let brow = &b[..n];
                for j in 0..n {
                    o0[j] = x0 * brow[j];
                    o1[j] = x1 * brow[j];
                }
                1
            };
            while k + 4 <= kd {
                let (x00, x01, x02, x03) = (ar0[k], ar0[k + 1], ar0[k + 2], ar0[k + 3]);
                let (x10, x11, x12, x13) = (ar1[k], ar1[k + 1], ar1[k + 2], ar1[k + 3]);
                let b0 = &b[k * n..k * n + n];
                let b1 = &b[(k + 1) * n..(k + 1) * n + n];
                let b2 = &b[(k + 2) * n..(k + 2) * n + n];
                let b3 = &b[(k + 3) * n..(k + 3) * n + n];
                for j in 0..n {
                    o0[j] += x00 * b0[j] + x01 * b1[j] + x02 * b2[j] + x03 * b3[j];
                    o1[j] += x10 * b0[j] + x11 * b1[j] + x12 * b2[j] + x13 * b3[j];
                }
                k += 4;
            }
            while k < kd {
                let (x0, x1) = (ar0[k], ar1[k]);
                let brow = &b[k * n..k * n + n];
                for j in 0..n {
                    o0[j] += x0 * brow[j];
                    o1[j] += x1 * brow[j];
                }
                k += 1;
            }
            i += 2;
        }
        if i < self.rows {
            let orow = &mut out.data[i * n..(i + 1) * n];
            let arow = &self.data[i * kd..(i + 1) * kd];
            let mut k = if kd >= 4 {
                let (x0, x1, x2, x3) = (arow[0], arow[1], arow[2], arow[3]);
                let b0 = &b[..n];
                let b1 = &b[n..2 * n];
                let b2 = &b[2 * n..3 * n];
                let b3 = &b[3 * n..4 * n];
                for j in 0..n {
                    orow[j] = x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
                }
                4
            } else {
                let x = arow[0];
                let brow = &b[..n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o = x * bv;
                }
                1
            };
            while k + 4 <= kd {
                let (x0, x1, x2, x3) = (arow[k], arow[k + 1], arow[k + 2], arow[k + 3]);
                let b0 = &b[k * n..k * n + n];
                let b1 = &b[(k + 1) * n..(k + 1) * n + n];
                let b2 = &b[(k + 2) * n..(k + 2) * n + n];
                let b3 = &b[(k + 3) * n..(k + 3) * n + n];
                for j in 0..n {
                    orow[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
                }
                k += 4;
            }
            while k < kd {
                let x = arow[k];
                let brow = &b[k * n..k * n + n];
                for j in 0..n {
                    orow[j] += x * brow[j];
                }
                k += 1;
            }
        }
    }

    /// `out += self @ other` — the accumulate variant of
    /// [`Matrix::matmul_into`]. Pre-filling `out` with a broadcast bias row
    /// turns this into a fused linear layer with one pass over the data.
    pub fn matmul_acc_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        let n = other.cols;
        let kd = self.cols;
        let b = &other.data;
        let mut i = 0;
        while i + 2 <= self.rows {
            let (o0, o1) = out.data[i * n..(i + 2) * n].split_at_mut(n);
            let ar0 = &self.data[i * kd..(i + 1) * kd];
            let ar1 = &self.data[(i + 1) * kd..(i + 2) * kd];
            let mut k = 0;
            while k + 4 <= kd {
                let (x00, x01, x02, x03) = (ar0[k], ar0[k + 1], ar0[k + 2], ar0[k + 3]);
                let (x10, x11, x12, x13) = (ar1[k], ar1[k + 1], ar1[k + 2], ar1[k + 3]);
                let b0 = &b[k * n..k * n + n];
                let b1 = &b[(k + 1) * n..(k + 1) * n + n];
                let b2 = &b[(k + 2) * n..(k + 2) * n + n];
                let b3 = &b[(k + 3) * n..(k + 3) * n + n];
                for j in 0..n {
                    o0[j] += x00 * b0[j] + x01 * b1[j] + x02 * b2[j] + x03 * b3[j];
                    o1[j] += x10 * b0[j] + x11 * b1[j] + x12 * b2[j] + x13 * b3[j];
                }
                k += 4;
            }
            while k < kd {
                let (x0, x1) = (ar0[k], ar1[k]);
                let brow = &b[k * n..k * n + n];
                for j in 0..n {
                    o0[j] += x0 * brow[j];
                    o1[j] += x1 * brow[j];
                }
                k += 1;
            }
            i += 2;
        }
        if i < self.rows {
            // Last odd row: identical k-grouping to the paired path, so a
            // row's bit pattern does not depend on the matrix's row count.
            let orow = &mut out.data[i * n..(i + 1) * n];
            let arow = &self.data[i * kd..(i + 1) * kd];
            let mut k = 0;
            while k + 4 <= kd {
                let (x0, x1, x2, x3) = (arow[k], arow[k + 1], arow[k + 2], arow[k + 3]);
                let b0 = &b[k * n..k * n + n];
                let b1 = &b[(k + 1) * n..(k + 1) * n + n];
                let b2 = &b[(k + 2) * n..(k + 2) * n + n];
                let b3 = &b[(k + 3) * n..(k + 3) * n + n];
                for j in 0..n {
                    orow[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
                }
                k += 4;
            }
            while k < kd {
                let x = arow[k];
                let brow = &b[k * n..k * n + n];
                for j in 0..n {
                    orow[j] += x * brow[j];
                }
                k += 1;
            }
        }
    }

    /// `self @ other^T` without materialising the transpose: row `i` of the
    /// output is the dot product of row `i` of `self` with every row of
    /// `other`. Used by attention score kernels and the matmul backward pass.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt width mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let d = self.cols;
        for i in 0..self.rows {
            let arow = &self.data[i * d..(i + 1) * d];
            let orow = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot(arow, &other.data[j * d..(j + 1) * d]);
            }
        }
        out
    }

    /// Transpose (tiled so both matrices are walked in cache-line chunks).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        const TB: usize = 16;
        let mut r0 = 0;
        while r0 < self.rows {
            let r1 = (r0 + TB).min(self.rows);
            let mut c0 = 0;
            while c0 < self.cols {
                let c1 = (c0 + TB).min(self.cols);
                for r in r0..r1 {
                    let row = &self.data[r * self.cols + c0..r * self.cols + c1];
                    for (c, &v) in row.iter().enumerate() {
                        out.data[(c0 + c) * self.rows + r] = v;
                    }
                }
                c0 = c1;
            }
            r0 = r1;
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise combination; shapes must match.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "zip shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Row-wise softmax (numerically stabilised).
    ///
    /// Entries further than 105 below the row maximum skip the `exp` call:
    /// `exp(x)` underflows to exactly `+0.0` for `x ≤ -105`, so the shortcut
    /// is bit-identical while sparing attention rows full of `-1e9` mask
    /// values the cost of a libm call per masked entry.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = src.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (v, &s) in row.iter_mut().zip(src) {
                let x = s - max;
                *v = if x <= -105.0 { 0.0 } else { x.exp() };
                sum += *v;
            }
            // One reciprocal per row: hardware division is the single most
            // expensive scalar op in the masked-attention softmax.
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        out
    }

    /// Row-wise log-softmax (numerically stabilised).
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let logsum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
            for v in row.iter_mut() {
                *v -= logsum;
            }
        }
        out
    }
}

/// Dot product with four independent accumulators (`chunks_exact` keeps the
/// inner loop free of bounds checks). The summation order is a fixed
/// function of the slice length, so every call site (attention scores,
/// matmul backward, batched inference) produces identical bit patterns for
/// identical inputs.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut s0 = 0.0f32;
    let mut s1 = 0.0f32;
    let mut s2 = 0.0f32;
    let mut s3 = 0.0f32;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for (x, y) in ra.iter().zip(rb) {
        s += x * y;
    }
    s
}

impl foss_common::Codec for Matrix {
    fn encode(&self, w: &mut foss_common::ByteWriter) {
        w.put_usize(self.rows);
        w.put_usize(self.cols);
        for &v in &self.data {
            w.put_f32(v);
        }
    }

    fn decode(r: &mut foss_common::ByteReader<'_>) -> foss_common::Result<Self> {
        let rows = r.get_usize()?;
        let cols = r.get_usize()?;
        let n = rows.checked_mul(cols).ok_or_else(|| {
            foss_common::FossError::Serde(format!("matrix shape overflow: {rows}x{cols}"))
        })?;
        let mut data = Vec::with_capacity(n.min(r.remaining() / 4 + 1));
        for _ in 0..n {
            data.push(r.get_f32()?);
        }
        Ok(Self { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook i-j-k reference kernel the tiled implementations are tested
    /// against (f32 rounding may differ; comparisons use a tolerance).
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for j in 0..b.cols {
                let mut s = 0.0f32;
                for k in 0..a.cols {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    fn pattern_matrix(rows: usize, cols: usize, salt: f32) -> Matrix {
        let data = (0..rows * cols)
            .map(|i| ((i as f32 * 0.37 + salt).sin()) * 0.5)
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols));
        for (x, y) in a.data.iter().zip(&b.data) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let i = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large inputs must not overflow.
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let a = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let s = a.softmax_rows();
        let ls = a.log_softmax_rows();
        for c in 0..3 {
            assert!((ls.get(0, c).exp() - s.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn zip_and_map() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.zip(&b, |x, y| x * y), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.map(f32::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn tiled_matmul_matches_naive_on_ragged_shapes() {
        // 1×N, N×1, dims that are not multiples of the k-tile (64) or the
        // unroll width (4), and a shape that spans several k-tiles.
        let shapes = [
            (1, 7, 5),
            (7, 1, 9),
            (3, 1, 1),
            (5, 66, 3),
            (9, 130, 11),
            (13, 17, 19),
            (2, 64, 2),
            (1, 129, 1),
        ];
        for (m, k, n) in shapes {
            let a = pattern_matrix(m, k, 0.1);
            let b = pattern_matrix(k, n, 0.9);
            assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-5);
        }
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let a = pattern_matrix(6, 70, 0.3);
        let b = pattern_matrix(70, 5, 0.7);
        let mut out = Matrix::full(6, 5, f32::NAN); // stale contents must be overwritten
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    #[should_panic(expected = "matmul output shape mismatch")]
    fn matmul_into_checks_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        for (m, k, n) in [(1, 5, 4), (6, 66, 1), (9, 13, 7)] {
            let a = pattern_matrix(m, k, 0.2);
            let b = pattern_matrix(n, k, 0.8); // matmul_nt computes a @ b^T
            assert_close(&a.matmul_nt(&b), &naive_matmul(&a, &b.transpose()), 1e-5);
        }
    }

    #[test]
    fn matmul_rows_are_batch_independent() {
        // The batched-inference invariant: computing rows [x; y] together
        // must give bit-identical results to computing x and y separately.
        let w = pattern_matrix(70, 9, 0.4);
        let x = pattern_matrix(1, 70, 0.5);
        let y = pattern_matrix(1, 70, 0.6);
        let mut stacked = x.data.clone();
        stacked.extend_from_slice(&y.data);
        let xy = Matrix::from_vec(2, 70, stacked).matmul(&w);
        assert_eq!(xy.row(0), x.matmul(&w).row(0));
        assert_eq!(xy.row(1), y.matmul(&w).row(0));
    }

    #[test]
    fn transpose_tiling_covers_odd_dims() {
        for (r, c) in [(1, 40), (40, 1), (17, 23), (16, 16), (33, 31)] {
            let a = pattern_matrix(r, c, 0.15);
            let t = a.transpose();
            assert_eq!((t.rows, t.cols), (c, r));
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t.get(j, i), a.get(i, j));
                }
            }
        }
    }

    #[test]
    fn dot_matches_sequential_sum() {
        for len in [0usize, 1, 3, 4, 7, 64, 130] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.11).cos()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.23).sin()).collect();
            let seq: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - seq).abs() < 1e-4 * (1.0 + seq.abs()));
        }
    }
}
