//! Dense row-major `f32` matrices with the handful of BLAS-like kernels the
//! autograd tape needs.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major data; `data[r * cols + c]`.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self { rows, cols, data: vec![v; rows * cols] }
    }

    /// Build from a nested-slice literal (tests / small constants).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Build from a flat vec.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// A 1×1 matrix.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous in both inputs.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise combination; shapes must match.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Row-wise log-softmax (numerically stabilised).
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let logsum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
            for v in row.iter_mut() {
                *v -= logsum;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let i = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large inputs must not overflow.
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let a = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let s = a.softmax_rows();
        let ls = a.log_softmax_rows();
        for c in 0..3 {
            assert!((ls.get(0, c).exp() - s.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn zip_and_map() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.zip(&b, |x, y| x * y), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.map(f32::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
