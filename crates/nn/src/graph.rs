//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a tape of operations recorded during one forward pass;
//! [`Graph::backward`] replays it in reverse, accumulating gradients into the
//! tape and into the [`ParamSet`] for parameter leaves. The op set is exactly
//! what the FOSS models need: dense algebra, attention building blocks
//! (matmul / transpose / masked softmax), embedding gathers, and the
//! pointwise functions used by PPO and the asymmetric loss.

use crate::matrix::{dot, Matrix};
use crate::params::{GradSink, ParamId, ParamSet};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
#[allow(dead_code)] // constant operands are kept for Debug output
enum Op {
    Leaf,
    Param(ParamId),
    MatMul(Var, Var),
    MatMulBias {
        x: Var,
        w: Var,
        b: Var,
    },
    SliceCols(Var, usize, usize),
    Transpose(Var),
    Add(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    AddRowBroadcast(Var, Var),
    Relu(Var),
    Tanh(Var),
    Exp(Var),
    PowConst(Var, f32),
    Clamp(Var, f32, f32),
    MinElem(Var, Var),
    SoftmaxRows(Var),
    LogSoftmaxRows(Var),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    Gather(Var, Vec<usize>),
    PickPerRow(Var, Vec<usize>),
    MeanRows(Var),
    SumAll(Var),
    MeanAll(Var),
    LayerNormRows {
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    },
    AddLayerNormRows {
        a: Var,
        b: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    },
    SelectRow(Var, usize),
    SegAttnScores {
        q: Var,
        k: Var,
        segs: Vec<usize>,
    },
    SegAttnScoresMasked {
        q: Var,
        k: Var,
        mask: Var,
        segs: Vec<usize>,
        scale: f32,
    },
    SegAttnApply {
        attn: Var,
        v: Var,
        segs: Vec<usize>,
    },
    SegMultiHeadAttention {
        qkv: Var,
        mask: Var,
        segs: Vec<usize>,
        heads: usize,
        scale: f32,
        /// Per-head softmax weights saved by the forward pass (`ΣL×Lmax`
        /// each) so backward need not re-run the masked softmax.
        attn: Vec<Matrix>,
    },
    SegMeanRows(Var, Vec<usize>),
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
    needs_grad: bool,
}

/// The autograd tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    inference: bool,
}

impl Graph {
    /// Fresh empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tape that will only ever run forward: ops skip the auxiliary state
    /// they would otherwise save for backward (e.g. attention softmax
    /// weights). [`Graph::backward`] on such a tape panics.
    pub fn inference() -> Self {
        Self {
            nodes: Vec::new(),
            inference: true,
        }
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after [`Graph::backward`] (zeros if unreached).
    pub fn grad(&self, v: Var) -> Matrix {
        let n = &self.nodes[v.0];
        n.grad
            .clone()
            .unwrap_or_else(|| Matrix::zeros(n.value.rows, n.value.cols))
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        let needs_grad = match &op {
            Op::Leaf => false,
            Op::Param(_) => true,
            Op::MatMul(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::MulElem(a, b)
            | Op::MinElem(a, b)
            | Op::AddRowBroadcast(a, b) => self.needs(*a) || self.needs(*b),
            Op::Transpose(a)
            | Op::Scale(a, _)
            | Op::AddScalar(a, _)
            | Op::Relu(a)
            | Op::Tanh(a)
            | Op::Exp(a)
            | Op::PowConst(a, _)
            | Op::Clamp(a, _, _)
            | Op::SoftmaxRows(a)
            | Op::LogSoftmaxRows(a)
            | Op::Gather(a, _)
            | Op::PickPerRow(a, _)
            | Op::MeanRows(a)
            | Op::SumAll(a)
            | Op::MeanAll(a)
            | Op::SelectRow(a, _) => self.needs(*a),
            Op::ConcatCols(vs) | Op::ConcatRows(vs) => vs.iter().any(|&v| self.needs(v)),
            Op::LayerNormRows { x, gamma, beta, .. } => {
                self.needs(*x) || self.needs(*gamma) || self.needs(*beta)
            }
            Op::MatMulBias { x, w, b } => self.needs(*x) || self.needs(*w) || self.needs(*b),
            Op::SliceCols(a, _, _) => self.needs(*a),
            Op::AddLayerNormRows {
                a, b, gamma, beta, ..
            } => self.needs(*a) || self.needs(*b) || self.needs(*gamma) || self.needs(*beta),
            Op::SegAttnScores { q: a, k: b, .. }
            | Op::SegAttnScoresMasked { q: a, k: b, .. }
            | Op::SegAttnApply { attn: a, v: b, .. } => self.needs(*a) || self.needs(*b),
            Op::SegMultiHeadAttention { qkv, .. } => self.needs(*qkv),
            Op::SegMeanRows(a, _) => self.needs(*a),
        };
        self.nodes.push(Node {
            op,
            value,
            grad: None,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// A constant input (no gradient): data batches, masks, targets.
    pub fn input(&mut self, m: Matrix) -> Var {
        self.push(Op::Leaf, m)
    }

    /// A scalar constant.
    pub fn constant(&mut self, v: f32) -> Var {
        self.input(Matrix::scalar(v))
    }

    /// A parameter leaf; its gradient flows into `set` on backward.
    pub fn param(&mut self, id: ParamId, set: &ParamSet) -> Var {
        self.push(Op::Param(id), set.value(id).clone())
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Fused linear layer `x @ w + b` (`b` a `1×N` row bias): the output is
    /// initialised with the broadcast bias and the product accumulates into
    /// it, saving the intermediate matrix and extra pass an explicit
    /// matmul-then-broadcast pair would spend.
    pub fn matmul_bias(&mut self, x: Var, w: Var, b: Var) -> Var {
        let (xm, wm, bm) = (self.value(x), self.value(w), self.value(b));
        assert_eq!(bm.rows, 1, "bias must be a row vector");
        assert_eq!(bm.cols, wm.cols, "bias width mismatch");
        let mut out = Matrix::zeros(xm.rows, wm.cols);
        for r in 0..out.rows {
            out.data[r * out.cols..(r + 1) * out.cols].copy_from_slice(&bm.data);
        }
        xm.matmul_acc_into(wm, &mut out);
        self.push(Op::MatMulBias { x, w, b }, out)
    }

    /// Copy columns `[start, start+len)` → an `R×len` matrix (e.g. carving
    /// one head's Q/K/V panel out of a packed projection).
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let m = self.value(a);
        assert!(start + len <= m.cols, "column slice out of range");
        let mut out = Matrix::zeros(m.rows, len);
        for r in 0..m.rows {
            out.data[r * len..(r + 1) * len]
                .copy_from_slice(&m.data[r * m.cols + start..r * m.cols + start + len]);
        }
        self.push(Op::SliceCols(a, start, len), out)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(Op::MulElem(a, b), v)
    }

    /// Elementwise `min(a, b)` (PPO clipped surrogate).
    pub fn min_elem(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), f32::min);
        self.push(Op::MinElem(a, b), v)
    }

    /// `a * c` for scalar constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).map(|x| x * c);
        self.push(Op::Scale(a, c), v)
    }

    /// `a + c` for scalar constant `c`.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).map(|x| x + c);
        self.push(Op::AddScalar(a, c), v)
    }

    /// Broadcast-add a `1×D` row vector to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (self.value(a), self.value(b));
        assert_eq!(bm.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(am.cols, bm.cols, "broadcast width mismatch");
        let mut out = am.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bm.data[c];
            }
        }
        self.push(Op::AddRowBroadcast(a, b), out)
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::exp);
        self.push(Op::Exp(a), v)
    }

    /// Elementwise `a^p` for `a ≥ 0` (focal-loss decay terms).
    pub fn pow_const(&mut self, a: Var, p: f32) -> Var {
        let v = self.value(a).map(|x| x.max(0.0).powf(p));
        self.push(Op::PowConst(a, p), v)
    }

    /// Elementwise clamp to `[lo, hi]`; gradient is zero outside.
    pub fn clamp(&mut self, a: Var, lo: f32, hi: f32) -> Var {
        let v = self.value(a).map(|x| x.clamp(lo, hi));
        self.push(Op::Clamp(a, lo, hi), v)
    }

    /// Row-wise softmax. Add a large-negative mask beforehand to exclude
    /// entries (attention masks, action masks).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_rows();
        self.push(Op::SoftmaxRows(a), v)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).log_softmax_rows();
        self.push(Op::LogSoftmaxRows(a), v)
    }

    /// Concatenate along columns.
    pub fn concat_cols(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty());
        let rows = self.value(vars[0]).rows;
        let cols: usize = vars.iter().map(|&v| self.value(v).cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut offset = 0;
        for &v in vars {
            let m = self.value(v);
            assert_eq!(m.rows, rows, "concat_cols row mismatch");
            for r in 0..rows {
                out.data[r * cols + offset..r * cols + offset + m.cols].copy_from_slice(m.row(r));
            }
            offset += m.cols;
        }
        self.push(Op::ConcatCols(vars.to_vec()), out)
    }

    /// Concatenate along rows.
    pub fn concat_rows(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty());
        let cols = self.value(vars[0]).cols;
        let rows: usize = vars.iter().map(|&v| self.value(v).rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for &v in vars {
            let m = self.value(v);
            assert_eq!(m.cols, cols, "concat_rows col mismatch");
            data.extend_from_slice(&m.data);
        }
        self.push(
            Op::ConcatRows(vars.to_vec()),
            Matrix::from_vec(rows, cols, data),
        )
    }

    /// Gather rows of `table` by `indices` (embedding lookup).
    pub fn gather(&mut self, table: Var, indices: &[usize]) -> Var {
        let t = self.value(table);
        let mut out = Matrix::zeros(indices.len(), t.cols);
        for (r, &i) in indices.iter().enumerate() {
            out.data[r * t.cols..(r + 1) * t.cols].copy_from_slice(t.row(i));
        }
        self.push(Op::Gather(table, indices.to_vec()), out)
    }

    /// `out[r, 0] = a[r, indices[r]]` — per-row element selection
    /// (log-probability of the chosen action).
    pub fn pick_per_row(&mut self, a: Var, indices: &[usize]) -> Var {
        let m = self.value(a);
        assert_eq!(m.rows, indices.len(), "one index per row required");
        let mut out = Matrix::zeros(m.rows, 1);
        for (r, &c) in indices.iter().enumerate() {
            out.data[r] = m.get(r, c);
        }
        self.push(Op::PickPerRow(a, indices.to_vec()), out)
    }

    /// Mean over rows → `1×D` (sequence pooling).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let m = self.value(a);
        let mut out = Matrix::zeros(1, m.cols);
        for r in 0..m.rows {
            for c in 0..m.cols {
                out.data[c] += m.get(r, c);
            }
        }
        for v in &mut out.data {
            *v /= m.rows as f32;
        }
        self.push(Op::MeanRows(a), out)
    }

    /// Sum of all elements → `1×1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::scalar(self.value(a).sum());
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements → `1×1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let m = self.value(a);
        let v = Matrix::scalar(m.sum() / m.data.len() as f32);
        self.push(Op::MeanAll(a), v)
    }

    /// Row-wise layer normalisation with learnable `gamma`/`beta` (`1×D`).
    pub fn layer_norm_rows(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let (xm, gm, bm) = (self.value(x), self.value(gamma), self.value(beta));
        assert_eq!(gm.rows, 1);
        assert_eq!(bm.rows, 1);
        assert_eq!(gm.cols, xm.cols);
        let mut out = xm.clone();
        for r in 0..xm.rows {
            let row = xm.row(r);
            let mean = row.iter().sum::<f32>() / row.len() as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (c, &xv) in row.iter().enumerate() {
                let xhat = (xv - mean) * inv;
                out.data[r * xm.cols + c] = gm.data[c] * xhat + bm.data[c];
            }
        }
        self.push(
            Op::LayerNormRows {
                x,
                gamma,
                beta,
                eps,
            },
            out,
        )
    }

    /// Fused residual + row-wise layer norm: `LayerNorm(a + b)` without
    /// materialising the sum (the transformer-block residual pattern). The
    /// per-row arithmetic matches `add` followed by
    /// [`Graph::layer_norm_rows`] exactly.
    pub fn add_layer_norm_rows(&mut self, a: Var, b: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let (am, bm2, gm, bm) = (
            self.value(a),
            self.value(b),
            self.value(gamma),
            self.value(beta),
        );
        assert_eq!(
            (am.rows, am.cols),
            (bm2.rows, bm2.cols),
            "residual shape mismatch"
        );
        assert_eq!(gm.rows, 1);
        assert_eq!(bm.rows, 1);
        assert_eq!(gm.cols, am.cols);
        let d = am.cols;
        let mut out = Matrix::zeros(am.rows, d);
        let mut sum_row = vec![0.0f32; d];
        for r in 0..am.rows {
            for ((s, &x), &y) in sum_row
                .iter_mut()
                .zip(&am.data[r * d..(r + 1) * d])
                .zip(&bm2.data[r * d..(r + 1) * d])
            {
                *s = x + y;
            }
            let mean = sum_row.iter().sum::<f32>() / d as f32;
            let var = sum_row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (c, &xv) in sum_row.iter().enumerate() {
                let xhat = (xv - mean) * inv;
                out.data[r * d + c] = gm.data[c] * xhat + bm.data[c];
            }
        }
        self.push(
            Op::AddLayerNormRows {
                a,
                b,
                gamma,
                beta,
                eps,
            },
            out,
        )
    }

    /// Select one row → `1×D`.
    pub fn select_row(&mut self, a: Var, row: usize) -> Var {
        let m = self.value(a);
        let out = Matrix::from_vec(1, m.cols, m.row(row).to_vec());
        self.push(Op::SelectRow(a, row), out)
    }

    /// Per-segment attention scores over a stacked batch.
    ///
    /// `q` and `k` hold `B` variable-length sequences stacked along rows
    /// (`segs[s]` rows each, `ΣL` total). The result is the block-diagonal of
    /// `q @ k^T` laid out compactly: row `base+i` holds
    /// `q_s[i] · k_s[j]` in columns `0..segs[s]`, zero in the padding columns
    /// up to `max(segs)`. Each segment only ever reads its own rows, so batch
    /// results are bit-identical to single-sequence results.
    ///
    /// Ragged batches must add a mask that blocks the padding columns (e.g.
    /// from [`crate::layers::segment_additive_mask`]) before any row softmax
    /// — a zero-filled padding column would otherwise receive softmax mass.
    /// [`Graph::seg_attn_scores_masked`] folds that mask in directly.
    pub fn seg_attn_scores(&mut self, q: Var, k: Var, segs: &[usize]) -> Var {
        let (qm, km) = (self.value(q), self.value(k));
        let total: usize = segs.iter().sum();
        assert_eq!(qm.rows, total, "segment lengths must cover q");
        assert_eq!(km.rows, total, "segment lengths must cover k");
        assert_eq!(qm.cols, km.cols, "q/k width mismatch");
        let d = qm.cols;
        let lmax = segs.iter().copied().max().unwrap_or(0);
        let mut out = Matrix::zeros(total, lmax);
        let mut base = 0;
        for &l in segs {
            for i in 0..l {
                let qi = &qm.data[(base + i) * d..(base + i + 1) * d];
                let orow = &mut out.data[(base + i) * lmax..(base + i) * lmax + l];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = dot(qi, &km.data[(base + j) * d..(base + j + 1) * d]);
                }
            }
            base += l;
        }
        self.push(
            Op::SegAttnScores {
                q,
                k,
                segs: segs.to_vec(),
            },
            out,
        )
    }

    /// Fused, mask-aware attention scores: like [`Graph::seg_attn_scores`]
    /// followed by a scale and an additive mask, but positions whose `mask`
    /// entry is non-zero (blocked, `-1e9`) skip the dot product entirely and
    /// emit the mask value itself. After the row softmax (whose underflow
    /// shortcut turns them into exact `+0.0`) the result is bit-identical to
    /// the unfused `scale → add-mask` pipeline, while sparse reachability
    /// masks skip most of the score work. `mask` must be a constant input
    /// (`ΣL×max(segs)`, `0.0` = attend).
    pub fn seg_attn_scores_masked(
        &mut self,
        q: Var,
        k: Var,
        mask: Var,
        segs: &[usize],
        scale: f32,
    ) -> Var {
        let (qm, km, mm) = (self.value(q), self.value(k), self.value(mask));
        let total: usize = segs.iter().sum();
        let lmax = segs.iter().copied().max().unwrap_or(0);
        assert_eq!(qm.rows, total, "segment lengths must cover q");
        assert_eq!(km.rows, total, "segment lengths must cover k");
        assert_eq!(qm.cols, km.cols, "q/k width mismatch");
        assert_eq!((mm.rows, mm.cols), (total, lmax), "mask must be ΣL×Lmax");
        assert!(
            !self.needs(mask),
            "attention mask must not require gradients"
        );
        let d = qm.cols;
        let mut out = mm.clone();
        let mut base = 0;
        for &l in segs {
            for i in 0..l {
                let qi = &qm.data[(base + i) * d..(base + i + 1) * d];
                let orow = &mut out.data[(base + i) * lmax..(base + i) * lmax + l];
                for (j, o) in orow.iter_mut().enumerate() {
                    if *o == 0.0 {
                        *o = dot(qi, &km.data[(base + j) * d..(base + j + 1) * d]) * scale;
                    }
                }
            }
            base += l;
        }
        self.push(
            Op::SegAttnScoresMasked {
                q,
                k,
                mask,
                segs: segs.to_vec(),
                scale,
            },
            out,
        )
    }

    /// Per-segment `attn_s @ v_s` for scores produced by
    /// [`Graph::seg_attn_scores`] (after mask + softmax): row `base+i` of the
    /// output is `Σ_j attn[base+i][j] · v[base+j]` over the segment's own
    /// rows. Padding columns of `attn` are ignored.
    pub fn seg_attn_apply(&mut self, attn: Var, v: Var, segs: &[usize]) -> Var {
        let (am, vm) = (self.value(attn), self.value(v));
        let total: usize = segs.iter().sum();
        let lmax = segs.iter().copied().max().unwrap_or(0);
        assert_eq!(am.rows, total, "segment lengths must cover attn");
        assert_eq!(vm.rows, total, "segment lengths must cover v");
        assert_eq!(am.cols, lmax, "attn must be padded to max segment length");
        let d = vm.cols;
        let mut out = Matrix::zeros(total, d);
        let mut base = 0;
        for &l in segs {
            for i in 0..l {
                let arow = &am.data[(base + i) * lmax..(base + i) * lmax + l];
                for (j, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        // Masked positions are *structurally* zero after the
                        // masked softmax; skipping them changes no bits
                        // (adding ±0·v is the identity) and skips the bulk
                        // of the work for sparse reachability masks.
                        continue;
                    }
                    let vrow = &vm.data[(base + j) * d..(base + j + 1) * d];
                    let orow = &mut out.data[(base + i) * d..(base + i + 1) * d];
                    for (o, &vv) in orow.iter_mut().zip(vrow) {
                        *o += a * vv;
                    }
                }
            }
            base += l;
        }
        self.push(
            Op::SegAttnApply {
                attn,
                v,
                segs: segs.to_vec(),
            },
            out,
        )
    }

    /// Fully-fused multi-head attention over a stacked segment batch.
    ///
    /// `qkv` is the packed projection (`ΣL × 3·d_model`, laid out
    /// `[Q | K | V]` with heads side by side inside each section); `mask` the
    /// additive reachability mask (`ΣL × max(segs)`, `0.0` = attend). For
    /// every head the op computes masked scores, a numerically-stabilised
    /// softmax (in a stack-local row buffer — no intermediate matrices) and
    /// the weighted value sum, writing each head's output into its own
    /// column window of the `ΣL × d_model` result — already in "concat"
    /// layout for the output projection. Each row depends only on its own
    /// segment, so batched results are bit-identical to singleton-batch
    /// results; versus the unfused `slice → scores → softmax → apply` chain
    /// the values agree to fp tolerance (the fused kernel accumulates scores
    /// feature-major, so low-order bits may differ).
    pub fn seg_multi_head_attention(
        &mut self,
        qkv: Var,
        mask: Var,
        segs: &[usize],
        heads: usize,
        scale: f32,
    ) -> Var {
        let (qm, mm) = (self.value(qkv), self.value(mask));
        let total: usize = segs.iter().sum();
        let lmax = segs.iter().copied().max().unwrap_or(0);
        let w3 = qm.cols;
        assert_eq!(w3 % 3, 0, "qkv width must be 3·d_model");
        let d_model = w3 / 3;
        assert_eq!(d_model % heads, 0, "heads must divide d_model");
        let dk = d_model / heads;
        assert_eq!(qm.rows, total, "segment lengths must cover qkv");
        assert_eq!((mm.rows, mm.cols), (total, lmax), "mask must be ΣL×Lmax");
        assert!(
            !self.needs(mask),
            "attention mask must not require gradients"
        );
        let mut out = Matrix::zeros(total, d_model);
        let record_attn = !self.inference;
        let mut attn_per_head = Vec::with_capacity(heads);
        let mut buf = vec![0.0f32; lmax];
        // Per-segment transposed K panel: scores then accumulate over the
        // feature index with a contiguous, vectorisable inner loop over `j`
        // instead of one short dot product per (i, j) pair.
        let mut kt = vec![0.0f32; lmax * dk];
        for h in 0..heads {
            let (qo, ko, vo) = (h * dk, d_model + h * dk, 2 * d_model + h * dk);
            let mut attn = if record_attn {
                Matrix::zeros(total, lmax)
            } else {
                Matrix::zeros(0, 0)
            };
            let mut base = 0;
            for &l in segs {
                for (c, col) in kt.chunks_mut(l).take(dk).enumerate() {
                    for (j, o) in col.iter_mut().enumerate() {
                        *o = qm.data[(base + j) * w3 + ko + c];
                    }
                }
                for i in 0..l {
                    let qi = &qm.data[(base + i) * w3 + qo..(base + i) * w3 + qo + dk];
                    // Scores over all j at once, feature-major.
                    buf[..l].fill(0.0);
                    for (c, &qv) in qi.iter().enumerate() {
                        let krow = &kt[c * l..c * l + l];
                        for (b, &kv) in buf[..l].iter_mut().zip(krow) {
                            *b += qv * kv;
                        }
                    }
                    // Scale, then overwrite blocked positions with the mask
                    // value (their computed score is discarded, keeping the
                    // output identical to the skip-masked formulation).
                    let mrow = &mm.data[(base + i) * lmax..(base + i) * lmax + l];
                    for (b, &mv) in buf[..l].iter_mut().zip(mrow) {
                        *b = if mv == 0.0 { *b * scale } else { mv };
                    }
                    // Softmax with the exp-underflow shortcut.
                    let max = buf[..l].iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0;
                    for b in buf[..l].iter_mut() {
                        let x = *b - max;
                        *b = if x <= -105.0 { 0.0 } else { x.exp() };
                        sum += *b;
                    }
                    let inv = 1.0 / sum;
                    for b in buf[..l].iter_mut() {
                        *b *= inv;
                    }
                    // Weighted value sum; masked weights are exactly 0.
                    let orow = &mut out.data
                        [(base + i) * d_model + h * dk..(base + i) * d_model + h * dk + dk];
                    for (j, &a) in buf[..l].iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let vrow = &qm.data[(base + j) * w3 + vo..(base + j) * w3 + vo + dk];
                        for (o, &vv) in orow.iter_mut().zip(vrow) {
                            *o += a * vv;
                        }
                    }
                    if record_attn {
                        attn.data[(base + i) * lmax..(base + i) * lmax + l]
                            .copy_from_slice(&buf[..l]);
                    }
                }
                base += l;
            }
            attn_per_head.push(attn);
        }
        self.push(
            Op::SegMultiHeadAttention {
                qkv,
                mask,
                segs: segs.to_vec(),
                heads,
                scale,
                attn: attn_per_head,
            },
            out,
        )
    }

    /// Mean over each segment's rows → `B×D` (batched sequence pooling).
    /// Segment `s` of the output equals [`Graph::mean_rows`] of that
    /// segment's rows, bit for bit.
    pub fn seg_mean_rows(&mut self, a: Var, segs: &[usize]) -> Var {
        let m = self.value(a);
        let total: usize = segs.iter().sum();
        assert_eq!(m.rows, total, "segment lengths must cover input");
        assert!(segs.iter().all(|&l| l > 0), "empty segment");
        let d = m.cols;
        let mut out = Matrix::zeros(segs.len(), d);
        let mut base = 0;
        for (s, &l) in segs.iter().enumerate() {
            let orow = &mut out.data[s * d..(s + 1) * d];
            for i in 0..l {
                let row = &m.data[(base + i) * d..(base + i + 1) * d];
                for (o, &v) in orow.iter_mut().zip(row) {
                    *o += v;
                }
            }
            for o in orow.iter_mut() {
                *o /= l as f32;
            }
            base += l;
        }
        self.push(Op::SegMeanRows(a, segs.to_vec()), out)
    }

    /// Run reverse-mode accumulation from scalar node `loss`; parameter
    /// gradients are accumulated into `set`.
    pub fn backward(&mut self, loss: Var, set: &mut ParamSet) {
        self.backward_into(loss, set);
    }

    /// Like [`Graph::backward`] but generic over the gradient destination:
    /// pass a [`crate::params::GradStore`] to collect gradients without
    /// mutating shared optimiser state (parallel training workers).
    pub fn backward_into(&mut self, loss: Var, sink: &mut impl GradSink) {
        assert!(!self.inference, "cannot run backward on an inference tape");
        {
            let n = &self.nodes[loss.0];
            assert_eq!(
                (n.value.rows, n.value.cols),
                (1, 1),
                "backward requires a scalar loss"
            );
        }
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[loss.0].grad = Some(Matrix::scalar(1.0));
        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(g) = self.nodes[i].grad.clone() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::Param(id) => sink.accumulate(id, &g),
                Op::MatMul(a, b) => {
                    let ga = g.matmul_nt(&self.nodes[b.0].value);
                    let at = self.nodes[a.0].value.transpose();
                    let gb = at.matmul(&g);
                    self.accum(a, ga);
                    self.accum(b, gb);
                }
                Op::MatMulBias { x, w, b } => {
                    let gx = g.matmul_nt(&self.nodes[w.0].value);
                    let xt = self.nodes[x.0].value.transpose();
                    let gw = xt.matmul(&g);
                    let mut gb = Matrix::zeros(1, g.cols);
                    for r in 0..g.rows {
                        for c in 0..g.cols {
                            gb.data[c] += g.get(r, c);
                        }
                    }
                    self.accum(x, gx);
                    self.accum(w, gw);
                    self.accum(b, gb);
                }
                Op::SliceCols(a, start, len) => {
                    let m = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(m.rows, m.cols);
                    for r in 0..m.rows {
                        ga.data[r * m.cols + start..r * m.cols + start + len]
                            .copy_from_slice(&g.data[r * len..(r + 1) * len]);
                    }
                    self.accum(a, ga);
                }
                Op::Transpose(a) => self.accum(a, g.transpose()),
                Op::Add(a, b) => {
                    self.accum(a, g.clone());
                    self.accum(b, g);
                }
                Op::Sub(a, b) => {
                    self.accum(a, g.clone());
                    self.accum(b, g.map(|x| -x));
                }
                Op::MulElem(a, b) => {
                    let ga = g.zip(&self.nodes[b.0].value, |x, y| x * y);
                    let gb = g.zip(&self.nodes[a.0].value, |x, y| x * y);
                    self.accum(a, ga);
                    self.accum(b, gb);
                }
                Op::MinElem(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let ga = g
                        .clone()
                        .zip(&av.zip(bv, |x, y| (x <= y) as u8 as f32), |gx, m| gx * m);
                    let gb = g.zip(&av.zip(bv, |x, y| (x > y) as u8 as f32), |gx, m| gx * m);
                    self.accum(a, ga);
                    self.accum(b, gb);
                }
                Op::Scale(a, c) => self.accum(a, g.map(|x| x * c)),
                Op::AddScalar(a, _) => self.accum(a, g),
                Op::AddRowBroadcast(a, b) => {
                    let mut gb = Matrix::zeros(1, g.cols);
                    for r in 0..g.rows {
                        for c in 0..g.cols {
                            gb.data[c] += g.get(r, c);
                        }
                    }
                    self.accum(a, g);
                    self.accum(b, gb);
                }
                Op::Relu(a) => {
                    let ga = g.zip(
                        &self.nodes[a.0].value,
                        |gx, x| if x > 0.0 { gx } else { 0.0 },
                    );
                    self.accum(a, ga);
                }
                Op::Tanh(a) => {
                    let ga = g.zip(&self.nodes[i].value, |gx, y| gx * (1.0 - y * y));
                    self.accum(a, ga);
                }
                Op::Exp(a) => {
                    let ga = g.zip(&self.nodes[i].value, |gx, y| gx * y);
                    self.accum(a, ga);
                }
                Op::PowConst(a, p) => {
                    let ga = g.zip(&self.nodes[a.0].value, |gx, x| {
                        gx * p * x.max(1e-12).powf(p - 1.0)
                    });
                    self.accum(a, ga);
                }
                Op::Clamp(a, lo, hi) => {
                    let ga = g.zip(&self.nodes[a.0].value, |gx, x| {
                        if (lo..=hi).contains(&x) {
                            gx
                        } else {
                            0.0
                        }
                    });
                    self.accum(a, ga);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    let mut ga = Matrix::zeros(y.rows, y.cols);
                    for r in 0..y.rows {
                        let dot: f32 = (0..y.cols).map(|c| g.get(r, c) * y.get(r, c)).sum();
                        for c in 0..y.cols {
                            ga.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    self.accum(a, ga);
                }
                Op::LogSoftmaxRows(a) => {
                    let sm = self.nodes[a.0].value.softmax_rows();
                    let mut ga = Matrix::zeros(sm.rows, sm.cols);
                    for r in 0..sm.rows {
                        let gsum: f32 = (0..sm.cols).map(|c| g.get(r, c)).sum();
                        for c in 0..sm.cols {
                            ga.set(r, c, g.get(r, c) - sm.get(r, c) * gsum);
                        }
                    }
                    self.accum(a, ga);
                }
                Op::ConcatCols(vars) => {
                    let mut offset = 0;
                    for v in vars {
                        let m = &self.nodes[v.0].value;
                        let mut gv = Matrix::zeros(m.rows, m.cols);
                        for r in 0..m.rows {
                            for c in 0..m.cols {
                                gv.set(r, c, g.get(r, offset + c));
                            }
                        }
                        offset += m.cols;
                        self.accum(v, gv);
                    }
                }
                Op::ConcatRows(vars) => {
                    let mut offset = 0;
                    for v in vars {
                        let m = &self.nodes[v.0].value;
                        let gv = Matrix::from_vec(
                            m.rows,
                            m.cols,
                            g.data[offset * g.cols..(offset + m.rows) * g.cols].to_vec(),
                        );
                        offset += m.rows;
                        self.accum(v, gv);
                    }
                }
                Op::Gather(table, indices) => {
                    let t = &self.nodes[table.0].value;
                    let mut gt = Matrix::zeros(t.rows, t.cols);
                    for (r, &idx) in indices.iter().enumerate() {
                        for c in 0..t.cols {
                            gt.data[idx * t.cols + c] += g.get(r, c);
                        }
                    }
                    self.accum(table, gt);
                }
                Op::PickPerRow(a, indices) => {
                    let m = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(m.rows, m.cols);
                    for (r, &c) in indices.iter().enumerate() {
                        ga.set(r, c, g.get(r, 0));
                    }
                    self.accum(a, ga);
                }
                Op::MeanRows(a) => {
                    let m = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(m.rows, m.cols);
                    let scale = 1.0 / m.rows as f32;
                    for r in 0..m.rows {
                        for c in 0..m.cols {
                            ga.set(r, c, g.get(0, c) * scale);
                        }
                    }
                    self.accum(a, ga);
                }
                Op::SumAll(a) => {
                    let m = &self.nodes[a.0].value;
                    self.accum(a, Matrix::full(m.rows, m.cols, g.get(0, 0)));
                }
                Op::MeanAll(a) => {
                    let m = &self.nodes[a.0].value;
                    let v = g.get(0, 0) / m.data.len() as f32;
                    self.accum(a, Matrix::full(m.rows, m.cols, v));
                }
                Op::LayerNormRows {
                    x,
                    gamma,
                    beta,
                    eps,
                } => {
                    let xm = self.nodes[x.0].value.clone();
                    let gm = self.nodes[gamma.0].value.clone();
                    let d = xm.cols as f32;
                    let mut gx = Matrix::zeros(xm.rows, xm.cols);
                    let mut ggamma = Matrix::zeros(1, xm.cols);
                    let mut gbeta = Matrix::zeros(1, xm.cols);
                    for r in 0..xm.rows {
                        let row = xm.row(r);
                        let mean = row.iter().sum::<f32>() / d;
                        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
                        let inv = 1.0 / (var + eps).sqrt();
                        let xhat: Vec<f32> = row.iter().map(|v| (v - mean) * inv).collect();
                        let gy: Vec<f32> = (0..xm.cols).map(|c| g.get(r, c)).collect();
                        for c in 0..xm.cols {
                            ggamma.data[c] += gy[c] * xhat[c];
                            gbeta.data[c] += gy[c];
                        }
                        let gxhat: Vec<f32> = (0..xm.cols).map(|c| gy[c] * gm.data[c]).collect();
                        let mean_gxhat = gxhat.iter().sum::<f32>() / d;
                        let mean_gxhat_xhat =
                            gxhat.iter().zip(&xhat).map(|(a, b)| a * b).sum::<f32>() / d;
                        for c in 0..xm.cols {
                            gx.set(
                                r,
                                c,
                                inv * (gxhat[c] - mean_gxhat - xhat[c] * mean_gxhat_xhat),
                            );
                        }
                    }
                    self.accum(x, gx);
                    self.accum(gamma, ggamma);
                    self.accum(beta, gbeta);
                }
                Op::AddLayerNormRows {
                    a,
                    b,
                    gamma,
                    beta,
                    eps,
                } => {
                    // Same maths as LayerNormRows with x = a + b recomputed
                    // row by row; the input gradient flows to both residual
                    // operands unchanged.
                    let am = &self.nodes[a.0].value;
                    let bm2 = &self.nodes[b.0].value;
                    let gm = self.nodes[gamma.0].value.clone();
                    let d = am.cols as f32;
                    let cols = am.cols;
                    let mut gx = Matrix::zeros(am.rows, cols);
                    let mut ggamma = Matrix::zeros(1, cols);
                    let mut gbeta = Matrix::zeros(1, cols);
                    let mut sum_row = vec![0.0f32; cols];
                    for r in 0..am.rows {
                        for ((s, &x), &y) in sum_row
                            .iter_mut()
                            .zip(&am.data[r * cols..(r + 1) * cols])
                            .zip(&bm2.data[r * cols..(r + 1) * cols])
                        {
                            *s = x + y;
                        }
                        let mean = sum_row.iter().sum::<f32>() / d;
                        let var = sum_row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
                        let inv = 1.0 / (var + eps).sqrt();
                        let xhat: Vec<f32> = sum_row.iter().map(|v| (v - mean) * inv).collect();
                        let gy: Vec<f32> = (0..cols).map(|c| g.get(r, c)).collect();
                        for c in 0..cols {
                            ggamma.data[c] += gy[c] * xhat[c];
                            gbeta.data[c] += gy[c];
                        }
                        let gxhat: Vec<f32> = (0..cols).map(|c| gy[c] * gm.data[c]).collect();
                        let mean_gxhat = gxhat.iter().sum::<f32>() / d;
                        let mean_gxhat_xhat =
                            gxhat.iter().zip(&xhat).map(|(a, b)| a * b).sum::<f32>() / d;
                        for c in 0..cols {
                            gx.set(
                                r,
                                c,
                                inv * (gxhat[c] - mean_gxhat - xhat[c] * mean_gxhat_xhat),
                            );
                        }
                    }
                    self.accum(a, gx.clone());
                    self.accum(b, gx);
                    self.accum(gamma, ggamma);
                    self.accum(beta, gbeta);
                }
                Op::SelectRow(a, row) => {
                    let m = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(m.rows, m.cols);
                    for c in 0..m.cols {
                        ga.set(row, c, g.get(0, c));
                    }
                    self.accum(a, ga);
                }
                Op::SegAttnScores { q, k, segs } => {
                    let qm = &self.nodes[q.0].value;
                    let km = &self.nodes[k.0].value;
                    let d = qm.cols;
                    let lmax = segs.iter().copied().max().unwrap_or(0);
                    let mut gq = Matrix::zeros(qm.rows, d);
                    let mut gk = Matrix::zeros(km.rows, d);
                    let mut base = 0;
                    for &l in &segs {
                        for i in 0..l {
                            let grow = &g.data[(base + i) * lmax..(base + i) * lmax + l];
                            for (j, &gij) in grow.iter().enumerate() {
                                let krow = &km.data[(base + j) * d..(base + j + 1) * d];
                                let qrow = &qm.data[(base + i) * d..(base + i + 1) * d];
                                let gqrow = &mut gq.data[(base + i) * d..(base + i + 1) * d];
                                for (o, &kv) in gqrow.iter_mut().zip(krow) {
                                    *o += gij * kv;
                                }
                                let gkrow = &mut gk.data[(base + j) * d..(base + j + 1) * d];
                                for (o, &qv) in gkrow.iter_mut().zip(qrow) {
                                    *o += gij * qv;
                                }
                            }
                        }
                        base += l;
                    }
                    self.accum(q, gq);
                    self.accum(k, gk);
                }
                Op::SegAttnScoresMasked {
                    q,
                    k,
                    mask,
                    segs,
                    scale,
                } => {
                    let qm = &self.nodes[q.0].value;
                    let km = &self.nodes[k.0].value;
                    let mm = &self.nodes[mask.0].value;
                    let d = qm.cols;
                    let lmax = segs.iter().copied().max().unwrap_or(0);
                    let mut gq = Matrix::zeros(qm.rows, d);
                    let mut gk = Matrix::zeros(km.rows, d);
                    let mut base = 0;
                    for &l in &segs {
                        for i in 0..l {
                            let grow = &g.data[(base + i) * lmax..(base + i) * lmax + l];
                            let mrow = &mm.data[(base + i) * lmax..(base + i) * lmax + l];
                            for (j, (&gij, &mij)) in grow.iter().zip(mrow).enumerate() {
                                if mij != 0.0 {
                                    // Blocked position: the forward emitted
                                    // the mask constant, not a dot product,
                                    // so the output there has zero partials
                                    // w.r.t. q and k.
                                    continue;
                                }
                                let gs = gij * scale;
                                let krow = &km.data[(base + j) * d..(base + j + 1) * d];
                                let qrow = &qm.data[(base + i) * d..(base + i + 1) * d];
                                let gqrow = &mut gq.data[(base + i) * d..(base + i + 1) * d];
                                for (o, &kv) in gqrow.iter_mut().zip(krow) {
                                    *o += gs * kv;
                                }
                                let gkrow = &mut gk.data[(base + j) * d..(base + j + 1) * d];
                                for (o, &qv) in gkrow.iter_mut().zip(qrow) {
                                    *o += gs * qv;
                                }
                            }
                        }
                        base += l;
                    }
                    self.accum(q, gq);
                    self.accum(k, gk);
                }
                Op::SegAttnApply { attn, v, segs } => {
                    let am = &self.nodes[attn.0].value;
                    let vm = &self.nodes[v.0].value;
                    let d = vm.cols;
                    let lmax = segs.iter().copied().max().unwrap_or(0);
                    let mut ga = Matrix::zeros(am.rows, am.cols);
                    let mut gv = Matrix::zeros(vm.rows, d);
                    let mut base = 0;
                    for &l in &segs {
                        for i in 0..l {
                            let grow = &g.data[(base + i) * d..(base + i + 1) * d];
                            let garow = &mut ga.data[(base + i) * lmax..(base + i) * lmax + l];
                            for (j, o) in garow.iter_mut().enumerate() {
                                *o = dot(grow, &vm.data[(base + j) * d..(base + j + 1) * d]);
                            }
                            let arow = &am.data[(base + i) * lmax..(base + i) * lmax + l];
                            for (j, &aij) in arow.iter().enumerate() {
                                if aij == 0.0 {
                                    continue; // structurally-masked: ±0·g adds nothing
                                }
                                let gvrow = &mut gv.data[(base + j) * d..(base + j + 1) * d];
                                for (o, &gg) in gvrow.iter_mut().zip(grow) {
                                    *o += aij * gg;
                                }
                            }
                        }
                        base += l;
                    }
                    self.accum(attn, ga);
                    self.accum(v, gv);
                }
                Op::SegMultiHeadAttention {
                    qkv,
                    mask,
                    segs,
                    heads,
                    scale,
                    attn,
                } => {
                    let qm = &self.nodes[qkv.0].value;
                    let mm = &self.nodes[mask.0].value;
                    let w3 = qm.cols;
                    let d_model = w3 / 3;
                    let dk = d_model / heads;
                    let lmax = segs.iter().copied().max().unwrap_or(0);
                    let mut gqkv = Matrix::zeros(qm.rows, w3);
                    let mut gy = vec![0.0f32; lmax];
                    for (h, y) in attn.iter().enumerate() {
                        let (qo, ko, vo) = (h * dk, d_model + h * dk, 2 * d_model + h * dk);
                        let mut base = 0;
                        for &l in &segs {
                            for i in 0..l {
                                let grow = &g.data[(base + i) * d_model + h * dk
                                    ..(base + i) * d_model + h * dk + dk];
                                let yrow = &y.data[(base + i) * lmax..(base + i) * lmax + l];
                                // gy = d(loss)/d(attn weights).
                                for (j, o) in gy[..l].iter_mut().enumerate() {
                                    *o = dot(
                                        grow,
                                        &qm.data[(base + j) * w3 + vo..(base + j) * w3 + vo + dk],
                                    );
                                }
                                // Softmax backward: gs = y ⊙ (gy − Σ gy·y).
                                let dotsum: f32 =
                                    gy[..l].iter().zip(yrow).map(|(a, b)| a * b).sum();
                                let mrow = &mm.data[(base + i) * lmax..(base + i) * lmax + l];
                                for j in 0..l {
                                    let yij = yrow[j];
                                    // gv: every attended value row gains y·g.
                                    if yij != 0.0 {
                                        let gvrow = &mut gqkv.data
                                            [(base + j) * w3 + vo..(base + j) * w3 + vo + dk];
                                        for (o, &gg) in gvrow.iter_mut().zip(grow) {
                                            *o += yij * gg;
                                        }
                                    }
                                    if mrow[j] != 0.0 {
                                        continue; // blocked: no score was computed
                                    }
                                    let gs = yij * (gy[j] - dotsum) * scale;
                                    let qi = (base + i) * w3 + qo;
                                    let kj = (base + j) * w3 + ko;
                                    for c in 0..dk {
                                        gqkv.data[qi + c] += gs * qm.data[kj + c];
                                    }
                                    for c in 0..dk {
                                        gqkv.data[kj + c] += gs * qm.data[qi + c];
                                    }
                                }
                            }
                            base += l;
                        }
                    }
                    self.accum(qkv, gqkv);
                }
                Op::SegMeanRows(a, segs) => {
                    let m = &self.nodes[a.0].value;
                    let d = m.cols;
                    let mut ga = Matrix::zeros(m.rows, d);
                    let mut base = 0;
                    for (s, &l) in segs.iter().enumerate() {
                        let scale = 1.0 / l as f32;
                        let grow = &g.data[s * d..(s + 1) * d];
                        for i in 0..l {
                            let garow = &mut ga.data[(base + i) * d..(base + i + 1) * d];
                            for (o, &gg) in garow.iter_mut().zip(grow) {
                                *o = gg * scale;
                            }
                        }
                        base += l;
                    }
                    self.accum(a, ga);
                }
            }
        }
    }

    fn accum(&mut self, v: Var, g: Matrix) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numeric gradient check: perturb each element of the single parameter
    /// and compare the finite difference to the analytic gradient.
    fn check_gradient(build: impl Fn(&mut Graph, Var) -> Var, init: Matrix, tol: f32) {
        let mut set = ParamSet::new();
        let id = set.alloc(init);
        // Analytic.
        let mut g = Graph::new();
        let p = g.param(id, &set);
        let loss = build(&mut g, p);
        set.zero_grad();
        g.backward(loss, &mut set);
        let analytic = set.grad(id).clone();
        // Numeric.
        let eps = 1e-3f32;
        let n = set.value(id).data.len();
        for i in 0..n {
            let orig = set.value(id).data[i];
            let eval = |set: &ParamSet| {
                let mut g = Graph::new();
                let p = g.param(id, set);
                let loss = build(&mut g, p);
                g.value(loss).get(0, 0)
            };
            set.value_mut(id).data[i] = orig + eps;
            let up = eval(&set);
            set.value_mut(id).data[i] = orig - eps;
            let down = eval(&set);
            set.value_mut(id).data[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic.data[i];
            assert!(
                (numeric - a).abs() < tol * (1.0 + numeric.abs().max(a.abs())),
                "grad mismatch at {i}: numeric={numeric} analytic={a}"
            );
        }
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| rng.random_range(-1.0..1.0f32))
                .collect(),
        )
    }

    #[test]
    fn grad_matmul_chain() {
        let w = rand_matrix(3, 4, 1);
        check_gradient(
            |g, p| {
                let x = g.input(rand_matrix(2, 3, 2));
                let y = g.matmul(x, p);
                let y = g.relu(y);
                g.sum_all(y)
            },
            w,
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_and_logsoftmax() {
        check_gradient(
            |g, p| {
                let s = g.softmax_rows(p);
                let t = g.input(rand_matrix(2, 4, 5));
                let m = g.mul(s, t);
                g.sum_all(m)
            },
            rand_matrix(2, 4, 3),
            1e-2,
        );
        check_gradient(
            |g, p| {
                let s = g.log_softmax_rows(p);
                let t = g.input(rand_matrix(2, 4, 6));
                let m = g.mul(s, t);
                g.sum_all(m)
            },
            rand_matrix(2, 4, 4),
            1e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        check_gradient(
            |g, p| {
                let gamma = g.input(Matrix::full(1, 4, 1.2));
                let beta = g.input(Matrix::full(1, 4, -0.1));
                let y = g.layer_norm_rows(p, gamma, beta, 1e-5);
                let t = g.input(rand_matrix(3, 4, 8));
                let m = g.mul(y, t);
                g.sum_all(m)
            },
            rand_matrix(3, 4, 7),
            2e-2,
        );
    }

    #[test]
    fn grad_pointwise_ops() {
        check_gradient(
            |g, p| {
                let e = g.exp(p);
                let t = g.tanh(e);
                let s = g.scale(t, 0.5);
                let s = g.add_scalar(s, 1.0);
                g.mean_all(s)
            },
            rand_matrix(2, 3, 9),
            1e-2,
        );
    }

    #[test]
    fn grad_pow_const() {
        check_gradient(
            |g, p| {
                // keep inputs positive for powf
                let sp = g.softmax_rows(p);
                let pw = g.pow_const(sp, 2.5);
                g.sum_all(pw)
            },
            rand_matrix(2, 4, 10),
            2e-2,
        );
    }

    #[test]
    fn grad_gather_and_pick() {
        check_gradient(
            |g, p| {
                let rows = g.gather(p, &[0, 2, 2]);
                let picked = g.pick_per_row(rows, &[1, 0, 1]);
                g.sum_all(picked)
            },
            rand_matrix(3, 2, 11),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_and_broadcast() {
        check_gradient(
            |g, p| {
                let x = g.input(rand_matrix(2, 3, 12));
                let y = g.matmul(x, p); // 2×2
                let z = g.concat_cols(&[y, y]);
                let bias = g.input(rand_matrix(1, 4, 13));
                let z = g.add_row_broadcast(z, bias);
                let pooled = g.mean_rows(z);
                g.sum_all(pooled)
            },
            rand_matrix(3, 2, 14),
            1e-2,
        );
    }

    #[test]
    fn grad_min_and_clamp() {
        check_gradient(
            |g, p| {
                let c = g.clamp(p, -0.5, 0.5);
                let other = g.input(rand_matrix(2, 3, 15));
                let m = g.min_elem(c, other);
                g.sum_all(m)
            },
            rand_matrix(2, 3, 16),
            2e-2,
        );
    }

    #[test]
    fn grad_select_and_transpose() {
        check_gradient(
            |g, p| {
                let t = g.transpose(p);
                let r = g.select_row(t, 1);
                let sq = g.mul(r, r);
                g.sum_all(sq)
            },
            rand_matrix(3, 2, 17),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_rows_and_sub() {
        check_gradient(
            |g, p| {
                let a = g.scale(p, 2.0);
                let stacked = g.concat_rows(&[p, a]);
                let t = g.input(rand_matrix(4, 3, 18));
                let d = g.sub(stacked, t);
                let sq = g.mul(d, d);
                g.mean_all(sq)
            },
            rand_matrix(2, 3, 19),
            1e-2,
        );
    }

    #[test]
    fn grad_seg_attn_scores_and_apply() {
        // Two ragged segments (3 and 2 rows) through a toy attention:
        // scores → softmax → apply, all differentiated through the segment ops.
        let segs = [3usize, 2];
        check_gradient(
            |g, p| {
                let k = g.input(rand_matrix(5, 4, 21));
                let v = g.input(rand_matrix(5, 4, 22));
                let scores = g.seg_attn_scores(p, k, &segs);
                let sm = g.softmax_rows(scores);
                let out = g.seg_attn_apply(sm, v, &segs);
                let t = g.input(rand_matrix(5, 4, 23));
                let m = g.mul(out, t);
                g.sum_all(m)
            },
            rand_matrix(5, 4, 20),
            2e-2,
        );
        // Gradients w.r.t. k and v sides too.
        check_gradient(
            |g, p| {
                let q = g.input(rand_matrix(5, 4, 24));
                let scores = g.seg_attn_scores(q, p, &segs);
                let sm = g.softmax_rows(scores);
                let out = g.seg_attn_apply(sm, p, &segs);
                g.sum_all(out)
            },
            rand_matrix(5, 4, 25),
            2e-2,
        );
    }

    #[test]
    fn grad_matmul_bias_fused() {
        // Against each operand of the fused linear.
        check_gradient(
            |g, p| {
                let w = g.input(rand_matrix(3, 4, 71));
                let b = g.input(rand_matrix(1, 4, 72));
                let y = g.matmul_bias(p, w, b);
                let y = g.tanh(y);
                g.sum_all(y)
            },
            rand_matrix(2, 3, 70),
            1e-2,
        );
        check_gradient(
            |g, p| {
                let x = g.input(rand_matrix(2, 3, 73));
                let b = g.input(rand_matrix(1, 4, 74));
                let y = g.matmul_bias(x, p, b);
                g.sum_all(y)
            },
            rand_matrix(3, 4, 75),
            1e-2,
        );
        check_gradient(
            |g, p| {
                let x = g.input(rand_matrix(2, 3, 76));
                let w = g.input(rand_matrix(3, 4, 77));
                let y = g.matmul_bias(x, w, p);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            rand_matrix(1, 4, 78),
            1e-2,
        );
        // Value matches the unfused pipeline up to fp association.
        let mut g = Graph::new();
        let x = g.input(rand_matrix(2, 3, 79));
        let w = g.input(rand_matrix(3, 4, 80));
        let b = g.input(rand_matrix(1, 4, 81));
        let fused = g.matmul_bias(x, w, b);
        let mm = g.matmul(x, w);
        let unfused = g.add_row_broadcast(mm, b);
        for (a, e) in g
            .value(fused)
            .data
            .iter()
            .zip(&g.value(unfused).data.clone())
        {
            assert!((a - e).abs() < 1e-6);
        }
    }

    #[test]
    fn grad_slice_cols() {
        check_gradient(
            |g, p| {
                let s = g.slice_cols(p, 1, 2);
                let t = g.input(rand_matrix(3, 2, 83));
                let m = g.mul(s, t);
                g.sum_all(m)
            },
            rand_matrix(3, 5, 82),
            1e-2,
        );
    }

    #[test]
    fn grad_add_layer_norm_fused() {
        check_gradient(
            |g, p| {
                let other = g.input(rand_matrix(3, 4, 85));
                let gamma = g.input(Matrix::full(1, 4, 1.1));
                let beta = g.input(Matrix::full(1, 4, 0.2));
                let y = g.add_layer_norm_rows(p, other, gamma, beta, 1e-5);
                let t = g.input(rand_matrix(3, 4, 86));
                let m = g.mul(y, t);
                g.sum_all(m)
            },
            rand_matrix(3, 4, 84),
            2e-2,
        );
        // Fused output equals add-then-norm exactly.
        let mut g = Graph::new();
        let a = g.input(rand_matrix(3, 4, 87));
        let b = g.input(rand_matrix(3, 4, 88));
        let gamma = g.input(Matrix::full(1, 4, 0.9));
        let beta = g.input(Matrix::full(1, 4, -0.3));
        let fused = g.add_layer_norm_rows(a, b, gamma, beta, 1e-5);
        let sum = g.add(a, b);
        let unfused = g.layer_norm_rows(sum, gamma, beta, 1e-5);
        assert_eq!(g.value(fused).data, g.value(unfused).data.clone());
    }

    #[test]
    fn grad_seg_attn_scores_masked() {
        // Ragged segments with a sparse mask; gradient must flow only
        // through unmasked positions, matching numeric differentiation.
        let segs = [3usize, 2];
        let mask = Matrix::from_rows(&[
            &[0.0, -1e9, 0.0],
            &[0.0, 0.0, -1e9],
            &[-1e9, 0.0, 0.0],
            &[0.0, 0.0, -1e9], // second segment: col 2 is ragged padding
            &[-1e9, 0.0, -1e9],
        ]);
        check_gradient(
            |g, p| {
                let k = g.input(rand_matrix(5, 4, 51));
                let v = g.input(rand_matrix(5, 4, 52));
                let mv = g.input(mask.clone());
                let scores = g.seg_attn_scores_masked(p, k, mv, &segs, 0.5);
                let sm = g.softmax_rows(scores);
                let out = g.seg_attn_apply(sm, v, &segs);
                let t = g.input(rand_matrix(5, 4, 53));
                let m = g.mul(out, t);
                g.sum_all(m)
            },
            rand_matrix(5, 4, 50),
            2e-2,
        );
        check_gradient(
            |g, p| {
                let q = g.input(rand_matrix(5, 4, 54));
                let mv = g.input(mask.clone());
                let scores = g.seg_attn_scores_masked(q, p, mv, &segs, 0.5);
                let sm = g.softmax_rows(scores);
                let out = g.seg_attn_apply(sm, p, &segs);
                g.sum_all(out)
            },
            rand_matrix(5, 4, 55),
            2e-2,
        );
    }

    #[test]
    fn masked_scores_match_unfused_pipeline() {
        let segs = [3usize, 2];
        let q = rand_matrix(5, 4, 60);
        let k = rand_matrix(5, 4, 61);
        let mask = Matrix::from_rows(&[
            &[0.0, -1e9, 0.0],
            &[0.0, 0.0, 0.0],
            &[-1e9, 0.0, 0.0],
            &[0.0, 0.0, -1e9],
            &[0.0, 0.0, -1e9],
        ]);
        let mut g1 = Graph::new();
        let (q1, k1) = (g1.input(q.clone()), g1.input(k.clone()));
        let m1 = g1.input(mask.clone());
        let fused = g1.seg_attn_scores_masked(q1, k1, m1, &segs, 0.25);
        let sm_fused = g1.softmax_rows(fused);
        let mut g2 = Graph::new();
        let (q2, k2) = (g2.input(q), g2.input(k));
        let m2 = g2.input(mask);
        let raw = g2.seg_attn_scores(q2, k2, &segs);
        let scaled = g2.scale(raw, 0.25);
        let masked = g2.add(scaled, m2);
        let sm_unfused = g2.softmax_rows(masked);
        assert_eq!(g1.value(sm_fused).data, g2.value(sm_unfused).data);
    }

    #[test]
    fn grad_seg_multi_head_attention() {
        // Packed qkv (d_model = 4, 2 heads of width 2) over ragged segments.
        let segs = [3usize, 2];
        let mask = Matrix::from_rows(&[
            &[0.0, -1e9, 0.0],
            &[0.0, 0.0, -1e9],
            &[-1e9, 0.0, 0.0],
            &[0.0, 0.0, -1e9],
            &[-1e9, 0.0, -1e9],
        ]);
        check_gradient(
            |g, p| {
                let mv = g.input(mask.clone());
                let att = g.seg_multi_head_attention(p, mv, &segs, 2, 0.7);
                let t = g.input(rand_matrix(5, 4, 91));
                let m = g.mul(att, t);
                g.sum_all(m)
            },
            rand_matrix(5, 12, 90),
            3e-2,
        );
    }

    #[test]
    fn fused_mha_matches_unfused_ops_bitwise() {
        let segs = [3usize, 2];
        let qkv = rand_matrix(5, 12, 92); // d_model = 4, heads = 2, dk = 2
        let mask = Matrix::from_rows(&[
            &[0.0, -1e9, 0.0],
            &[0.0, 0.0, 0.0],
            &[-1e9, 0.0, 0.0],
            &[0.0, 0.0, -1e9],
            &[0.0, 0.0, -1e9],
        ]);
        let mut g1 = Graph::new();
        let q1 = g1.input(qkv.clone());
        let m1 = g1.input(mask.clone());
        let fused = g1.seg_multi_head_attention(q1, m1, &segs, 2, 0.5);
        let mut g2 = Graph::new();
        let qv = g2.input(qkv);
        let m2 = g2.input(mask);
        let mut heads = Vec::new();
        for h in 0..2usize {
            let q = g2.slice_cols(qv, h * 2, 2);
            let k = g2.slice_cols(qv, 4 + h * 2, 2);
            let v = g2.slice_cols(qv, 8 + h * 2, 2);
            let scores = g2.seg_attn_scores_masked(q, k, m2, &segs, 0.5);
            let sm = g2.softmax_rows(scores);
            heads.push(g2.seg_attn_apply(sm, v, &segs));
        }
        let unfused = g2.concat_cols(&heads);
        // The fused kernel accumulates scores feature-major while the
        // unfused ops use chunked dots, so association (and hence low-order
        // bits) may differ; values must still agree to fp tolerance.
        for (a, b) in g1
            .value(fused)
            .data
            .iter()
            .zip(&g2.value(unfused).data.clone())
        {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn grad_seg_mean_rows() {
        check_gradient(
            |g, p| {
                let pooled = g.seg_mean_rows(p, &[2, 3]);
                let t = g.input(rand_matrix(2, 3, 27));
                let m = g.mul(pooled, t);
                g.sum_all(m)
            },
            rand_matrix(5, 3, 26),
            1e-2,
        );
    }

    #[test]
    fn seg_ops_match_per_sequence_ops_bitwise() {
        // A stacked two-segment batch must reproduce the per-sequence
        // single-graph results exactly — the batched-inference invariant.
        let qa = rand_matrix(3, 4, 30);
        let qb = rand_matrix(2, 4, 31);
        let ka = rand_matrix(3, 4, 32);
        let kb = rand_matrix(2, 4, 33);
        let stack = |a: &Matrix, b: &Matrix| {
            let mut d = a.data.clone();
            d.extend_from_slice(&b.data);
            Matrix::from_vec(a.rows + b.rows, a.cols, d)
        };
        let mut g = Graph::new();
        let q = g.input(stack(&qa, &qb));
        let k = g.input(stack(&ka, &kb));
        let scores = g.seg_attn_scores(q, k, &[3, 2]);
        let sv = g.value(scores).clone();
        // Per-segment reference via matmul_nt on the raw matrices.
        let ra = qa.matmul_nt(&ka);
        let rb = qb.matmul_nt(&kb);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(sv.get(i, j), ra.get(i, j));
            }
        }
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(sv.get(3 + i, j), rb.get(i, j));
            }
            assert_eq!(sv.get(3 + i, 2), 0.0, "padding column must be zero");
        }
        // seg_mean_rows row 0 == mean_rows of the first segment alone.
        let pooled = g.seg_mean_rows(q, &[3, 2]);
        let mut g2 = Graph::new();
        let qa_in = g2.input(qa.clone());
        let single = g2.mean_rows(qa_in);
        assert_eq!(g.value(pooled).row(0), g2.value(single).row(0));
    }

    #[test]
    fn backward_into_grad_store_matches_param_set() {
        let mut set = ParamSet::new();
        let id = set.alloc(rand_matrix(3, 4, 40));
        let build = |g: &mut Graph, p: Var| {
            let x = g.input(rand_matrix(2, 3, 41));
            let y = g.matmul(x, p);
            let y = g.tanh(y);
            g.sum_all(y)
        };
        let mut g1 = Graph::new();
        let p1 = g1.param(id, &set);
        let loss1 = build(&mut g1, p1);
        set.zero_grad();
        g1.backward(loss1, &mut set);
        let via_set = set.grad(id).clone();

        let mut store = crate::params::GradStore::zeros_like(&set);
        let mut g2 = Graph::new();
        let p2 = g2.param(id, &set);
        let loss2 = build(&mut g2, p2);
        g2.backward_into(loss2, &mut store);
        assert_eq!(store.grad(id), &via_set);

        // add_into accumulates on top of existing grads.
        store.add_into(&mut set);
        let doubled = set.grad(id).clone();
        for (d, v) in doubled.data.iter().zip(&via_set.data) {
            assert!((d - 2.0 * v).abs() < 1e-6);
        }
    }

    #[test]
    fn masked_softmax_ignores_masked_entries() {
        let mut g = Graph::new();
        let logits = g.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let mask = g.input(Matrix::from_rows(&[&[0.0, -1e9, 0.0]]));
        let masked = g.add(logits, mask);
        let sm = g.softmax_rows(masked);
        let v = g.value(sm);
        assert!(v.get(0, 1) < 1e-6);
        assert!((v.get(0, 0) + v.get(0, 2) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn end_to_end_training_reduces_loss() {
        // Tiny regression: y = x @ W, learn W to match a target mapping.
        let mut rng = StdRng::seed_from_u64(42);
        let mut set = ParamSet::new();
        let w = set.alloc_xavier(3, 2, &mut rng);
        let mut adam = crate::params::Adam::new(0.05);
        let x = rand_matrix(8, 3, 20);
        let target = x.matmul(&Matrix::from_rows(&[
            &[1.0, -1.0],
            &[0.5, 2.0],
            &[-1.5, 0.0],
        ]));
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let mut g = Graph::new();
            let xin = g.input(x.clone());
            let wv = g.param(w, &set);
            let pred = g.matmul(xin, wv);
            let t = g.input(target.clone());
            let d = g.sub(pred, t);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            last = g.value(loss).get(0, 0);
            first.get_or_insert(last);
            set.zero_grad();
            g.backward(loss, &mut set);
            adam.step(&mut set);
        }
        assert!(last < first.unwrap() / 100.0, "loss {first:?} → {last}");
    }
}
