//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a tape of operations recorded during one forward pass;
//! [`Graph::backward`] replays it in reverse, accumulating gradients into the
//! tape and into the [`ParamSet`] for parameter leaves. The op set is exactly
//! what the FOSS models need: dense algebra, attention building blocks
//! (matmul / transpose / masked softmax), embedding gathers, and the
//! pointwise functions used by PPO and the asymmetric loss.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
#[allow(dead_code)] // constant operands are kept for Debug output
enum Op {
    Leaf,
    Param(ParamId),
    MatMul(Var, Var),
    Transpose(Var),
    Add(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    AddRowBroadcast(Var, Var),
    Relu(Var),
    Tanh(Var),
    Exp(Var),
    PowConst(Var, f32),
    Clamp(Var, f32, f32),
    MinElem(Var, Var),
    SoftmaxRows(Var),
    LogSoftmaxRows(Var),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    Gather(Var, Vec<usize>),
    PickPerRow(Var, Vec<usize>),
    MeanRows(Var),
    SumAll(Var),
    MeanAll(Var),
    LayerNormRows { x: Var, gamma: Var, beta: Var, eps: f32 },
    SelectRow(Var, usize),
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
    needs_grad: bool,
}

/// The autograd tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Fresh empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after [`Graph::backward`] (zeros if unreached).
    pub fn grad(&self, v: Var) -> Matrix {
        let n = &self.nodes[v.0];
        n.grad
            .clone()
            .unwrap_or_else(|| Matrix::zeros(n.value.rows, n.value.cols))
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        let needs_grad = match &op {
            Op::Leaf => false,
            Op::Param(_) => true,
            Op::MatMul(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::MulElem(a, b)
            | Op::MinElem(a, b)
            | Op::AddRowBroadcast(a, b) => self.needs(*a) || self.needs(*b),
            Op::Transpose(a)
            | Op::Scale(a, _)
            | Op::AddScalar(a, _)
            | Op::Relu(a)
            | Op::Tanh(a)
            | Op::Exp(a)
            | Op::PowConst(a, _)
            | Op::Clamp(a, _, _)
            | Op::SoftmaxRows(a)
            | Op::LogSoftmaxRows(a)
            | Op::Gather(a, _)
            | Op::PickPerRow(a, _)
            | Op::MeanRows(a)
            | Op::SumAll(a)
            | Op::MeanAll(a)
            | Op::SelectRow(a, _) => self.needs(*a),
            Op::ConcatCols(vs) | Op::ConcatRows(vs) => vs.iter().any(|&v| self.needs(v)),
            Op::LayerNormRows { x, gamma, beta, .. } => {
                self.needs(*x) || self.needs(*gamma) || self.needs(*beta)
            }
        };
        self.nodes.push(Node { op, value, grad: None, needs_grad });
        Var(self.nodes.len() - 1)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// A constant input (no gradient): data batches, masks, targets.
    pub fn input(&mut self, m: Matrix) -> Var {
        self.push(Op::Leaf, m)
    }

    /// A scalar constant.
    pub fn constant(&mut self, v: f32) -> Var {
        self.input(Matrix::scalar(v))
    }

    /// A parameter leaf; its gradient flows into `set` on backward.
    pub fn param(&mut self, id: ParamId, set: &ParamSet) -> Var {
        self.push(Op::Param(id), set.value(id).clone())
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(Op::MulElem(a, b), v)
    }

    /// Elementwise `min(a, b)` (PPO clipped surrogate).
    pub fn min_elem(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), f32::min);
        self.push(Op::MinElem(a, b), v)
    }

    /// `a * c` for scalar constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).map(|x| x * c);
        self.push(Op::Scale(a, c), v)
    }

    /// `a + c` for scalar constant `c`.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).map(|x| x + c);
        self.push(Op::AddScalar(a, c), v)
    }

    /// Broadcast-add a `1×D` row vector to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (self.value(a), self.value(b));
        assert_eq!(bm.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(am.cols, bm.cols, "broadcast width mismatch");
        let mut out = am.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bm.data[c];
            }
        }
        self.push(Op::AddRowBroadcast(a, b), out)
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::exp);
        self.push(Op::Exp(a), v)
    }

    /// Elementwise `a^p` for `a ≥ 0` (focal-loss decay terms).
    pub fn pow_const(&mut self, a: Var, p: f32) -> Var {
        let v = self.value(a).map(|x| x.max(0.0).powf(p));
        self.push(Op::PowConst(a, p), v)
    }

    /// Elementwise clamp to `[lo, hi]`; gradient is zero outside.
    pub fn clamp(&mut self, a: Var, lo: f32, hi: f32) -> Var {
        let v = self.value(a).map(|x| x.clamp(lo, hi));
        self.push(Op::Clamp(a, lo, hi), v)
    }

    /// Row-wise softmax. Add a large-negative mask beforehand to exclude
    /// entries (attention masks, action masks).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).softmax_rows();
        self.push(Op::SoftmaxRows(a), v)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).log_softmax_rows();
        self.push(Op::LogSoftmaxRows(a), v)
    }

    /// Concatenate along columns.
    pub fn concat_cols(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty());
        let rows = self.value(vars[0]).rows;
        let cols: usize = vars.iter().map(|&v| self.value(v).cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut offset = 0;
        for &v in vars {
            let m = self.value(v);
            assert_eq!(m.rows, rows, "concat_cols row mismatch");
            for r in 0..rows {
                out.data[r * cols + offset..r * cols + offset + m.cols]
                    .copy_from_slice(m.row(r));
            }
            offset += m.cols;
        }
        self.push(Op::ConcatCols(vars.to_vec()), out)
    }

    /// Concatenate along rows.
    pub fn concat_rows(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty());
        let cols = self.value(vars[0]).cols;
        let rows: usize = vars.iter().map(|&v| self.value(v).rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for &v in vars {
            let m = self.value(v);
            assert_eq!(m.cols, cols, "concat_rows col mismatch");
            data.extend_from_slice(&m.data);
        }
        self.push(Op::ConcatRows(vars.to_vec()), Matrix::from_vec(rows, cols, data))
    }

    /// Gather rows of `table` by `indices` (embedding lookup).
    pub fn gather(&mut self, table: Var, indices: &[usize]) -> Var {
        let t = self.value(table);
        let mut out = Matrix::zeros(indices.len(), t.cols);
        for (r, &i) in indices.iter().enumerate() {
            out.data[r * t.cols..(r + 1) * t.cols].copy_from_slice(t.row(i));
        }
        self.push(Op::Gather(table, indices.to_vec()), out)
    }

    /// `out[r, 0] = a[r, indices[r]]` — per-row element selection
    /// (log-probability of the chosen action).
    pub fn pick_per_row(&mut self, a: Var, indices: &[usize]) -> Var {
        let m = self.value(a);
        assert_eq!(m.rows, indices.len(), "one index per row required");
        let mut out = Matrix::zeros(m.rows, 1);
        for (r, &c) in indices.iter().enumerate() {
            out.data[r] = m.get(r, c);
        }
        self.push(Op::PickPerRow(a, indices.to_vec()), out)
    }

    /// Mean over rows → `1×D` (sequence pooling).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let m = self.value(a);
        let mut out = Matrix::zeros(1, m.cols);
        for r in 0..m.rows {
            for c in 0..m.cols {
                out.data[c] += m.get(r, c);
            }
        }
        for v in &mut out.data {
            *v /= m.rows as f32;
        }
        self.push(Op::MeanRows(a), out)
    }

    /// Sum of all elements → `1×1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::scalar(self.value(a).sum());
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements → `1×1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let m = self.value(a);
        let v = Matrix::scalar(m.sum() / m.data.len() as f32);
        self.push(Op::MeanAll(a), v)
    }

    /// Row-wise layer normalisation with learnable `gamma`/`beta` (`1×D`).
    pub fn layer_norm_rows(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let (xm, gm, bm) = (self.value(x), self.value(gamma), self.value(beta));
        assert_eq!(gm.rows, 1);
        assert_eq!(bm.rows, 1);
        assert_eq!(gm.cols, xm.cols);
        let mut out = xm.clone();
        for r in 0..xm.rows {
            let row = xm.row(r);
            let mean = row.iter().sum::<f32>() / row.len() as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (c, &xv) in row.iter().enumerate() {
                let xhat = (xv - mean) * inv;
                out.data[r * xm.cols + c] = gm.data[c] * xhat + bm.data[c];
            }
        }
        self.push(Op::LayerNormRows { x, gamma, beta, eps }, out)
    }

    /// Select one row → `1×D`.
    pub fn select_row(&mut self, a: Var, row: usize) -> Var {
        let m = self.value(a);
        let out = Matrix::from_vec(1, m.cols, m.row(row).to_vec());
        self.push(Op::SelectRow(a, row), out)
    }

    /// Run reverse-mode accumulation from scalar node `loss`; parameter
    /// gradients are accumulated into `set`.
    pub fn backward(&mut self, loss: Var, set: &mut ParamSet) {
        {
            let n = &self.nodes[loss.0];
            assert_eq!(
                (n.value.rows, n.value.cols),
                (1, 1),
                "backward requires a scalar loss"
            );
        }
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[loss.0].grad = Some(Matrix::scalar(1.0));
        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(g) = self.nodes[i].grad.clone() else { continue };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::Param(id) => set.accumulate_grad(id, &g),
                Op::MatMul(a, b) => {
                    let bt = self.nodes[b.0].value.transpose();
                    let at = self.nodes[a.0].value.transpose();
                    let ga = g.matmul(&bt);
                    let gb = at.matmul(&g);
                    self.accum(a, ga);
                    self.accum(b, gb);
                }
                Op::Transpose(a) => self.accum(a, g.transpose()),
                Op::Add(a, b) => {
                    self.accum(a, g.clone());
                    self.accum(b, g);
                }
                Op::Sub(a, b) => {
                    self.accum(a, g.clone());
                    self.accum(b, g.map(|x| -x));
                }
                Op::MulElem(a, b) => {
                    let ga = g.zip(&self.nodes[b.0].value, |x, y| x * y);
                    let gb = g.zip(&self.nodes[a.0].value, |x, y| x * y);
                    self.accum(a, ga);
                    self.accum(b, gb);
                }
                Op::MinElem(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let ga = g.clone().zip(&av.zip(bv, |x, y| (x <= y) as u8 as f32), |gx, m| gx * m);
                    let gb = g.zip(&av.zip(bv, |x, y| (x > y) as u8 as f32), |gx, m| gx * m);
                    self.accum(a, ga);
                    self.accum(b, gb);
                }
                Op::Scale(a, c) => self.accum(a, g.map(|x| x * c)),
                Op::AddScalar(a, _) => self.accum(a, g),
                Op::AddRowBroadcast(a, b) => {
                    let mut gb = Matrix::zeros(1, g.cols);
                    for r in 0..g.rows {
                        for c in 0..g.cols {
                            gb.data[c] += g.get(r, c);
                        }
                    }
                    self.accum(a, g);
                    self.accum(b, gb);
                }
                Op::Relu(a) => {
                    let ga = g.zip(&self.nodes[a.0].value, |gx, x| if x > 0.0 { gx } else { 0.0 });
                    self.accum(a, ga);
                }
                Op::Tanh(a) => {
                    let ga = g.zip(&self.nodes[i].value, |gx, y| gx * (1.0 - y * y));
                    self.accum(a, ga);
                }
                Op::Exp(a) => {
                    let ga = g.zip(&self.nodes[i].value, |gx, y| gx * y);
                    self.accum(a, ga);
                }
                Op::PowConst(a, p) => {
                    let ga = g.zip(&self.nodes[a.0].value, |gx, x| {
                        gx * p * x.max(1e-12).powf(p - 1.0)
                    });
                    self.accum(a, ga);
                }
                Op::Clamp(a, lo, hi) => {
                    let ga = g.zip(&self.nodes[a.0].value, |gx, x| {
                        if (lo..=hi).contains(&x) {
                            gx
                        } else {
                            0.0
                        }
                    });
                    self.accum(a, ga);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    let mut ga = Matrix::zeros(y.rows, y.cols);
                    for r in 0..y.rows {
                        let dot: f32 =
                            (0..y.cols).map(|c| g.get(r, c) * y.get(r, c)).sum();
                        for c in 0..y.cols {
                            ga.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    self.accum(a, ga);
                }
                Op::LogSoftmaxRows(a) => {
                    let sm = self.nodes[a.0].value.softmax_rows();
                    let mut ga = Matrix::zeros(sm.rows, sm.cols);
                    for r in 0..sm.rows {
                        let gsum: f32 = (0..sm.cols).map(|c| g.get(r, c)).sum();
                        for c in 0..sm.cols {
                            ga.set(r, c, g.get(r, c) - sm.get(r, c) * gsum);
                        }
                    }
                    self.accum(a, ga);
                }
                Op::ConcatCols(vars) => {
                    let mut offset = 0;
                    for v in vars {
                        let m = &self.nodes[v.0].value;
                        let mut gv = Matrix::zeros(m.rows, m.cols);
                        for r in 0..m.rows {
                            for c in 0..m.cols {
                                gv.set(r, c, g.get(r, offset + c));
                            }
                        }
                        offset += m.cols;
                        self.accum(v, gv);
                    }
                }
                Op::ConcatRows(vars) => {
                    let mut offset = 0;
                    for v in vars {
                        let m = &self.nodes[v.0].value;
                        let gv = Matrix::from_vec(
                            m.rows,
                            m.cols,
                            g.data[offset * g.cols..(offset + m.rows) * g.cols].to_vec(),
                        );
                        offset += m.rows;
                        self.accum(v, gv);
                    }
                }
                Op::Gather(table, indices) => {
                    let t = &self.nodes[table.0].value;
                    let mut gt = Matrix::zeros(t.rows, t.cols);
                    for (r, &idx) in indices.iter().enumerate() {
                        for c in 0..t.cols {
                            gt.data[idx * t.cols + c] += g.get(r, c);
                        }
                    }
                    self.accum(table, gt);
                }
                Op::PickPerRow(a, indices) => {
                    let m = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(m.rows, m.cols);
                    for (r, &c) in indices.iter().enumerate() {
                        ga.set(r, c, g.get(r, 0));
                    }
                    self.accum(a, ga);
                }
                Op::MeanRows(a) => {
                    let m = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(m.rows, m.cols);
                    let scale = 1.0 / m.rows as f32;
                    for r in 0..m.rows {
                        for c in 0..m.cols {
                            ga.set(r, c, g.get(0, c) * scale);
                        }
                    }
                    self.accum(a, ga);
                }
                Op::SumAll(a) => {
                    let m = &self.nodes[a.0].value;
                    self.accum(a, Matrix::full(m.rows, m.cols, g.get(0, 0)));
                }
                Op::MeanAll(a) => {
                    let m = &self.nodes[a.0].value;
                    let v = g.get(0, 0) / m.data.len() as f32;
                    self.accum(a, Matrix::full(m.rows, m.cols, v));
                }
                Op::LayerNormRows { x, gamma, beta, eps } => {
                    let xm = self.nodes[x.0].value.clone();
                    let gm = self.nodes[gamma.0].value.clone();
                    let d = xm.cols as f32;
                    let mut gx = Matrix::zeros(xm.rows, xm.cols);
                    let mut ggamma = Matrix::zeros(1, xm.cols);
                    let mut gbeta = Matrix::zeros(1, xm.cols);
                    for r in 0..xm.rows {
                        let row = xm.row(r);
                        let mean = row.iter().sum::<f32>() / d;
                        let var =
                            row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
                        let inv = 1.0 / (var + eps).sqrt();
                        let xhat: Vec<f32> = row.iter().map(|v| (v - mean) * inv).collect();
                        let gy: Vec<f32> = (0..xm.cols).map(|c| g.get(r, c)).collect();
                        for c in 0..xm.cols {
                            ggamma.data[c] += gy[c] * xhat[c];
                            gbeta.data[c] += gy[c];
                        }
                        let gxhat: Vec<f32> =
                            (0..xm.cols).map(|c| gy[c] * gm.data[c]).collect();
                        let mean_gxhat = gxhat.iter().sum::<f32>() / d;
                        let mean_gxhat_xhat =
                            gxhat.iter().zip(&xhat).map(|(a, b)| a * b).sum::<f32>() / d;
                        for c in 0..xm.cols {
                            gx.set(
                                r,
                                c,
                                inv * (gxhat[c] - mean_gxhat - xhat[c] * mean_gxhat_xhat),
                            );
                        }
                    }
                    self.accum(x, gx);
                    self.accum(gamma, ggamma);
                    self.accum(beta, gbeta);
                }
                Op::SelectRow(a, row) => {
                    let m = &self.nodes[a.0].value;
                    let mut ga = Matrix::zeros(m.rows, m.cols);
                    for c in 0..m.cols {
                        ga.set(row, c, g.get(0, c));
                    }
                    self.accum(a, ga);
                }
            }
        }
    }

    fn accum(&mut self, v: Var, g: Matrix) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numeric gradient check: perturb each element of the single parameter
    /// and compare the finite difference to the analytic gradient.
    fn check_gradient(
        build: impl Fn(&mut Graph, Var) -> Var,
        init: Matrix,
        tol: f32,
    ) {
        let mut set = ParamSet::new();
        let id = set.alloc(init);
        // Analytic.
        let mut g = Graph::new();
        let p = g.param(id, &set);
        let loss = build(&mut g, p);
        set.zero_grad();
        g.backward(loss, &mut set);
        let analytic = set.grad(id).clone();
        // Numeric.
        let eps = 1e-3f32;
        let n = set.value(id).data.len();
        for i in 0..n {
            let orig = set.value(id).data[i];
            let eval = |set: &ParamSet| {
                let mut g = Graph::new();
                let p = g.param(id, set);
                let loss = build(&mut g, p);
                g.value(loss).get(0, 0)
            };
            set.value_mut(id).data[i] = orig + eps;
            let up = eval(&set);
            set.value_mut(id).data[i] = orig - eps;
            let down = eval(&set);
            set.value_mut(id).data[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic.data[i];
            assert!(
                (numeric - a).abs() < tol * (1.0 + numeric.abs().max(a.abs())),
                "grad mismatch at {i}: numeric={numeric} analytic={a}"
            );
        }
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.random_range(-1.0..1.0f32)).collect(),
        )
    }

    #[test]
    fn grad_matmul_chain() {
        let w = rand_matrix(3, 4, 1);
        check_gradient(
            |g, p| {
                let x = g.input(rand_matrix(2, 3, 2));
                let y = g.matmul(x, p);
                let y = g.relu(y);
                g.sum_all(y)
            },
            w,
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_and_logsoftmax() {
        check_gradient(
            |g, p| {
                let s = g.softmax_rows(p);
                let t = g.input(rand_matrix(2, 4, 5));
                let m = g.mul(s, t);
                g.sum_all(m)
            },
            rand_matrix(2, 4, 3),
            1e-2,
        );
        check_gradient(
            |g, p| {
                let s = g.log_softmax_rows(p);
                let t = g.input(rand_matrix(2, 4, 6));
                let m = g.mul(s, t);
                g.sum_all(m)
            },
            rand_matrix(2, 4, 4),
            1e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        check_gradient(
            |g, p| {
                let gamma = g.input(Matrix::full(1, 4, 1.2));
                let beta = g.input(Matrix::full(1, 4, -0.1));
                let y = g.layer_norm_rows(p, gamma, beta, 1e-5);
                let t = g.input(rand_matrix(3, 4, 8));
                let m = g.mul(y, t);
                g.sum_all(m)
            },
            rand_matrix(3, 4, 7),
            2e-2,
        );
    }

    #[test]
    fn grad_pointwise_ops() {
        check_gradient(
            |g, p| {
                let e = g.exp(p);
                let t = g.tanh(e);
                let s = g.scale(t, 0.5);
                let s = g.add_scalar(s, 1.0);
                g.mean_all(s)
            },
            rand_matrix(2, 3, 9),
            1e-2,
        );
    }

    #[test]
    fn grad_pow_const() {
        check_gradient(
            |g, p| {
                // keep inputs positive for powf
                let sp = g.softmax_rows(p);
                let pw = g.pow_const(sp, 2.5);
                g.sum_all(pw)
            },
            rand_matrix(2, 4, 10),
            2e-2,
        );
    }

    #[test]
    fn grad_gather_and_pick() {
        check_gradient(
            |g, p| {
                let rows = g.gather(p, &[0, 2, 2]);
                let picked = g.pick_per_row(rows, &[1, 0, 1]);
                g.sum_all(picked)
            },
            rand_matrix(3, 2, 11),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_and_broadcast() {
        check_gradient(
            |g, p| {
                let x = g.input(rand_matrix(2, 3, 12));
                let y = g.matmul(x, p); // 2×2
                let z = g.concat_cols(&[y, y]);
                let bias = g.input(rand_matrix(1, 4, 13));
                let z = g.add_row_broadcast(z, bias);
                let pooled = g.mean_rows(z);
                g.sum_all(pooled)
            },
            rand_matrix(3, 2, 14),
            1e-2,
        );
    }

    #[test]
    fn grad_min_and_clamp() {
        check_gradient(
            |g, p| {
                let c = g.clamp(p, -0.5, 0.5);
                let other = g.input(rand_matrix(2, 3, 15));
                let m = g.min_elem(c, other);
                g.sum_all(m)
            },
            rand_matrix(2, 3, 16),
            2e-2,
        );
    }

    #[test]
    fn grad_select_and_transpose() {
        check_gradient(
            |g, p| {
                let t = g.transpose(p);
                let r = g.select_row(t, 1);
                let sq = g.mul(r, r);
                g.sum_all(sq)
            },
            rand_matrix(3, 2, 17),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_rows_and_sub() {
        check_gradient(
            |g, p| {
                let a = g.scale(p, 2.0);
                let stacked = g.concat_rows(&[p, a]);
                let t = g.input(rand_matrix(4, 3, 18));
                let d = g.sub(stacked, t);
                let sq = g.mul(d, d);
                g.mean_all(sq)
            },
            rand_matrix(2, 3, 19),
            1e-2,
        );
    }

    #[test]
    fn masked_softmax_ignores_masked_entries() {
        let mut g = Graph::new();
        let logits = g.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let mask = g.input(Matrix::from_rows(&[&[0.0, -1e9, 0.0]]));
        let masked = g.add(logits, mask);
        let sm = g.softmax_rows(masked);
        let v = g.value(sm);
        assert!(v.get(0, 1) < 1e-6);
        assert!((v.get(0, 0) + v.get(0, 2) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn end_to_end_training_reduces_loss() {
        // Tiny regression: y = x @ W, learn W to match a target mapping.
        let mut rng = StdRng::seed_from_u64(42);
        let mut set = ParamSet::new();
        let w = set.alloc_xavier(3, 2, &mut rng);
        let mut adam = crate::params::Adam::new(0.05);
        let x = rand_matrix(8, 3, 20);
        let target = x.matmul(&Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0], &[-1.5, 0.0]]));
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let mut g = Graph::new();
            let xin = g.input(x.clone());
            let wv = g.param(w, &set);
            let pred = g.matmul(xin, wv);
            let t = g.input(target.clone());
            let d = g.sub(pred, t);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            last = g.value(loss).get(0, 0);
            first.get_or_insert(last);
            set.zero_grad();
            g.backward(loss, &mut set);
            adam.step(&mut set);
        }
        assert!(last < first.unwrap() / 100.0, "loss {first:?} → {last}");
    }
}
