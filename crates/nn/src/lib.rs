//! A small pure-Rust neural-network stack: matrices, tape-based reverse-mode
//! autograd, layers (linear / embedding / layer-norm / multi-head attention
//! with additive masks) and Adam.
//!
//! Substitutes for PyTorch in the paper's implementation. The models FOSS
//! needs are small (d_model = 64, two attention blocks, three-way output
//! heads), so a CPU tape machine reproduces the training dynamics faithfully;
//! every operator's backward pass is verified against numeric differentiation
//! in this crate's tests.

pub mod graph;
pub mod layers;
pub mod matrix;
pub mod params;

pub use graph::{Graph, Var};
pub use layers::{
    additive_mask, segment_additive_mask, Embedding, LayerNorm, Linear, MultiHeadAttention,
};
pub use matrix::Matrix;
pub use params::{Adam, GradSink, GradStore, ParamId, ParamSet};
