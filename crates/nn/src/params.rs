//! Trainable parameters and the Adam optimiser.

use foss_common::{ByteReader, ByteWriter, Codec};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Handle to one parameter tensor inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// One trainable tensor with its gradient accumulator and Adam moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (zeroed by [`ParamSet::zero_grad`]).
    pub grad: Matrix,
    m: Matrix,
    v: Matrix,
}

/// A registry of parameters; layers hold [`ParamId`]s into one shared set so
/// the whole model can be stepped, serialised and copied at once.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a tensor initialised with Xavier/Glorot uniform init.
    pub fn alloc_xavier(&mut self, rows: usize, cols: usize, rng: &mut StdRng) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        self.alloc(Matrix::from_vec(rows, cols, data))
    }

    /// Allocate a zero-initialised tensor (biases, layer-norm beta).
    pub fn alloc_zeros(&mut self, rows: usize, cols: usize) -> ParamId {
        self.alloc(Matrix::zeros(rows, cols))
    }

    /// Allocate a one-initialised tensor (layer-norm gamma).
    pub fn alloc_ones(&mut self, rows: usize, cols: usize) -> ParamId {
        self.alloc(Matrix::full(rows, cols, 1.0))
    }

    /// Allocate from an explicit value.
    pub fn alloc(&mut self, value: Matrix) -> ParamId {
        let id = ParamId(self.params.len());
        let (r, c) = (value.rows, value.cols);
        self.params.push(Param {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        });
        id
    }

    /// Value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable value (tests / manual surgery).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Add `g` into the parameter's gradient (called by backward).
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Zero all gradients.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.data.fill(0.0);
        }
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are allocated.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar parameter count.
    pub fn scalar_count(&self) -> usize {
        self.params.iter().map(|p| p.value.data.len()).sum()
    }

    /// Global gradient L2 norm (for clipping).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.data.iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all gradients by `factor` (gradient clipping).
    pub fn scale_grads(&mut self, factor: f32) {
        for p in &mut self.params {
            for g in &mut p.grad.data {
                *g *= factor;
            }
        }
    }
}

impl Codec for ParamId {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.0);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self(r.get_usize()?))
    }
}

/// Snapshots carry only parameter *values* — the gradient accumulator and
/// Adam moments are training scratch, re-zeroed on decode. Inference reads
/// nothing but `value`, so a decoded model plans bit-identically.
impl Codec for Param {
    fn encode(&self, w: &mut ByteWriter) {
        self.value.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        let value = Matrix::decode(r)?;
        let (rows, cols) = (value.rows, value.cols);
        Ok(Self {
            value,
            grad: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        })
    }
}

impl Codec for ParamSet {
    fn encode(&self, w: &mut ByteWriter) {
        self.params.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            params: Vec::decode(r)?,
        })
    }
}

/// Destination for the parameter gradients a backward pass produces.
///
/// [`ParamSet`] implements it by accumulating into each parameter's `grad`
/// slot; [`GradStore`] implements it as a detached buffer so worker threads
/// can run backward passes concurrently against a shared `&ParamSet` and have
/// their results merged deterministically afterwards.
pub trait GradSink {
    /// Add `g` into the gradient accumulator for `id`.
    fn accumulate(&mut self, id: ParamId, g: &Matrix);
}

impl GradSink for ParamSet {
    fn accumulate(&mut self, id: ParamId, g: &Matrix) {
        self.accumulate_grad(id, g);
    }
}

/// A stand-alone gradient buffer with the same tensor layout as a
/// [`ParamSet`], but none of its values or optimiser moments — cheap to
/// allocate per worker thread.
#[derive(Debug, Clone)]
pub struct GradStore {
    grads: Vec<Matrix>,
}

impl GradStore {
    /// Zero gradients shaped like every parameter in `set`.
    pub fn zeros_like(set: &ParamSet) -> Self {
        Self {
            grads: set
                .params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows, p.value.cols))
                .collect(),
        }
    }

    /// Gradient buffer for `id`.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Add every buffered gradient into `set`'s accumulators (the
    /// deterministic merge step after parallel backward passes).
    pub fn add_into(&self, set: &mut ParamSet) {
        assert_eq!(
            self.grads.len(),
            set.params.len(),
            "grad store / set layout mismatch"
        );
        for (p, g) in set.params.iter_mut().zip(&self.grads) {
            p.grad.add_assign(g);
        }
    }
}

impl GradSink for GradStore {
    fn accumulate(&mut self, id: ParamId, g: &Matrix) {
        self.grads[id.0].add_assign(g);
    }
}

/// Adam optimiser state (the per-tensor moments live in each [`Param`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
    t: u64,
}

impl Adam {
    /// Adam with standard betas.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Apply one update to every parameter using its accumulated gradient.
    pub fn step(&mut self, set: &mut ParamSet) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for p in &mut set.params {
            for i in 0..p.value.data.len() {
                let g = p.grad.data[i];
                p.m.data[i] = self.beta1 * p.m.data[i] + (1.0 - self.beta1) * g;
                p.v.data[i] = self.beta2 * p.v.data[i] + (1.0 - self.beta2) * g * g;
                let mhat = p.m.data[i] / b1t;
                let vhat = p.v.data[i] / b2t;
                p.value.data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Codec for Adam {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f32(self.lr);
        w.put_f32(self.beta1);
        w.put_f32(self.beta2);
        w.put_f32(self.eps);
        w.put_u64(self.t);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            lr: r.get_f32()?,
            beta1: r.get_f32()?,
            beta2: r.get_f32()?,
            eps: r.get_f32()?,
            t: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_init_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut set = ParamSet::new();
        let id = set.alloc_xavier(8, 8, &mut rng);
        let bound = (6.0 / 16.0f32).sqrt();
        assert!(set.value(id).data.iter().all(|v| v.abs() <= bound));
        assert_eq!(set.scalar_count(), 64);
    }

    #[test]
    fn adam_minimises_quadratic() {
        // Minimise f(w) = (w - 3)^2 by hand-fed gradients.
        let mut set = ParamSet::new();
        let id = set.alloc(Matrix::scalar(0.0));
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            set.zero_grad();
            let w = set.value(id).get(0, 0);
            set.accumulate_grad(id, &Matrix::scalar(2.0 * (w - 3.0)));
            adam.step(&mut set);
        }
        let w = set.value(id).get(0, 0);
        assert!((w - 3.0).abs() < 0.05, "w={w}");
        assert_eq!(adam.steps(), 300);
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut set = ParamSet::new();
        let id = set.alloc(Matrix::zeros(1, 2));
        set.accumulate_grad(id, &Matrix::from_rows(&[&[3.0, 4.0]]));
        assert!((set.grad_norm() - 5.0).abs() < 1e-6);
        set.scale_grads(0.5);
        assert!((set.grad_norm() - 2.5).abs() < 1e-6);
        set.zero_grad();
        assert_eq!(set.grad_norm(), 0.0);
    }
}
