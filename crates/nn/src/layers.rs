//! Layer modules: thin wrappers that allocate parameters in a [`ParamSet`]
//! and record their forward computation on a [`Graph`].

use foss_common::{ByteReader, ByteWriter, Codec};
use rand::rngs::StdRng;

use crate::graph::{Graph, Var};
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};

/// Fully-connected layer `y = x W + b`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl Linear {
    /// Allocate a layer in `set`.
    pub fn new(set: &mut ParamSet, in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let w = set.alloc_xavier(in_dim, out_dim, rng);
        let b = set.alloc_zeros(1, out_dim);
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Record `x @ W + b` as one fused op (bias-initialised accumulation).
    pub fn forward(&self, g: &mut Graph, set: &ParamSet, x: Var) -> Var {
        let w = g.param(self.w, set);
        let b = g.param(self.b, set);
        g.matmul_bias(x, w, b)
    }
}

/// Embedding table: id → row vector.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Embedding {
    table: ParamId,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding width.
    pub dim: usize,
}

impl Embedding {
    /// Allocate a `vocab × dim` table.
    pub fn new(set: &mut ParamSet, vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        let table = set.alloc_xavier(vocab, dim, rng);
        Self { table, vocab, dim }
    }

    /// Look up one embedding per index (rows of the output).
    pub fn forward(&self, g: &mut Graph, set: &ParamSet, indices: &[usize]) -> Var {
        debug_assert!(
            indices.iter().all(|&i| i < self.vocab),
            "embedding index out of range"
        );
        let t = g.param(self.table, set);
        g.gather(t, indices)
    }
}

/// Row-wise layer normalisation with learnable scale and shift.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    /// Normalised width.
    pub dim: usize,
}

impl LayerNorm {
    /// Allocate γ = 1, β = 0.
    pub fn new(set: &mut ParamSet, dim: usize) -> Self {
        let gamma = set.alloc_ones(1, dim);
        let beta = set.alloc_zeros(1, dim);
        Self { gamma, beta, dim }
    }

    /// Record the normalisation.
    pub fn forward(&self, g: &mut Graph, set: &ParamSet, x: Var) -> Var {
        let gamma = g.param(self.gamma, set);
        let beta = g.param(self.beta, set);
        g.layer_norm_rows(x, gamma, beta, 1e-5)
    }

    /// Record the fused residual form `LayerNorm(a + b)` (transformer
    /// blocks), skipping the intermediate sum matrix.
    pub fn forward_residual(&self, g: &mut Graph, set: &ParamSet, a: Var, b: Var) -> Var {
        let gamma = g.param(self.gamma, set);
        let beta = g.param(self.beta, set);
        g.add_layer_norm_rows(a, b, gamma, beta, 1e-5)
    }
}

/// Multi-head self-attention over a node sequence with an additive mask.
///
/// The paper's state network masks attention between *unreachable* plan-tree
/// nodes: "setting the attention score to 0 between two unreachable nodes and
/// 1 between two reachable nodes" — implemented here as an additive `-1e9`
/// mask before the softmax, the standard trick with identical effect.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MultiHeadAttention {
    /// Packed projection `d_model × 3·d_model`, laid out `[Q | K | V]` with
    /// each section holding all heads side by side — one matmul projects the
    /// whole batch for every head at once.
    wqkv: ParamId,
    wo: ParamId,
    /// Number of heads.
    pub heads: usize,
    /// Model width (must divide by `heads`).
    pub d_model: usize,
}

impl MultiHeadAttention {
    /// Allocate projection matrices for `heads` heads over width `d_model`.
    pub fn new(set: &mut ParamSet, d_model: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(d_model % heads, 0, "heads must divide d_model");
        let wqkv = set.alloc_xavier(d_model, 3 * d_model, rng);
        let wo = set.alloc_xavier(d_model, d_model, rng);
        Self {
            wqkv,
            wo,
            heads,
            d_model,
        }
    }

    /// Record attention over `x` (`L × d_model`). `mask` is an `L × L`
    /// additive matrix (`0` = attend, `-1e9` = blocked), typically a
    /// reachability mask built by the caller.
    pub fn forward(&self, g: &mut Graph, set: &ParamSet, x: Var, mask: &Matrix) -> Var {
        let l = g.value(x).rows;
        assert_eq!((mask.rows, mask.cols), (l, l), "mask must be L×L");
        let dk = self.d_model / self.heads;
        let mask_var = g.input(mask.clone());
        let wqkv = g.param(self.wqkv, set);
        let qkv = g.matmul(x, wqkv);
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let q = g.slice_cols(qkv, h * dk, dk);
            let k = g.slice_cols(qkv, self.d_model + h * dk, dk);
            let v = g.slice_cols(qkv, 2 * self.d_model + h * dk, dk);
            let kt = g.transpose(k);
            let scores = g.matmul(q, kt);
            let scores = g.scale(scores, 1.0 / (dk as f32).sqrt());
            let scores = g.add(scores, mask_var);
            let attn = g.softmax_rows(scores);
            head_outputs.push(g.matmul(attn, v));
        }
        let concat = g.concat_cols(&head_outputs);
        let wo = g.param(self.wo, set);
        g.matmul(concat, wo)
    }

    /// Record attention over a *batch* of sequences stacked along rows of
    /// `x` (`ΣL × d_model`, `segs[s]` rows per sequence). Attention never
    /// crosses a segment boundary, so one tape carries the whole batch.
    /// `mask` is the `ΣL × max(segs)` additive matrix from
    /// [`segment_additive_mask`] (it must also mask the padding columns of
    /// ragged batches). Each sequence's output rows are bit-identical to a
    /// singleton-batch call with that sequence alone.
    pub fn forward_batch(
        &self,
        g: &mut Graph,
        set: &ParamSet,
        x: Var,
        mask: &Matrix,
        segs: &[usize],
    ) -> Var {
        let total = g.value(x).rows;
        let lmax = segs.iter().copied().max().unwrap_or(0);
        assert_eq!(segs.iter().sum::<usize>(), total, "segments must cover x");
        assert_eq!(
            (mask.rows, mask.cols),
            (total, lmax),
            "mask must be ΣL×Lmax"
        );
        let dk = self.d_model / self.heads;
        let mask_var = g.input(mask.clone());
        let wqkv = g.param(self.wqkv, set);
        let qkv = g.matmul(x, wqkv);
        // One fused node: masked scores, softmax and value-weighting for
        // every head, reading Q/K/V straight out of the packed projection.
        let attended =
            g.seg_multi_head_attention(qkv, mask_var, segs, self.heads, 1.0 / (dk as f32).sqrt());
        let wo = g.param(self.wo, set);
        g.matmul(attended, wo)
    }
}

// Layer structs are plain wiring — `ParamId` indices into the shared
// `ParamSet` plus their dimensions — so their codecs are field-by-field.

impl Codec for Linear {
    fn encode(&self, w: &mut ByteWriter) {
        self.w.encode(w);
        self.b.encode(w);
        w.put_usize(self.in_dim);
        w.put_usize(self.out_dim);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            w: ParamId::decode(r)?,
            b: ParamId::decode(r)?,
            in_dim: r.get_usize()?,
            out_dim: r.get_usize()?,
        })
    }
}

impl Codec for Embedding {
    fn encode(&self, w: &mut ByteWriter) {
        self.table.encode(w);
        w.put_usize(self.vocab);
        w.put_usize(self.dim);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            table: ParamId::decode(r)?,
            vocab: r.get_usize()?,
            dim: r.get_usize()?,
        })
    }
}

impl Codec for LayerNorm {
    fn encode(&self, w: &mut ByteWriter) {
        self.gamma.encode(w);
        self.beta.encode(w);
        w.put_usize(self.dim);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            gamma: ParamId::decode(r)?,
            beta: ParamId::decode(r)?,
            dim: r.get_usize()?,
        })
    }
}

impl Codec for MultiHeadAttention {
    fn encode(&self, w: &mut ByteWriter) {
        self.wqkv.encode(w);
        self.wo.encode(w);
        w.put_usize(self.heads);
        w.put_usize(self.d_model);
    }
    fn decode(r: &mut ByteReader<'_>) -> foss_common::Result<Self> {
        Ok(Self {
            wqkv: ParamId::decode(r)?,
            wo: ParamId::decode(r)?,
            heads: r.get_usize()?,
            d_model: r.get_usize()?,
        })
    }
}

/// Build an additive mask (`0` attend / `-1e9` blocked) from a boolean
/// reachability matrix.
pub fn additive_mask(reachable: &[Vec<bool>]) -> Matrix {
    let l = reachable.len();
    let mut m = Matrix::zeros(l, l);
    for (r, row) in reachable.iter().enumerate() {
        assert_eq!(row.len(), l, "reachability matrix must be square");
        for (c, &ok) in row.iter().enumerate() {
            if !ok {
                m.set(r, c, -1e9);
            }
        }
    }
    m
}

/// Build the stacked-batch additive mask for
/// [`MultiHeadAttention::forward_batch`]: one `L_s × L_s` reachability block
/// per sequence, laid out as `ΣL × max(L_s)` with `-1e9` in the ragged
/// padding columns. Also returns the segment lengths.
pub fn segment_additive_mask(reachable_per_seq: &[&[Vec<bool>]]) -> (Matrix, Vec<usize>) {
    let segs: Vec<usize> = reachable_per_seq.iter().map(|r| r.len()).collect();
    let total: usize = segs.iter().sum();
    let lmax = segs.iter().copied().max().unwrap_or(0);
    let mut m = Matrix::full(total, lmax, -1e9);
    let mut base = 0;
    for reachable in reachable_per_seq {
        let l = reachable.len();
        for (r, row) in reachable.iter().enumerate() {
            assert_eq!(row.len(), l, "reachability matrix must be square");
            for (c, &ok) in row.iter().enumerate() {
                if ok {
                    m.set(base + r, c, 0.0);
                }
            }
        }
        base += l;
    }
    (m, segs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Adam;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn linear_shapes() {
        let mut set = ParamSet::new();
        let lin = Linear::new(&mut set, 4, 3, &mut rng());
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(5, 4));
        let y = lin.forward(&mut g, &set, x);
        assert_eq!((g.value(y).rows, g.value(y).cols), (5, 3));
    }

    #[test]
    fn embedding_lookup_rows() {
        let mut set = ParamSet::new();
        let emb = Embedding::new(&mut set, 10, 6, &mut rng());
        let mut g = Graph::new();
        let e = emb.forward(&mut g, &set, &[3, 3, 9]);
        let v = g.value(e);
        assert_eq!((v.rows, v.cols), (3, 6));
        assert_eq!(v.row(0), v.row(1));
        assert_ne!(v.row(0), v.row(2));
    }

    #[test]
    fn layer_norm_normalises() {
        let mut set = ParamSet::new();
        let ln = LayerNorm::new(&mut set, 4);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[10.0, 20.0, 30.0, 40.0]]));
        let y = ln.forward(&mut g, &set, x);
        let row = g.value(y).row(0).to_vec();
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn attention_mask_blocks_tokens() {
        let mut set = ParamSet::new();
        let mha = MultiHeadAttention::new(&mut set, 8, 2, &mut rng());
        // Token 0 may only attend to itself; with a full mask vs a blocked
        // mask, token 1's representation changes but token 0's does not
        // if token 0's row is identical in both masks.
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.5, -0.5, 0.2, 0.0, 0.1, 0.3],
            &[0.0, 1.0, -0.5, 0.5, 0.0, 0.2, 0.3, 0.1],
        ]);
        let full = additive_mask(&[vec![true, false], vec![true, true]]);
        let blocked = additive_mask(&[vec![true, false], vec![false, true]]);
        let mut g1 = Graph::new();
        let x1 = g1.input(x.clone());
        let y1 = mha.forward(&mut g1, &set, x1, &full);
        let mut g2 = Graph::new();
        let x2 = g2.input(x.clone());
        let y2 = mha.forward(&mut g2, &set, x2, &blocked);
        let r0_1 = g1.value(y1).row(0).to_vec();
        let r0_2 = g2.value(y2).row(0).to_vec();
        let r1_1 = g1.value(y1).row(1).to_vec();
        let r1_2 = g2.value(y2).row(1).to_vec();
        assert_eq!(r0_1, r0_2, "token 0 sees the same context in both");
        assert_ne!(r1_1, r1_2, "token 1 lost access to token 0");
    }

    #[test]
    fn batched_attention_matches_singletons_bitwise() {
        let mut set = ParamSet::new();
        let mha = MultiHeadAttention::new(&mut set, 8, 2, &mut rng());
        // Two sequences of different lengths (3 and 2 tokens) with
        // non-trivial reachability.
        let xa = Matrix::from_rows(&[
            &[1.0, 0.0, 0.5, -0.5, 0.2, 0.0, 0.1, 0.3],
            &[0.0, 1.0, -0.5, 0.5, 0.0, 0.2, 0.3, 0.1],
            &[0.3, -0.2, 0.1, 0.4, -0.1, 0.6, 0.0, 0.2],
        ]);
        let xb = Matrix::from_rows(&[
            &[0.9, 0.1, -0.3, 0.2, 0.5, -0.4, 0.2, 0.0],
            &[-0.1, 0.8, 0.3, -0.2, 0.1, 0.3, -0.5, 0.4],
        ]);
        let ra = vec![
            vec![true, true, false],
            vec![true, true, true],
            vec![false, true, true],
        ];
        let rb = vec![vec![true, false], vec![true, true]];
        // Batched pass.
        let (mask, segs) = segment_additive_mask(&[&ra, &rb]);
        let mut stacked = xa.data.clone();
        stacked.extend_from_slice(&xb.data);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(5, 8, stacked));
        let y = mha.forward_batch(&mut g, &set, x, &mask, &segs);
        // Singleton batches through the SAME path must match bit for bit.
        for (xs, rs, base) in [(&xa, &ra, 0usize), (&xb, &rb, 3)] {
            let (m1, s1) = segment_additive_mask(&[rs]);
            let mut g1 = Graph::new();
            let x1 = g1.input(xs.clone());
            let y1 = mha.forward_batch(&mut g1, &set, x1, &m1, &s1);
            for r in 0..xs.rows {
                assert_eq!(g.value(y).row(base + r), g1.value(y1).row(r));
            }
        }
    }

    #[test]
    fn attention_is_trainable() {
        // Overfit a 2-token sequence to a fixed target through attention.
        let mut set = ParamSet::new();
        let mut r = rng();
        let mha = MultiHeadAttention::new(&mut set, 8, 2, &mut r);
        let mut adam = Adam::new(0.01);
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.5, -0.5, 0.2, 0.0, 0.1, 0.3],
            &[0.0, 1.0, -0.5, 0.5, 0.0, 0.2, 0.3, 0.1],
        ]);
        let target = Matrix::full(2, 8, 0.25);
        let mask = additive_mask(&[vec![true, true], vec![true, true]]);
        let mut losses = Vec::new();
        for _ in 0..120 {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = mha.forward(&mut g, &set, xv, &mask);
            let t = g.input(target.clone());
            let d = g.sub(y, t);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            losses.push(g.value(loss).get(0, 0));
            set.zero_grad();
            g.backward(loss, &mut set);
            adam.step(&mut set);
        }
        assert!(
            losses.last().unwrap() < &(losses[0] / 10.0),
            "attention failed to train: {} → {}",
            losses[0],
            losses.last().unwrap()
        );
    }
}
