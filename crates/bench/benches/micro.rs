//! Criterion micro-benchmarks over the substrates and the FOSS hot paths.
//!
//! The suite itself lives in [`foss_bench::micro_suite`] so that
//! `cargo bench` and `probe --out BENCH_<tag>.json` (the perf-trajectory
//! recorder and CI regression gate) measure identical code.

use criterion::{criterion_group, criterion_main, Criterion};

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = foss_bench::micro_suite
}
criterion_main!(micro);
