//! Criterion micro-benchmarks over the substrates and the FOSS hot paths.
//!
//! These quantify the per-component costs behind the paper's Fig. 6
//! (optimisation time): expert planning, hint steering, plan encoding,
//! state-network / AAM inference, and executor throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use foss_core::encoding::PlanEncoder;
use foss_core::{AdvantageModel, FossConfig};
use foss_executor::{CachingExecutor, Executor};
use foss_nn::Matrix;
use foss_workloads::{joblite, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_all(c: &mut Criterion) {
    let wl = joblite::build(WorkloadSpec { seed: 42, scale: 0.15 }).expect("workload");
    let query = wl
        .train
        .iter()
        .max_by_key(|q| q.relation_count())
        .unwrap()
        .clone();
    let opt = wl.optimizer.clone();
    let plan = opt.optimize(&query).unwrap();
    let icp = plan.extract_icp().unwrap();
    let encoder = PlanEncoder::new(wl.table_count(), wl.table_rows());
    let encoded = encoder.encode(&query, &plan, 0.0);

    c.bench_function("optimizer/dp_full_plan", |b| {
        b.iter(|| black_box(opt.optimize(black_box(&query)).unwrap()))
    });
    c.bench_function("optimizer/hint_steering", |b| {
        b.iter(|| black_box(opt.optimize_with_hint(black_box(&query), black_box(&icp)).unwrap()))
    });
    c.bench_function("encoding/plan_encode", |b| {
        b.iter(|| black_box(encoder.encode(black_box(&query), black_box(&plan), 0.5)))
    });

    let mut rng = StdRng::seed_from_u64(7);
    let aam = AdvantageModel::new(wl.table_count() + 1, &FossConfig::tiny(), &mut rng);
    c.bench_function("aam/pair_inference", |b| {
        b.iter(|| black_box(aam.predict(black_box(&encoded), black_box(&encoded))))
    });

    let exec = Executor::new(&wl.db, *opt.cost_model());
    c.bench_function("executor/expert_plan", |b| {
        b.iter(|| black_box(exec.execute(&query, &plan, None).unwrap()))
    });
    let caching = CachingExecutor::new(wl.db.clone(), *opt.cost_model());
    caching.execute(&query, &plan, None).unwrap();
    c.bench_function("executor/cached_lookup", |b| {
        b.iter(|| black_box(caching.execute(&query, &plan, None).unwrap()))
    });

    let a = Matrix::full(64, 64, 0.5);
    let bm = Matrix::full(64, 64, 0.25);
    c.bench_function("nn/matmul_64x64", |b| b.iter(|| black_box(a.matmul(&bm))));

    let _ = Arc::strong_count(&opt);
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_all
}
criterion_main!(micro);
