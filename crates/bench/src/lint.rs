//! `foss-lint`: hand-rolled repo static checks (no parser dependencies).
//!
//! Three rules, each encoding an invariant this repo actually relies on:
//!
//! * **panic-habits** (`A`) — no `.unwrap()` / `.expect(` / `panic!(` in
//!   `crates/service` or `crates/executor/src/fused.rs` non-test code.
//!   The serving layer (and the tier-2 fused engine it dispatches to) must
//!   degrade (fallback, shed, wire error), never abort a worker thread.
//! * **sync-facade** (`B`) — no direct `std::sync` lock/atomic imports and
//!   no `parking_lot` anywhere outside the `foss_common::sync` facade, the
//!   `crates/analysis` checker (which implements the shims) and the vendor
//!   tree. Every primitive routed through the facade is model-checkable
//!   under `--features model-check`; a direct import silently escapes the
//!   scheduler. `Arc`, `Weak`, `mpsc`, `Once*` and `Barrier`-free helpers
//!   stay allowed — they are either immutable plumbing or have no
//!   instrumented equivalent on purpose.
//! * **wire-mapping** (`C`) — every `FossError` variant has an arm in
//!   `WireError::from_error`. A new variant that misses the mapping would
//!   not fail compilation anywhere near the wire (the match is on `&e`
//!   with struct patterns), it would fail at the first client.
//!
//! The scanner is line-based: string/char literals and `//` comments are
//! stripped first, and `#[cfg(test)]` regions are tracked by brace depth so
//! test modules are exempt. That is deliberately simple — the repo's style
//! (rustfmt, tests in a trailing `mod tests`) keeps it sound, and the unit
//! tests below pin the corner cases (byte-literal braces, raw strings,
//! patterns quoted inside string literals).

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation, printable as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Short rule id (`panic-habits`, `sync-facade`, `wire-mapping`).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Strip `//` comments and the *contents* of string/char/byte literals from
/// one source line, so pattern matches and brace counting never fire inside
/// quoted text. Handles `"…"`, `b"…"`, `r"…"`/`r#"…"#`, `'c'`, `b'c'` and
/// escape sequences; lifetimes (`'a`) are left alone (no closing quote).
fn sanitize(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        // Comment: drop the rest of the line.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            break;
        }
        // Raw string r"…" / r#"…"# (optionally b-prefixed).
        let raw_start = {
            let mut j = i;
            if bytes[j] == b'b' {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'r' {
                let mut hashes = 0;
                let mut k = j + 1;
                while k < bytes.len() && bytes[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == b'"' {
                    Some((k + 1, hashes))
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some((body, hashes)) = raw_start {
            out.push_str("\"\"");
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            let mut j = body;
            while j < bytes.len() {
                if bytes[j..].starts_with(&closer) {
                    j += closer.len();
                    break;
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // Plain string "…" (optionally b-prefixed).
        if b == b'"' || (b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"') {
            let mut j = if b == b'b' { i + 2 } else { i + 1 };
            out.push_str("\"\"");
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            i = j;
            continue;
        }
        // Char / byte literal: a quote closed within a few bytes ('x', '\n',
        // b'{'). An unclosed quote is a lifetime and is kept verbatim.
        if b == b'\'' || (b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'\'') {
            let start = if b == b'b' { i + 2 } else { i + 1 };
            let mut j = start;
            if j < bytes.len() && bytes[j] == b'\\' {
                j += 2;
            } else if j < bytes.len() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'\'' {
                out.push_str("' '");
                i = j + 1;
                continue;
            }
        }
        out.push(b as char);
        i += 1;
    }
    out
}

/// Line classifier tracking `#[cfg(test)]` regions by brace depth.
#[derive(Default)]
struct TestRegion {
    depth: i32,
    /// Depth at which the active `#[cfg(test)]` item opened, if any.
    test_at: Option<i32>,
    /// A `#[cfg(test)]` attribute was seen but its item hasn't opened yet.
    pending: bool,
}

impl TestRegion {
    /// Feed one *sanitized* line; returns true when the line belongs to
    /// test code (including the attribute line itself).
    fn is_test(&mut self, line: &str) -> bool {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)") {
            self.pending = true;
            return true;
        }
        let in_test_before = self.test_at.is_some() || self.pending;
        let opens = line.matches('{').count() as i32;
        let closes = line.matches('}').count() as i32;
        if self.pending && opens > 0 {
            self.test_at = Some(self.depth);
            self.pending = false;
        }
        self.depth += opens - closes;
        if let Some(at) = self.test_at {
            if self.depth <= at {
                self.test_at = None;
            }
        }
        in_test_before || self.test_at.is_some()
    }
}

const PANIC_PATTERNS: &[(&str, &str)] = &[
    (
        ".unwrap()",
        "`.unwrap()` in service code (return a FossError instead)",
    ),
    (
        ".expect(",
        "`.expect(...)` in service code (return a FossError instead)",
    ),
    (
        "panic!(",
        "`panic!` in service code (return a FossError instead)",
    ),
];

/// Paths rule A covers: the whole serving layer, plus the tier-2 fused
/// engine — it runs inside serving threads on the latency path, so it must
/// degrade (decline to compile, return `FossError`) rather than abort.
fn panic_rule_applies(rel_path: &str) -> bool {
    rel_path.starts_with("crates/service/") || rel_path == "crates/executor/src/fused.rs"
}

/// Rule A: panic habits in `crates/service` (and the fused tier-2 engine)
/// non-test code.
pub fn scan_panic_habits(rel_path: &str, source: &str) -> Vec<Finding> {
    if !panic_rule_applies(rel_path) {
        return Vec::new();
    }
    let mut region = TestRegion::default();
    let mut findings = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = sanitize(raw);
        if region.is_test(&line) {
            continue;
        }
        for (pat, msg) in PANIC_PATTERNS {
            if line.contains(pat) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: "panic-habits",
                    message: (*msg).to_string(),
                });
            }
        }
    }
    findings
}

/// `std::sync` items that must go through `foss_common::sync` instead.
const BANNED_STD_SYNC: &[&str] = &[
    "Mutex",
    "MutexGuard",
    "RwLock",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Condvar",
    "Barrier",
    "atomic",
    "TryLockError",
    "PoisonError",
];

/// Paths exempt from the sync-facade rule: the facade itself and the model
/// checker that implements the instrumented shims.
fn sync_rule_exempt(rel_path: &str) -> bool {
    rel_path == "crates/common/src/sync.rs" || rel_path.starts_with("crates/analysis/")
}

/// Rule B: direct `std::sync` lock/atomic or `parking_lot` usage outside
/// the facade, the checker and the vendor tree.
pub fn scan_sync_facade(rel_path: &str, source: &str) -> Vec<Finding> {
    if sync_rule_exempt(rel_path) {
        return Vec::new();
    }
    let mut region = TestRegion::default();
    let mut findings = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = sanitize(raw);
        if region.is_test(&line) {
            continue;
        }
        if line.contains("parking_lot::") || line.contains("use parking_lot") {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: "sync-facade",
                message: "`parking_lot` outside the facade (use `foss_common::sync`)".to_string(),
            });
            continue;
        }
        'scan: for pos in line.match_indices("std::sync::").map(|(p, _)| p) {
            let rest = &line[pos + "std::sync::".len()..];
            // Either a single item (`std::sync::Mutex`) or a brace group
            // (`use std::sync::{Arc, Mutex}`) — check every leading
            // identifier in the group.
            let items: Vec<String> = if let Some(group) = rest.strip_prefix('{') {
                group
                    .split([',', '}'])
                    .map(|part| {
                        part.trim()
                            .chars()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect()
                    })
                    .collect()
            } else {
                vec![rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect()]
            };
            for item in items {
                if BANNED_STD_SYNC.contains(&item.as_str()) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: idx + 1,
                        rule: "sync-facade",
                        message: format!(
                            "`std::sync::{item}` outside the facade (use `foss_common::sync`)"
                        ),
                    });
                    break 'scan;
                }
            }
        }
    }
    findings
}

/// Extract the variant names of `pub enum FossError` from `error.rs`
/// source, with the 1-based line each is declared on.
fn foss_error_variants(error_src: &str) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut in_enum = false;
    for (idx, raw) in error_src.lines().enumerate() {
        let line = sanitize(raw);
        if line.contains("pub enum FossError") {
            in_enum = true;
        }
        if in_enum {
            if depth == 1 {
                let t = line.trim_start();
                let name: String = t
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    variants.push((name, idx + 1));
                }
            }
            depth += line.matches('{').count() as i32;
            depth -= line.matches('}').count() as i32;
            if depth <= 0 && line.contains('}') {
                break;
            }
        }
    }
    variants
}

/// Rule C: every `FossError` variant appears in the wire mapping
/// (`WireError::from_error` in `wire.rs`).
pub fn check_wire_mapping(error_src: &str, wire_src: &str) -> Vec<Finding> {
    let variants = foss_error_variants(error_src);
    let mut findings = Vec::new();
    if variants.is_empty() {
        findings.push(Finding {
            file: "crates/common/src/error.rs".to_string(),
            line: 1,
            rule: "wire-mapping",
            message: "could not locate `pub enum FossError` variants".to_string(),
        });
        return findings;
    }
    for (name, line) in variants {
        let pattern = format!("FossError::{name}");
        if !wire_src.contains(&pattern) {
            findings.push(Finding {
                file: "crates/common/src/error.rs".to_string(),
                line,
                rule: "wire-mapping",
                message: format!(
                    "`FossError::{name}` has no arm in `WireError::from_error` (crates/service/src/wire.rs)"
                ),
            });
        }
    }
    findings
}

/// Collect every `.rs` file under `root/crates`, skipping the vendor tree
/// and build artifacts; paths come back repo-relative with `/` separators.
fn rust_sources(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Run every rule against the repo at `root`; findings are sorted by file
/// then line. `Err` is an I/O-level problem (missing tree, unreadable file).
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for (rel, path) in rust_sources(root)? {
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        findings.extend(scan_panic_habits(&rel, &source));
        findings.extend(scan_sync_facade(&rel, &source));
    }
    let error_path = root.join("crates/common/src/error.rs");
    let wire_path = root.join("crates/service/src/wire.rs");
    let error_src = std::fs::read_to_string(&error_path)
        .map_err(|e| format!("read {}: {e}", error_path.display()))?;
    let wire_src = std::fs::read_to_string(&wire_path)
        .map_err(|e| format!("read {}: {e}", wire_path.display()))?;
    findings.extend(check_wire_mapping(&error_src, &wire_src));
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_strips_strings_comments_and_byte_literals() {
        assert_eq!(sanitize(r#"let x = "a { b"; // panic!("#), "let x = \"\"; ");
        // Byte-literal braces must not unbalance depth tracking.
        assert_eq!(
            sanitize("self.expect_byte(b'{')?;"),
            "self.expect_byte(' ')?;"
        );
        assert_eq!(sanitize(r##"let s = r#"x } y"#;"##), "let s = \"\";");
        // Lifetimes survive.
        assert_eq!(
            sanitize("fn f<'a>(x: &'a str) {}"),
            "fn f<'a>(x: &'a str) {}"
        );
    }

    #[test]
    fn panic_habits_flags_non_test_and_exempts_tests() {
        let src = "fn f() {\n    x.unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let found = scan_panic_habits("crates/service/src/lib.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
        // The fused tier-2 engine is in scope too; the rest of the
        // executor crate is not.
        assert_eq!(
            scan_panic_habits("crates/executor/src/fused.rs", src).len(),
            1
        );
        assert!(scan_panic_habits("crates/executor/src/exec.rs", src).is_empty());
        // Same source outside crates/service is out of scope for rule A.
        assert!(scan_panic_habits("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn panic_habits_ignores_quoted_patterns_and_comments() {
        let src =
            "fn f() {\n    // never .unwrap() here\n    let m = \".unwrap()\";\n    log(m);\n}\n";
        assert!(scan_panic_habits("crates/service/src/lib.rs", src).is_empty());
    }

    #[test]
    fn sync_facade_flags_std_locks_but_allows_arc_and_mpsc() {
        let src = "use std::sync::{Arc, Mutex};\nuse std::sync::mpsc;\nuse std::sync::atomic::AtomicU64;\n";
        let found = scan_sync_facade("crates/core/src/x.rs", src);
        let lines: Vec<usize> = found.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 3]);
        let src_ok =
            "use std::sync::Arc;\nuse std::sync::mpsc::channel;\nuse std::sync::OnceLock;\n";
        assert!(scan_sync_facade("crates/core/src/x.rs", src_ok).is_empty());
    }

    #[test]
    fn sync_facade_flags_parking_lot_even_fully_qualified() {
        let src = "struct S { m: parking_lot::Mutex<u32> }\n";
        assert_eq!(scan_sync_facade("crates/rl/src/x.rs", src).len(), 1);
    }

    #[test]
    fn sync_facade_exempts_facade_checker_and_tests() {
        let src = "use std::sync::Mutex;\n";
        assert!(scan_sync_facade("crates/common/src/sync.rs", src).is_empty());
        assert!(scan_sync_facade("crates/analysis/src/sync.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::sync::Barrier;\n}\n";
        assert!(scan_sync_facade("crates/executor/src/cache.rs", test_src).is_empty());
    }

    #[test]
    fn wire_mapping_reports_missing_variant() {
        let error_src =
            "pub enum FossError {\n    Timeout { spent: u64 },\n    Brand(String),\n}\n";
        let wire_src = "FossError::Timeout { .. } => (504, \"timeout\", true),";
        let found = check_wire_mapping(error_src, wire_src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("FossError::Brand"));
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn wire_mapping_clean_when_all_variants_mapped() {
        let error_src = "pub enum FossError {\n    A(String),\n    B { x: u64 },\n}\n";
        let wire_src = "FossError::A(_) => 1, FossError::B { .. } => 2,";
        assert!(check_wire_mapping(error_src, wire_src).is_empty());
    }

    /// The repo itself must be clean — this is the same gate CI runs via
    /// the `foss-lint` binary, kept as a unit test so `cargo test` alone
    /// catches a regression.
    #[test]
    fn repo_is_lint_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = run(&root).expect("lint walk failed");
        assert!(
            findings.is_empty(),
            "foss-lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
