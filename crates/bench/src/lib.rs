//! Benchmark crate: criterion micro-benchmarks (`benches/micro.rs`) and one
//! binary per paper table/figure (`src/bin/*`).
//!
//! Binaries read two environment variables so the same targets serve both
//! smoke runs and fuller reproductions:
//!
//! * `FOSS_SCALE` — workload row-count multiplier (default 0.2);
//! * `FOSS_ROUNDS` — training rounds / iterations (default 3).

use foss_harness::table1::RunConfig;
use foss_workloads::WorkloadSpec;

/// Build the shared run configuration from the environment.
pub fn run_config_from_env() -> RunConfig {
    let scale: f64 = std::env::var("FOSS_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let rounds: usize = std::env::var("FOSS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    RunConfig {
        spec: WorkloadSpec { seed: 42, scale },
        baseline_rounds: rounds,
        foss_iterations: rounds,
        foss_episodes: 30 * rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_config_defaults() {
        std::env::remove_var("FOSS_SCALE");
        std::env::remove_var("FOSS_ROUNDS");
        let cfg = run_config_from_env();
        assert_eq!(cfg.baseline_rounds, 3);
        assert!((cfg.spec.scale - 0.2).abs() < 1e-9);
    }
}
