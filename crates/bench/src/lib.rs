//! Benchmark crate: criterion micro-benchmarks (`benches/micro.rs`) and one
//! binary per paper table/figure (`src/bin/*`).
//!
//! Binaries read three environment variables so the same targets serve both
//! smoke runs and fuller reproductions:
//!
//! * `FOSS_SCALE` — workload row-count multiplier (default 1.0, the full
//!   generator size; the chunked executor makes this the practical default);
//! * `FOSS_ROUNDS` — training rounds / iterations (default 3);
//! * `FOSS_EXEC` — executor engine: `chunked` (default) or `scalar` (the
//!   row-at-a-time differential-testing reference).

pub mod cli;
pub mod lint;
pub mod load;

use criterion::Criterion;
use foss_common::QueryId;
use foss_core::encoding::PlanEncoder;
use foss_core::{AdvantageModel, Foss, FossConfig};
use foss_executor::{
    CachingExecutor, EvictionPolicy, ExecMode, Executor, FusedPipeline, ParallelConfig,
};
use foss_harness::table1::RunConfig;
use foss_nn::{Graph, Linear, Matrix, ParamSet};
use foss_optimizer::{AccessPath, Icp, JoinMethod, PhysicalPlan, PlanNode};
use foss_query::{Predicate, Query, QueryBuilder};
use foss_service::{PlanDoctor, QueryRequest, ServiceConfig, TierConfig, TierMode};
use foss_workloads::{joblite, skewstress, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

/// Build the shared run configuration from the environment.
pub fn run_config_from_env() -> RunConfig {
    let scale: f64 = std::env::var("FOSS_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let rounds: usize = std::env::var("FOSS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let exec_mode = match std::env::var("FOSS_EXEC").ok().as_deref() {
        None | Some("") | Some("chunked") => ExecMode::Chunked,
        Some("scalar") => ExecMode::Scalar,
        // Fail loudly: silently falling back would make a differential
        // replay compare two identical chunked runs.
        Some(other) => panic!("FOSS_EXEC must be `chunked` or `scalar`, got `{other}`"),
    };
    RunConfig {
        spec: WorkloadSpec { seed: 42, scale },
        baseline_rounds: rounds,
        foss_iterations: rounds,
        foss_episodes: 30 * rounds,
        exec_mode,
    }
}

/// The micro-benchmark suite behind `benches/micro.rs` *and*
/// `probe --out BENCH_<tag>.json`: per-component costs of the FOSS hot paths
/// (expert planning, hint steering, plan encoding, single and batched AAM
/// inference, executor throughput, NN kernels).
///
/// Shared so the checked-in `BENCH_<tag>.json` perf trajectory and the CI
/// regression gate measure exactly what the criterion bench target measures.
pub fn micro_suite(c: &mut Criterion) {
    let wl = joblite::build(WorkloadSpec {
        seed: 42,
        scale: 0.15,
    })
    .expect("workload");
    let query = wl
        .train
        .iter()
        .max_by_key(|q| q.relation_count())
        .unwrap()
        .clone();
    let opt = wl.optimizer.clone();
    let plan = opt.optimize(&query).unwrap();
    let icp = plan.extract_icp().unwrap();
    let encoder = PlanEncoder::new(wl.table_count(), wl.table_rows());
    let encoded = encoder.encode(&query, &plan, 0.0);

    c.bench_function("optimizer/dp_full_plan", |b| {
        b.iter(|| black_box(opt.optimize(black_box(&query)).unwrap()))
    });
    c.bench_function("optimizer/hint_steering", |b| {
        b.iter(|| {
            black_box(
                opt.optimize_with_hint(black_box(&query), black_box(&icp))
                    .unwrap(),
            )
        })
    });
    c.bench_function("encoding/plan_encode", |b| {
        b.iter(|| black_box(encoder.encode(black_box(&query), black_box(&plan), 0.5)))
    });

    let mut rng = StdRng::seed_from_u64(7);
    let aam = AdvantageModel::new(wl.table_count() + 1, &FossConfig::tiny(), &mut rng);
    c.bench_function("aam/pair_inference", |b| {
        b.iter(|| black_box(aam.predict(black_box(&encoded), black_box(&encoded))))
    });
    // The two batched callers in the system, in their real shapes. Batch 8 is
    // a selector tournament wave: one champion scored against 8 *distinct*
    // candidate plans (encoded at distinct steps, so the state network
    // genuinely runs per candidate). Batch 64 is AAM training/accuracy
    // scoring: the first 64 ordered pairs drawn from 9 distinct plans —
    // exactly what `ExecutionBuffer::training_pairs` emits, where unique-plan
    // dedup lets one state-network pass serve many pairs.
    let candidates: Vec<_> = (0..9)
        .map(|i| encoder.encode(&query, &plan, i as f32 / 9.0))
        .collect();
    let wave: Vec<_> = candidates[..8].iter().map(|c| (&encoded, c)).collect();
    c.bench_function("aam/pair_inference_batch8", |b| {
        b.iter(|| black_box(aam.predict_batch(black_box(&wave))))
    });
    let mut ordered_pairs = Vec::new();
    for l in &candidates {
        for r in &candidates {
            if !std::ptr::eq(l, r) {
                ordered_pairs.push((l, r));
            }
        }
    }
    ordered_pairs.truncate(64);
    c.bench_function("aam/pair_inference_batch64", |b| {
        b.iter(|| black_box(aam.predict_batch(black_box(&ordered_pairs))))
    });

    let exec = Executor::new(&wl.db, *opt.cost_model());
    c.bench_function("executor/expert_plan", |b| {
        b.iter(|| black_box(exec.execute(&query, &plan, None).unwrap()))
    });
    let caching = CachingExecutor::new(wl.db.clone(), *opt.cost_model());
    caching.execute(&query, &plan, None).unwrap();
    c.bench_function("executor/cached_lookup", |b| {
        b.iter(|| black_box(caching.execute(&query, &plan, None).unwrap()))
    });

    // Chunk-at-a-time operators vs the scalar reference, on full-scale
    // (scale = 1.0) joblite tables so per-tuple interpreter overhead is what
    // gets measured. The `*_scalar` twins quantify the speedup; the perf
    // gate guards the chunked engines against regressions.
    let full = joblite::build(WorkloadSpec::seeded(42)).expect("full-scale workload");
    let cost = *full.optimizer.cost_model();
    let chunked = Executor::new(&full.db, cost);
    let scalar = Executor::with_mode(&full.db, cost, ExecMode::Scalar);
    let (scan_query, scan_plan) = scan_filter_case(&full);
    c.bench_function("exec/scan_filter", |b| {
        b.iter(|| black_box(chunked.execute(&scan_query, &scan_plan, None).unwrap()))
    });
    c.bench_function("exec/scan_filter_scalar", |b| {
        b.iter(|| black_box(scalar.execute(&scan_query, &scan_plan, None).unwrap()))
    });
    let (join_query, join_plan) = hash_join_case(&full);
    c.bench_function("exec/hash_join", |b| {
        b.iter(|| black_box(chunked.execute(&join_query, &join_plan, None).unwrap()))
    });
    c.bench_function("exec/hash_join_scalar", |b| {
        b.iter(|| black_box(scalar.execute(&join_query, &join_plan, None).unwrap()))
    });
    // The same hash join through the tier-2 fused pipeline: identical rows
    // and metered latency as `exec/hash_join` by construction, so the delta
    // to that bench is pure dispatch overhead removed — the steady-state
    // win the hot-shape compiler buys.
    let fused_join = FusedPipeline::compile(&join_query, &join_plan)
        .expect("forced hash join is a supported tier-2 shape");
    c.bench_function("exec/fused_hot_path", |b| {
        b.iter(|| {
            black_box(
                fused_join
                    .execute(&full.db, cost, &join_query, None)
                    .unwrap(),
            )
        })
    });

    // Heavy-tail hash join from the skew-stress workload: with Zipf s ≥ 1.5
    // join keys, the hottest key owns ~40% of both sides, so one hash bucket
    // dominates the build and almost every probe lands in a long chain —
    // the adversarial shape for the chunked join's key-gather path.
    let skew = skewstress::build(WorkloadSpec {
        seed: 42,
        scale: 0.2,
    })
    .expect("skewstress workload");
    let skew_cost = *skew.optimizer.cost_model();
    let skew_exec = Executor::new(&skew.db, skew_cost);
    let (skew_query, skew_plan) = hash_join_skewed_case(&skew);
    c.bench_function("exec/hash_join_skewed", |b| {
        b.iter(|| black_box(skew_exec.execute(&skew_query, &skew_plan, None).unwrap()))
    });

    // Morsel-driven parallel twins: the same filtered scan and skewed hash
    // join on a 4-worker executor. Results and metered latency are
    // bit-identical to the single-threaded runs above by construction, so
    // wall-clock is the only thing these can move; the ratio to their
    // single-threaded counterparts is the intra-query scaling figure
    // (≈1× on a single-core host, grows with available cores). The
    // partitioned join keeps the Zipf hot keys on the broadcast path.
    let par4 = ParallelConfig {
        workers: 4,
        ..ParallelConfig::sequential()
    };
    let par_scan = Executor::new(&full.db, cost).with_parallelism(par4);
    c.bench_function("exec/parallel_scan", |b| {
        b.iter(|| black_box(par_scan.execute(&scan_query, &scan_plan, None).unwrap()))
    });
    let par_skew = Executor::new(&skew.db, skew_cost).with_parallelism(par4);
    c.bench_function("exec/hash_join_partitioned", |b| {
        b.iter(|| black_box(par_skew.execute(&skew_query, &skew_plan, None).unwrap()))
    });

    // Eviction-policy overhead on a skewed serving-style stream: a 4-plan
    // hot set re-referenced between one-shot cold queries through a bounded
    // LRU cache, so every pass mixes hits, misses and evictions.
    let (cache_queries, cache_plan, trace) = eviction_case(&full);
    let bounded =
        CachingExecutor::with_capacity_policy(full.db.clone(), cost, 16, EvictionPolicy::Lru);
    c.bench_function("cache/eviction", |b| {
        b.iter(|| {
            for &qi in &trace {
                black_box(
                    bounded
                        .execute(&cache_queries[qi], &cache_plan, None)
                        .unwrap(),
                );
            }
        })
    });

    // PlanDoctor serving throughput: the same submission batch planned and
    // executed through the service front end by one thread vs four worker
    // threads over a single shared snapshot. The 1→4-thread ratio is the
    // concurrent-serving scaling figure (≈1× on a single-core host — the
    // planning path is CPU-bound — and grows with available cores).
    let caching_for_service = Arc::new(CachingExecutor::new(wl.db.clone(), *opt.cost_model()));
    let mut foss = Foss::new(
        wl.optimizer.clone(),
        caching_for_service.clone(),
        wl.max_relations,
        wl.table_rows(),
        FossConfig {
            episodes_per_update: 4,
            ..FossConfig::tiny()
        },
    );
    let serve_train: Vec<Query> = wl.train.iter().take(6).cloned().collect();
    foss.bootstrap(&serve_train, 1).expect("service bootstrap");
    let doctor = PlanDoctor::new(
        foss.snapshot(),
        caching_for_service,
        ServiceConfig::default(),
    );
    let serve_queries: Vec<Query> = wl.train.iter().take(8).cloned().collect();
    // Warm the latency cache so both benches measure planning throughput,
    // not first-touch execution.
    for q in &serve_queries {
        doctor.submit(QueryRequest::new(q.clone())).expect("warmup");
    }
    c.bench_function("service/submit_throughput_1t", |b| {
        b.iter(|| {
            for q in &serve_queries {
                black_box(doctor.submit(QueryRequest::new(q.clone())).unwrap());
            }
        })
    });
    c.bench_function("service/submit_throughput", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for chunk in serve_queries.chunks(serve_queries.len().div_ceil(4)) {
                    let doctor = &doctor;
                    scope.spawn(move || {
                        for q in chunk {
                            black_box(doctor.submit(QueryRequest::new(q.clone())).unwrap());
                        }
                    });
                }
            })
        })
    });

    // Tiered serving A/B: the same repeated-template batch with the latency
    // cache cleared every pass so each submission actually executes.
    // `_tiered` force-compiles hot shapes to fused pipelines, `_tiered_off`
    // pins the interpreter; their ratio is the steady-state tier-2 win on
    // the serving path (compile cost amortises after the first pass — the
    // tier cell persists across iterations).
    let bench_tiered = |mode: TierMode| {
        let exec = Arc::new(CachingExecutor::new(wl.db.clone(), *opt.cost_model()));
        let doctor = PlanDoctor::new(
            foss.snapshot(),
            exec.clone(),
            ServiceConfig {
                tier: TierConfig {
                    mode,
                    hot_threshold: 1,
                },
                ..ServiceConfig::default()
            },
        );
        (exec, doctor)
    };
    let (tiered_exec, tiered_doctor) = bench_tiered(TierMode::Force);
    c.bench_function("service/submit_throughput_tiered", |b| {
        b.iter(|| {
            tiered_exec.clear();
            for q in &serve_queries {
                black_box(tiered_doctor.submit(QueryRequest::new(q.clone())).unwrap());
            }
        })
    });
    let (off_exec, off_doctor) = bench_tiered(TierMode::Interpreter);
    c.bench_function("service/submit_throughput_tiered_off", |b| {
        b.iter(|| {
            off_exec.clear();
            for q in &serve_queries {
                black_box(off_doctor.submit(QueryRequest::new(q.clone())).unwrap());
            }
        })
    });

    let a = Matrix::full(64, 64, 0.5);
    let bm = Matrix::full(64, 64, 0.25);
    c.bench_function("nn/matmul_64x64", |b| b.iter(|| black_box(a.matmul(&bm))));
    let a128 = Matrix::full(128, 128, 0.5);
    let b128 = Matrix::full(128, 128, 0.25);
    c.bench_function("nn/matmul_128x128", |b| {
        b.iter(|| black_box(a128.matmul(&b128)))
    });

    // One tape forward of a 64-state batch through a 2-layer MLP: measures
    // how graph-construction overhead amortises across a batch.
    let mut nn_rng = StdRng::seed_from_u64(11);
    let mut set = ParamSet::new();
    let l1 = Linear::new(&mut set, 64, 64, &mut nn_rng);
    let l2 = Linear::new(&mut set, 64, 3, &mut nn_rng);
    let batch_in = Matrix::full(64, 64, 0.1);
    c.bench_function("nn/matmul_batched_fwd", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.input(batch_in.clone());
            let h = l1.forward(&mut g, &set, x);
            let h = g.relu(h);
            let out = l2.forward(&mut g, &set, h);
            black_box(g.value(out).get(0, 0))
        })
    });

    let _ = Arc::strong_count(&opt);
}

/// A single-relation scan over `cast_info` (the biggest joblite table) with
/// one range and one equality filter, forced onto a sequential scan.
fn scan_filter_case(wl: &foss_workloads::Workload) -> (Query, PhysicalPlan) {
    let schema = wl.db.schema().clone();
    let mut qb = QueryBuilder::new(QueryId::new(9001), 1);
    let ci = qb.relation(schema.table_id("cast_info").expect("cast_info"), "ci");
    // person_id in the lower half, role_id pinned: a moderately selective
    // conjunction evaluated over every row.
    qb.predicate(
        ci,
        Predicate::Range {
            column: 1,
            lo: 0,
            hi: 3999,
        },
    );
    qb.predicate(
        ci,
        Predicate::Eq {
            column: 2,
            value: 3,
        },
    );
    let query = qb.build(&schema).expect("scan query");
    let plan = PhysicalPlan {
        root: PlanNode::Scan {
            relation: 0,
            access: AccessPath::SeqScan,
            est_rows: 0.0,
            est_cost: 0.0,
        },
    };
    (query, plan)
}

/// `event ⋈ audit` on their shared (extremely Zipf-skewed) hub key, forced
/// onto a hash join: an FK–FK join whose output is dominated by the single
/// hottest key's cross product.
fn hash_join_skewed_case(wl: &foss_workloads::Workload) -> (Query, PhysicalPlan) {
    let schema = wl.db.schema().clone();
    let mut qb = QueryBuilder::new(QueryId::new(9003), 1);
    let e = qb.relation(schema.table_id("event").expect("event"), "e");
    let a = qb.relation(schema.table_id("audit").expect("audit"), "a");
    qb.join(e, 0, a, 0);
    let query = qb.build(&schema).expect("skewed join query");
    let icp = Icp::new(vec![0, 1], vec![JoinMethod::Hash]).expect("icp");
    let plan = wl
        .optimizer
        .optimize_with_hint(&query, &icp)
        .expect("skewed hash plan");
    (query, plan)
}

/// `title ⋈ cast_info` forced onto a hash join (build on `cast_info`).
fn hash_join_case(wl: &foss_workloads::Workload) -> (Query, PhysicalPlan) {
    let schema = wl.db.schema().clone();
    let mut qb = QueryBuilder::new(QueryId::new(9002), 1);
    let t = qb.relation(schema.table_id("title").expect("title"), "t");
    let ci = qb.relation(schema.table_id("cast_info").expect("cast_info"), "ci");
    qb.join(t, 0, ci, 0);
    let query = qb.build(&schema).expect("join query");
    let icp = Icp::new(vec![0, 1], vec![JoinMethod::Hash]).expect("icp");
    let plan = wl
        .optimizer
        .optimize_with_hint(&query, &icp)
        .expect("hash plan");
    (query, plan)
}

/// Queries + trace for the `cache/eviction` bench: distinct tiny queries over
/// `info_type` (4 hot, 44 cold) interleaved hot/cold.
fn eviction_case(wl: &foss_workloads::Workload) -> (Vec<Query>, PhysicalPlan, Vec<usize>) {
    let schema = wl.db.schema().clone();
    let it = schema.table_id("info_type").expect("info_type");
    let queries: Vec<Query> = (0..48)
        .map(|i| {
            let mut qb = QueryBuilder::new(QueryId::new(9100 + i), 1);
            let r = qb.relation(it, "it");
            qb.predicate(
                r,
                Predicate::Eq {
                    column: 1,
                    value: i as i64 % 10,
                },
            );
            qb.build(&schema).expect("cache query")
        })
        .collect();
    let plan = PhysicalPlan {
        root: PlanNode::Scan {
            relation: 0,
            access: AccessPath::SeqScan,
            est_rows: 1.0,
            est_cost: 1.0,
        },
    };
    let mut trace = Vec::with_capacity(88);
    for i in 0..44 {
        trace.push(i % 4); // hot set, re-referenced throughout
        trace.push(4 + i); // one-shot cold keys
    }
    (queries, plan, trace)
}

/// Parse a `BENCH_<tag>.json` file (the format [`Criterion::summary_json`]
/// writes) into `(name, median_ns)` entries. Hand-rolled: the format is owned
/// by this workspace and the build is offline (no serde_json).
pub fn parse_bench_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_start) = line.find("\"name\"") else {
            continue;
        };
        let rest = &line[name_start + 6..];
        let Some(q1) = rest.find('"') else { continue };
        let Some(q2) = rest[q1 + 1..].find('"') else {
            continue;
        };
        let name = &rest[q1 + 1..q1 + 1 + q2];
        let Some(med_start) = line.find("\"median_ns\"") else {
            continue;
        };
        let med_rest = &line[med_start + 11..];
        let num: String = med_rest
            .chars()
            .skip_while(|c| !c.is_ascii_digit() && *c != '-')
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_roundtrip() {
        let text = "[\n  {\"name\": \"aam/pair_inference\", \"median_ns\": 121373.8},\n  {\"name\": \"nn/matmul_64x64\", \"median_ns\": 31992.3}\n]\n";
        let parsed = parse_bench_json(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "aam/pair_inference");
        assert!((parsed[0].1 - 121373.8).abs() < 1e-6);
        assert!((parsed[1].1 - 31992.3).abs() < 1e-6);
    }

    #[test]
    fn env_config_defaults() {
        std::env::remove_var("FOSS_SCALE");
        std::env::remove_var("FOSS_ROUNDS");
        std::env::remove_var("FOSS_EXEC");
        let cfg = run_config_from_env();
        assert_eq!(cfg.baseline_rounds, 3);
        assert!(
            (cfg.spec.scale - 1.0).abs() < 1e-9,
            "generators default to full scale"
        );
        assert_eq!(cfg.exec_mode, ExecMode::Chunked);
    }
}
