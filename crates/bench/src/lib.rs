//! Benchmark crate: criterion micro-benchmarks (`benches/micro.rs`) and one
//! binary per paper table/figure (`src/bin/*`).
//!
//! Binaries read two environment variables so the same targets serve both
//! smoke runs and fuller reproductions:
//!
//! * `FOSS_SCALE` — workload row-count multiplier (default 0.2);
//! * `FOSS_ROUNDS` — training rounds / iterations (default 3).

use criterion::Criterion;
use foss_core::encoding::PlanEncoder;
use foss_core::{AdvantageModel, FossConfig};
use foss_executor::{CachingExecutor, Executor};
use foss_harness::table1::RunConfig;
use foss_nn::{Graph, Linear, Matrix, ParamSet};
use foss_workloads::{joblite, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

/// Build the shared run configuration from the environment.
pub fn run_config_from_env() -> RunConfig {
    let scale: f64 = std::env::var("FOSS_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let rounds: usize = std::env::var("FOSS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    RunConfig {
        spec: WorkloadSpec { seed: 42, scale },
        baseline_rounds: rounds,
        foss_iterations: rounds,
        foss_episodes: 30 * rounds,
    }
}

/// The micro-benchmark suite behind `benches/micro.rs` *and*
/// `probe --out BENCH_<tag>.json`: per-component costs of the FOSS hot paths
/// (expert planning, hint steering, plan encoding, single and batched AAM
/// inference, executor throughput, NN kernels).
///
/// Shared so the checked-in `BENCH_<tag>.json` perf trajectory and the CI
/// regression gate measure exactly what the criterion bench target measures.
pub fn micro_suite(c: &mut Criterion) {
    let wl = joblite::build(WorkloadSpec { seed: 42, scale: 0.15 }).expect("workload");
    let query = wl
        .train
        .iter()
        .max_by_key(|q| q.relation_count())
        .unwrap()
        .clone();
    let opt = wl.optimizer.clone();
    let plan = opt.optimize(&query).unwrap();
    let icp = plan.extract_icp().unwrap();
    let encoder = PlanEncoder::new(wl.table_count(), wl.table_rows());
    let encoded = encoder.encode(&query, &plan, 0.0);

    c.bench_function("optimizer/dp_full_plan", |b| {
        b.iter(|| black_box(opt.optimize(black_box(&query)).unwrap()))
    });
    c.bench_function("optimizer/hint_steering", |b| {
        b.iter(|| black_box(opt.optimize_with_hint(black_box(&query), black_box(&icp)).unwrap()))
    });
    c.bench_function("encoding/plan_encode", |b| {
        b.iter(|| black_box(encoder.encode(black_box(&query), black_box(&plan), 0.5)))
    });

    let mut rng = StdRng::seed_from_u64(7);
    let aam = AdvantageModel::new(wl.table_count() + 1, &FossConfig::tiny(), &mut rng);
    c.bench_function("aam/pair_inference", |b| {
        b.iter(|| black_box(aam.predict(black_box(&encoded), black_box(&encoded))))
    });
    // The two batched callers in the system, in their real shapes. Batch 8 is
    // a selector tournament wave: one champion scored against 8 *distinct*
    // candidate plans (encoded at distinct steps, so the state network
    // genuinely runs per candidate). Batch 64 is AAM training/accuracy
    // scoring: the first 64 ordered pairs drawn from 9 distinct plans —
    // exactly what `ExecutionBuffer::training_pairs` emits, where unique-plan
    // dedup lets one state-network pass serve many pairs.
    let candidates: Vec<_> = (0..9)
        .map(|i| encoder.encode(&query, &plan, i as f32 / 9.0))
        .collect();
    let wave: Vec<_> = candidates[..8].iter().map(|c| (&encoded, c)).collect();
    c.bench_function("aam/pair_inference_batch8", |b| {
        b.iter(|| black_box(aam.predict_batch(black_box(&wave))))
    });
    let mut ordered_pairs = Vec::new();
    for l in &candidates {
        for r in &candidates {
            if !std::ptr::eq(l, r) {
                ordered_pairs.push((l, r));
            }
        }
    }
    ordered_pairs.truncate(64);
    c.bench_function("aam/pair_inference_batch64", |b| {
        b.iter(|| black_box(aam.predict_batch(black_box(&ordered_pairs))))
    });

    let exec = Executor::new(&wl.db, *opt.cost_model());
    c.bench_function("executor/expert_plan", |b| {
        b.iter(|| black_box(exec.execute(&query, &plan, None).unwrap()))
    });
    let caching = CachingExecutor::new(wl.db.clone(), *opt.cost_model());
    caching.execute(&query, &plan, None).unwrap();
    c.bench_function("executor/cached_lookup", |b| {
        b.iter(|| black_box(caching.execute(&query, &plan, None).unwrap()))
    });

    let a = Matrix::full(64, 64, 0.5);
    let bm = Matrix::full(64, 64, 0.25);
    c.bench_function("nn/matmul_64x64", |b| b.iter(|| black_box(a.matmul(&bm))));
    let a128 = Matrix::full(128, 128, 0.5);
    let b128 = Matrix::full(128, 128, 0.25);
    c.bench_function("nn/matmul_128x128", |b| b.iter(|| black_box(a128.matmul(&b128))));

    // One tape forward of a 64-state batch through a 2-layer MLP: measures
    // how graph-construction overhead amortises across a batch.
    let mut nn_rng = StdRng::seed_from_u64(11);
    let mut set = ParamSet::new();
    let l1 = Linear::new(&mut set, 64, 64, &mut nn_rng);
    let l2 = Linear::new(&mut set, 64, 3, &mut nn_rng);
    let batch_in = Matrix::full(64, 64, 0.1);
    c.bench_function("nn/matmul_batched_fwd", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.input(batch_in.clone());
            let h = l1.forward(&mut g, &set, x);
            let h = g.relu(h);
            let out = l2.forward(&mut g, &set, h);
            black_box(g.value(out).get(0, 0))
        })
    });

    let _ = Arc::strong_count(&opt);
}

/// Parse a `BENCH_<tag>.json` file (the format [`Criterion::summary_json`]
/// writes) into `(name, median_ns)` entries. Hand-rolled: the format is owned
/// by this workspace and the build is offline (no serde_json).
pub fn parse_bench_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_start) = line.find("\"name\"") else { continue };
        let rest = &line[name_start + 6..];
        let Some(q1) = rest.find('"') else { continue };
        let Some(q2) = rest[q1 + 1..].find('"') else { continue };
        let name = &rest[q1 + 1..q1 + 1 + q2];
        let Some(med_start) = line.find("\"median_ns\"") else { continue };
        let med_rest = &line[med_start + 11..];
        let num: String = med_rest
            .chars()
            .skip_while(|c| !c.is_ascii_digit() && *c != '-')
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_roundtrip() {
        let text = "[\n  {\"name\": \"aam/pair_inference\", \"median_ns\": 121373.8},\n  {\"name\": \"nn/matmul_64x64\", \"median_ns\": 31992.3}\n]\n";
        let parsed = parse_bench_json(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "aam/pair_inference");
        assert!((parsed[0].1 - 121373.8).abs() < 1e-6);
        assert!((parsed[1].1 - 31992.3).abs() < 1e-6);
    }

    #[test]
    fn env_config_defaults() {
        std::env::remove_var("FOSS_SCALE");
        std::env::remove_var("FOSS_ROUNDS");
        let cfg = run_config_from_env();
        assert_eq!(cfg.baseline_rounds, 3);
        assert!((cfg.spec.scale - 0.2).abs() < 1e-9);
    }
}
