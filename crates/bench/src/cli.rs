//! Clap-less command-line parsing for the `plan-doctor` binary.
//!
//! The binary has three subcommands over one shared flag vocabulary:
//!
//! * `bench` — train on a workload, then hammer the in-process service
//!   from worker threads (the original behaviour; also the default when
//!   the first argument is a `--flag`, so existing invocations keep
//!   working).
//! * `serve` — expose the service over a socket
//!   ([`foss_service::PlanServer`]), either training first or booting
//!   serving-only from a saved snapshot (`--snapshot`).
//! * `load` — closed-loop load generator driving a running `serve`
//!   process over the socket.
//!
//! Every flag takes exactly one value (`--flag value`). Shared flags
//! (`--workload`, `--scale`, `--rounds`, `--budget-us`, `--max-in-flight`,
//! `--faults`) are parsed once in [`SharedArgs`]; each subcommand adds its
//! own. Errors (unknown subcommand, unknown flag, bad value) are returned
//! as readable strings — the binary prints them and exits 2, matching the
//! workload-typo and fault-spec UX.

use std::str::FromStr;

use foss_service::TierMode;

/// The valid subcommands, in help order.
pub const SUBCOMMANDS: &[&str] = &["bench", "serve", "load"];

/// Default bind/target address for `serve` and `load`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7434";

/// A parsed `plan-doctor` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// In-process benchmark (the default subcommand).
    Bench(BenchArgs),
    /// Socket server.
    Serve(ServeArgs),
    /// Socket load generator.
    Load(LoadArgs),
}

/// Flags shared by the subcommands that build a workload + service.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedArgs {
    /// Workload registry name (`--workload`).
    pub workload: String,
    /// Row-count multiplier (`--scale`, default `FOSS_SCALE` or 1.0).
    pub scale: f64,
    /// Training rounds before serving (`--rounds`).
    pub rounds: usize,
    /// Default per-query planning budget in µs (`--budget-us`).
    pub budget_us: Option<f64>,
    /// Admission ceiling (`--max-in-flight`).
    pub max_in_flight: usize,
    /// Deterministic fault-plan spec (`--faults`, beats `FOSS_FAULTS`).
    pub faults: Option<String>,
    /// Execution-tier override (`--tier off|auto|force`, beats
    /// `FOSS_TIER`; `None` defers to the env var, then the service
    /// default).
    pub tier: Option<TierMode>,
}

impl Default for SharedArgs {
    fn default() -> Self {
        let env_scale = std::env::var("FOSS_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        Self {
            workload: "tpcdslite".into(),
            scale: env_scale,
            rounds: 1,
            budget_us: None,
            max_in_flight: 16,
            faults: None,
            tier: None,
        }
    }
}

impl SharedArgs {
    /// Consume `flag` if it is a shared flag; `Ok(false)` hands it back to
    /// the subcommand's own table.
    fn apply(&mut self, flag: &str, value: &str) -> Result<bool, String> {
        match flag {
            "--workload" => self.workload = value.to_string(),
            "--scale" => self.scale = num(flag, value)?,
            "--rounds" => self.rounds = num(flag, value)?,
            "--budget-us" => self.budget_us = Some(num(flag, value)?),
            "--max-in-flight" => self.max_in_flight = num(flag, value)?,
            "--faults" => self.faults = Some(value.to_string()),
            "--tier" => {
                self.tier = Some(TierMode::parse(value).ok_or_else(|| {
                    format!("--tier must be one of off|interpreter|auto|force|fused, got `{value}`")
                })?)
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// `plan-doctor bench` flags.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Workload/service flags.
    pub shared: SharedArgs,
    /// Submitting worker threads (`--threads`).
    pub threads: usize,
    /// Total submissions (`--queries`).
    pub queries: usize,
    /// Fraction of submissions tagged low priority (`--priority-mix`).
    pub priority_mix: f64,
    /// End-to-end deadline attached to every request (`--deadline-us`).
    pub deadline_us: Option<f64>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            shared: SharedArgs::default(),
            threads: 4,
            queries: 24,
            priority_mix: 0.0,
            deadline_us: None,
        }
    }
}

/// `plan-doctor serve` flags.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Workload/service flags.
    pub shared: SharedArgs,
    /// Bind address (`--addr`).
    pub addr: String,
    /// Boot serving-only from this snapshot file instead of training
    /// (`--snapshot`).
    pub snapshot: Option<String>,
    /// After training, save the snapshot here (`--save-snapshot`).
    pub save_snapshot: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            shared: SharedArgs::default(),
            addr: DEFAULT_ADDR.into(),
            snapshot: None,
            save_snapshot: None,
        }
    }
}

/// `plan-doctor load` flags. The target server owns the workload; the
/// generator only needs its address and discovers the pool size from
/// `GET /healthz`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadArgs {
    /// Target server (`--addr`).
    pub addr: String,
    /// Closed-loop client threads (`--threads`).
    pub threads: usize,
    /// Total requests to issue (`--requests`).
    pub requests: usize,
    /// Fraction of requests tagged low priority (`--priority-mix`).
    pub priority_mix: f64,
    /// Deadline attached to every request (`--deadline-us`).
    pub deadline_us: Option<f64>,
    /// Per-request planning-budget override (`--budget-us`).
    pub budget_us: Option<f64>,
}

impl Default for LoadArgs {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.into(),
            threads: 4,
            requests: 64,
            priority_mix: 0.0,
            deadline_us: None,
            budget_us: None,
        }
    }
}

fn num<T: FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} must be a number, got `{value}`"))
}

/// Split argv into `(--flag, value)` pairs (every flag takes one value).
fn flag_pairs(argv: &[String]) -> Result<Vec<(&str, &str)>, String> {
    let mut pairs = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if !flag.starts_with("--") {
            return Err(format!("expected a --flag, got `{flag}`"));
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        pairs.push((flag, value.as_str()));
        i += 2;
    }
    Ok(pairs)
}

fn check_mix(mix: f64) -> Result<(), String> {
    if (0.0..=1.0).contains(&mix) {
        Ok(())
    } else {
        Err(format!(
            "--priority-mix must be a fraction in [0, 1], got {mix}"
        ))
    }
}

fn check_threads(threads: usize) -> Result<(), String> {
    if threads == 0 {
        Err("--threads must be positive".into())
    } else {
        Ok(())
    }
}

/// Parse a full argv (without the program name). The first argument picks
/// the subcommand; a leading `--flag` (or nothing) means `bench`, so
/// pre-subcommand invocations parse unchanged.
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let (sub, rest): (&str, &[String]) = match argv.first() {
        None => ("bench", &[]),
        Some(s) if s.starts_with("--") => ("bench", argv),
        Some(s) => (s.as_str(), &argv[1..]),
    };
    match sub {
        "bench" => {
            let mut args = BenchArgs::default();
            for (flag, value) in flag_pairs(rest)? {
                if args.shared.apply(flag, value)? {
                    continue;
                }
                match flag {
                    "--threads" => args.threads = num(flag, value)?,
                    "--queries" => args.queries = num(flag, value)?,
                    "--priority-mix" => args.priority_mix = num(flag, value)?,
                    "--deadline-us" => args.deadline_us = Some(num(flag, value)?),
                    other => return Err(format!("unknown flag {other} for `bench`")),
                }
            }
            check_threads(args.threads)?;
            check_mix(args.priority_mix)?;
            Ok(Command::Bench(args))
        }
        "serve" => {
            let mut args = ServeArgs::default();
            for (flag, value) in flag_pairs(rest)? {
                if args.shared.apply(flag, value)? {
                    continue;
                }
                match flag {
                    "--addr" => args.addr = value.to_string(),
                    "--snapshot" => args.snapshot = Some(value.to_string()),
                    "--save-snapshot" => args.save_snapshot = Some(value.to_string()),
                    other => return Err(format!("unknown flag {other} for `serve`")),
                }
            }
            Ok(Command::Serve(args))
        }
        "load" => {
            let mut args = LoadArgs::default();
            for (flag, value) in flag_pairs(rest)? {
                match flag {
                    "--addr" => args.addr = value.to_string(),
                    "--threads" => args.threads = num(flag, value)?,
                    "--requests" => args.requests = num(flag, value)?,
                    "--priority-mix" => args.priority_mix = num(flag, value)?,
                    "--deadline-us" => args.deadline_us = Some(num(flag, value)?),
                    "--budget-us" => args.budget_us = Some(num(flag, value)?),
                    other => return Err(format!("unknown flag {other} for `load`")),
                }
            }
            check_threads(args.threads)?;
            check_mix(args.priority_mix)?;
            Ok(Command::Load(args))
        }
        other => Err(format!(
            "unknown subcommand `{other}`; valid subcommands: {}",
            SUBCOMMANDS.join(", ")
        )),
    }
}

/// Parse the process argv; on error print the message and exit 2 (the
/// same contract as a typo'd `--workload` or an invalid `--faults` spec).
pub fn parse_or_exit() -> Command {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    parse(&argv).unwrap_or_else(|msg| {
        eprintln!("plan-doctor: {msg}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn bare_flags_default_to_bench() {
        let cmd = parse(&argv("--threads 2 --queries 8 --workload joblite")).unwrap();
        let Command::Bench(b) = cmd else {
            panic!("bare flags must mean bench")
        };
        assert_eq!(b.threads, 2);
        assert_eq!(b.queries, 8);
        assert_eq!(b.shared.workload, "joblite");
        assert!(matches!(parse(&[]).unwrap(), Command::Bench(_)));
    }

    #[test]
    fn explicit_subcommands_parse_their_flags() {
        let Command::Serve(s) = parse(&argv(
            "serve --addr 127.0.0.1:9000 --snapshot /tmp/planner.fsnp --rounds 2",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.addr, "127.0.0.1:9000");
        assert_eq!(s.snapshot.as_deref(), Some("/tmp/planner.fsnp"));
        assert_eq!(s.shared.rounds, 2);

        let Command::Load(l) = parse(&argv(
            "load --addr 127.0.0.1:9000 --requests 100 --threads 8 --priority-mix 0.25",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(l.requests, 100);
        assert_eq!(l.threads, 8);
        assert!((l.priority_mix - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unknown_subcommand_lists_the_valid_ones() {
        let err = parse(&argv("brench --queries 8")).unwrap_err();
        for name in SUBCOMMANDS {
            assert!(err.contains(name), "`{err}` must list `{name}`");
        }
    }

    #[test]
    fn unknown_and_malformed_flags_are_rejected() {
        assert!(parse(&argv("bench --serve-only 1"))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse(&argv("load --workload joblite"))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse(&argv("bench --queries"))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&argv("bench --queries many"))
            .unwrap_err()
            .contains("must be a number"));
        assert!(parse(&argv("bench --priority-mix 1.5"))
            .unwrap_err()
            .contains("[0, 1]"));
        assert!(parse(&argv("load --threads 0"))
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn shared_flags_work_across_subcommands() {
        for sub in ["", "serve "] {
            let line = format!(
                "{sub}--workload skewstress --scale 0.2 --max-in-flight 4 --faults exec_error:0.5"
            );
            let cmd = parse(&argv(&line)).unwrap();
            let shared = match &cmd {
                Command::Bench(b) => &b.shared,
                Command::Serve(s) => &s.shared,
                Command::Load(_) => unreachable!(),
            };
            assert_eq!(shared.workload, "skewstress");
            assert!((shared.scale - 0.2).abs() < 1e-12);
            assert_eq!(shared.max_in_flight, 4);
            assert_eq!(shared.faults.as_deref(), Some("exec_error:0.5"));
        }
    }

    #[test]
    fn tier_flag_parses_and_rejects_garbage() {
        let Command::Bench(b) = parse(&argv("--tier force")).unwrap() else {
            panic!()
        };
        assert_eq!(b.shared.tier, Some(TierMode::Force));
        let Command::Serve(s) = parse(&argv("serve --tier off")).unwrap() else {
            panic!()
        };
        assert_eq!(s.shared.tier, Some(TierMode::Interpreter));
        assert!(parse(&argv("--tier warp"))
            .unwrap_err()
            .contains("off|interpreter|auto|force|fused"));
        assert!(parse(&[]).is_ok_and(|c| matches!(c, Command::Bench(b) if b.shared.tier.is_none())));
    }
}
