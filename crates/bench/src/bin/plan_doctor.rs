//! `plan-doctor` — the PlanDoctor service driven as a long-lived process.
//!
//! Trains FOSS on a workload's train split, publishes a snapshot into a
//! [`foss_service::PlanDoctor`], then spins up N worker threads that submit
//! queries concurrently over the one snapshot and prints the metrics
//! summary line (p50/p95/p99 latency, fallback rate, cache hit rate,
//! in-flight high-water mark).
//!
//! ```text
//! cargo run --release --bin plan-doctor -- \
//!     --workload tpcdslite --scale 0.08 --threads 4 --queries 24
//! ```
//!
//! Flags: `--workload <name>` — any of
//! [`foss_workloads::WORKLOAD_NAMES`] (default tpcdslite),
//! `--scale <f64>` (default `FOSS_SCALE` or 1.0), `--threads <n>`
//! (default 4), `--queries <n>` total submissions (default 24),
//! `--rounds <n>` training rounds (default 1), `--budget-us <f64>`
//! per-query planning budget (default: none), `--max-in-flight <n>`
//! admission ceiling (default 16).
//!
//! Robustness flags: `--faults <spec>` — a deterministic fault plan in the
//! [`foss_common::faults`] grammar (`site:rate[@param][#max];...;seed=N`),
//! overriding the `FOSS_FAULTS` environment variable; `--priority-mix
//! <f64>` — fraction of submissions tagged [`foss_service::Priority::Low`]
//! (default 0, deterministic by submission index); `--deadline-us <f64>` —
//! end-to-end deadline attached to every request (default: none). Shed
//! requests are counted, not fatal; the summary line reports them.

use std::sync::Arc;

use foss_common::{FaultPlan, FossError};
use foss_core::FossConfig;
use foss_harness::{Experiment, FossAdapter};
use foss_service::{PlanDoctor, Priority, QueryRequest, ServiceConfig};
use foss_workloads::WorkloadSpec;

struct Args {
    workload: String,
    scale: f64,
    threads: usize,
    queries: usize,
    rounds: usize,
    budget_us: Option<f64>,
    max_in_flight: usize,
    faults: Option<String>,
    priority_mix: f64,
    deadline_us: Option<f64>,
}

fn parse_args() -> Args {
    let env_scale: f64 = std::env::var("FOSS_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let mut args = Args {
        workload: "tpcdslite".into(),
        scale: env_scale,
        threads: 4,
        queries: 24,
        rounds: 1,
        budget_us: None,
        max_in_flight: 16,
        faults: None,
        priority_mix: 0.0,
        deadline_us: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> &str {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--workload" => args.workload = value(i).to_string(),
            "--scale" => args.scale = value(i).parse().expect("--scale must be a number"),
            "--threads" => args.threads = value(i).parse().expect("--threads must be a count"),
            "--queries" => args.queries = value(i).parse().expect("--queries must be a count"),
            "--rounds" => args.rounds = value(i).parse().expect("--rounds must be a count"),
            "--budget-us" => {
                args.budget_us = Some(value(i).parse().expect("--budget-us must be a number"))
            }
            "--max-in-flight" => {
                args.max_in_flight = value(i).parse().expect("--max-in-flight must be a count")
            }
            "--faults" => args.faults = Some(value(i).to_string()),
            "--priority-mix" => {
                args.priority_mix = value(i)
                    .parse()
                    .expect("--priority-mix must be a fraction in [0, 1]")
            }
            "--deadline-us" => {
                args.deadline_us = Some(value(i).parse().expect("--deadline-us must be a number"))
            }
            other => panic!("unknown argument {other}"),
        }
        i += 2;
    }
    assert!(args.threads > 0, "--threads must be positive");
    assert!(
        (0.0..=1.0).contains(&args.priority_mix),
        "--priority-mix must be a fraction in [0, 1]"
    );
    args
}

/// The fault plan in effect: `--faults` beats `FOSS_FAULTS`, neither means
/// none. An invalid spec exits with the parser's readable message (which
/// lists the valid site names) rather than a panic backtrace.
fn fault_plan(args: &Args) -> Option<Arc<FaultPlan>> {
    let parsed = match &args.faults {
        Some(spec) => FaultPlan::parse(spec, 42).map(Some),
        None => FaultPlan::from_env(),
    };
    match parsed {
        Ok(plan) => plan.map(Arc::new),
        Err(msg) => {
            eprintln!("plan-doctor: {msg}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let spec = WorkloadSpec {
        seed: 42,
        scale: args.scale,
    };
    // Registry lookup: a typo'd --workload exits with the valid-name list
    // instead of a panic backtrace.
    let exp = Experiment::new(&args.workload, spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!(
        "plan-doctor: workload={} scale={} train={} test={}",
        args.workload,
        args.scale,
        exp.workload.train.len(),
        exp.workload.test.len()
    );

    // Train, then publish a snapshot into the service.
    let mut adapter = FossAdapter::new(exp.foss(FossConfig {
        episodes_per_update: 12,
        seed: spec.seed,
        ..FossConfig::tiny()
    }));
    use foss_baselines::LearnedOptimizer;
    for round in 0..args.rounds.max(1) {
        adapter
            .train_round(&exp.workload.train)
            .unwrap_or_else(|e| panic!("training round {round} failed: {e}"));
    }
    let mut doctor = PlanDoctor::new(
        adapter.snapshot().as_ref().clone(),
        exp.executor.clone(),
        ServiceConfig {
            max_in_flight: args.max_in_flight,
            planning_budget_us: args.budget_us,
            ..ServiceConfig::default()
        },
    );
    if let Some(faults) = fault_plan(&args) {
        println!("plan-doctor: chaos mode, fault plan attached");
        doctor = doctor.with_fault_plan(faults);
    }
    let doctor = Arc::new(doctor);

    // N worker threads submit the test split round-robin until `queries`
    // total submissions have completed.
    let pool: Vec<_> = exp.workload.all_queries();
    assert!(!pool.is_empty(), "workload has no queries");
    let per_thread = args.queries.div_ceil(args.threads);
    std::thread::scope(|scope| {
        for t in 0..args.threads {
            let doctor = doctor.clone();
            let pool = &pool;
            scope.spawn(move || {
                for k in 0..per_thread {
                    let idx = t * per_thread + k;
                    if idx >= args.queries {
                        break;
                    }
                    let query = pool[idx % pool.len()].clone();
                    let mut req = QueryRequest::new(query);
                    // Deterministic priority assignment: submission index
                    // modulo 100 against the mix percentage, so the same
                    // flags always tag the same requests low.
                    if ((idx % 100) as f64) < args.priority_mix * 100.0 {
                        req = req.with_priority(Priority::Low);
                    }
                    if let Some(d) = args.deadline_us {
                        req = req.with_deadline_us(d);
                    }
                    match doctor.submit(req) {
                        Ok(d) => {
                            if d.fallback {
                                println!("  worker {t}: query {idx} fell back ({:?})", d.reason);
                            }
                        }
                        // Shedding is the service working as designed under
                        // overload, not a harness failure.
                        Err(e @ FossError::Overloaded { .. }) => {
                            println!("  worker {t}: query {idx} shed ({e})");
                        }
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            });
        }
    });

    println!("{}", doctor.metrics().summary_line());
}
