//! `plan-doctor` — the PlanDoctor service as a process, in three modes.
//!
//! ```text
//! plan-doctor [bench] --workload tpcdslite --scale 0.08 --threads 4 --queries 24
//! plan-doctor serve --workload tpcdslite --scale 0.08 --addr 127.0.0.1:7434 \
//!     [--snapshot planner.fsnp | --save-snapshot planner.fsnp]
//! plan-doctor load --addr 127.0.0.1:7434 --threads 4 --requests 64
//! ```
//!
//! * **bench** (default when the first argument is a `--flag`): train FOSS
//!   on the workload's train split, publish a snapshot into a
//!   [`foss_service::PlanDoctor`], hammer it from N worker threads
//!   in-process and print the metrics summary line.
//! * **serve**: the same bootstrap, then expose the doctor over a socket
//!   ([`foss_service::PlanServer`]: `POST /plan`, `GET /metrics`,
//!   `GET /healthz`, `POST /publish`). With `--snapshot <path>` the
//!   process is serving-only: it loads a trained
//!   [`foss_core::PlannerSnapshot`] instead of training. With
//!   `--save-snapshot <path>` it writes the trained snapshot for such a
//!   process to boot from.
//! * **load**: closed-loop load generator against a running `serve`
//!   process — N threads, one in-flight request each — reporting QPS,
//!   p50/p95/p99 round-trip latency, shed counts and the fallback mix.
//!
//! Flag reference lives in [`foss_bench::cli`]. Robustness flags
//! (`--faults`, `--priority-mix`, `--deadline-us`) follow the
//! [`foss_common::faults`] grammar and the service's priority semantics:
//! shed requests are counted, not fatal.

use foss_common::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use foss_bench::cli::{self, BenchArgs, Command, LoadArgs, ServeArgs, SharedArgs};
use foss_bench::load::{fallback_mix_line, summary_line, LoadTally};
use foss_common::{FaultPlan, FossError};
use foss_core::{FossConfig, PlannerSnapshot};
use foss_harness::{Experiment, FossAdapter};
use foss_service::{
    PlanClient, PlanDoctor, PlanOutcome, PlanRequest, PlanServer, Priority, QueryRequest,
    ServiceConfig,
};
use foss_workloads::WorkloadSpec;

fn main() {
    match cli::parse_or_exit() {
        Command::Bench(args) => run_bench(args),
        Command::Serve(args) => run_serve(args),
        Command::Load(args) => run_load(args),
    }
}

/// Exit 2 with a readable message (registry typos, bad snapshots, bind
/// failures — operator mistakes, not bugs).
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("plan-doctor: {msg}");
    std::process::exit(2);
}

/// The fault plan in effect: `--faults` beats `FOSS_FAULTS`, neither means
/// none. An invalid spec exits with the parser's readable message (which
/// lists the valid site names) rather than a panic backtrace.
fn fault_plan(shared: &SharedArgs) -> Option<Arc<FaultPlan>> {
    let parsed = match &shared.faults {
        Some(spec) => FaultPlan::parse(spec, 42).map(Some),
        None => FaultPlan::from_env(),
    };
    match parsed {
        Ok(plan) => plan.map(Arc::new),
        Err(msg) => die(msg),
    }
}

/// Build the experiment for the shared flags (registry lookup: a typo'd
/// `--workload` exits with the valid-name list instead of a backtrace).
fn experiment(shared: &SharedArgs) -> Experiment {
    let spec = WorkloadSpec {
        seed: 42,
        scale: shared.scale,
    };
    Experiment::new(&shared.workload, spec).unwrap_or_else(|e| die(e))
}

/// Train FOSS on the experiment's train split for `rounds` rounds and
/// return the resulting snapshot.
fn train_snapshot(exp: &Experiment, shared: &SharedArgs) -> PlannerSnapshot {
    let mut adapter = FossAdapter::new(exp.foss(FossConfig {
        episodes_per_update: 12,
        seed: 42,
        ..FossConfig::tiny()
    }));
    use foss_baselines::LearnedOptimizer;
    for round in 0..shared.rounds.max(1) {
        adapter
            .train_round(&exp.workload.train)
            .unwrap_or_else(|e| panic!("training round {round} failed: {e}"));
    }
    adapter.snapshot().as_ref().clone()
}

/// The execution tier in effect: `--tier` beats `FOSS_TIER`, neither means
/// the service default (count-and-compile).
fn tier_config(shared: &SharedArgs) -> foss_service::TierConfig {
    let default = foss_service::TierConfig::default();
    foss_service::TierConfig {
        mode: shared
            .tier
            .or_else(foss_service::TierMode::from_env)
            .unwrap_or(default.mode),
        ..default
    }
}

/// Wrap a snapshot in a service front end configured by the shared flags.
fn doctor_for(exp: &Experiment, shared: &SharedArgs, snapshot: PlannerSnapshot) -> PlanDoctor {
    let mut doctor = PlanDoctor::new(
        snapshot,
        exp.executor.clone(),
        ServiceConfig {
            max_in_flight: shared.max_in_flight,
            planning_budget_us: shared.budget_us,
            tier: tier_config(shared),
            ..ServiceConfig::default()
        },
    );
    if let Some(faults) = fault_plan(shared) {
        println!("plan-doctor: chaos mode, fault plan attached");
        doctor = doctor.with_fault_plan(faults);
    }
    doctor
}

fn run_bench(args: BenchArgs) {
    let exp = experiment(&args.shared);
    println!(
        "plan-doctor: workload={} scale={} train={} test={}",
        args.shared.workload,
        args.shared.scale,
        exp.workload.train.len(),
        exp.workload.test.len()
    );

    let snapshot = train_snapshot(&exp, &args.shared);
    let doctor = Arc::new(doctor_for(&exp, &args.shared, snapshot));

    // N worker threads submit the query pool round-robin until `queries`
    // total submissions have completed.
    let pool: Vec<_> = exp.workload.all_queries();
    assert!(!pool.is_empty(), "workload has no queries");
    let per_thread = args.queries.div_ceil(args.threads);
    std::thread::scope(|scope| {
        for t in 0..args.threads {
            let doctor = doctor.clone();
            let pool = &pool;
            let args = &args;
            scope.spawn(move || {
                for k in 0..per_thread {
                    let idx = t * per_thread + k;
                    if idx >= args.queries {
                        break;
                    }
                    let query = pool[idx % pool.len()].clone();
                    let mut req = QueryRequest::new(query);
                    // Deterministic priority assignment: submission index
                    // modulo 100 against the mix percentage, so the same
                    // flags always tag the same requests low.
                    if ((idx % 100) as f64) < args.priority_mix * 100.0 {
                        req = req.with_priority(Priority::Low);
                    }
                    if let Some(d) = args.deadline_us {
                        req = req.with_deadline_us(d);
                    }
                    match doctor.submit(req) {
                        Ok(d) => {
                            if d.fallback {
                                println!("  worker {t}: query {idx} fell back ({:?})", d.reason);
                            }
                        }
                        // Shedding is the service working as designed under
                        // overload, not a harness failure.
                        Err(e @ FossError::Overloaded { .. }) => {
                            println!("  worker {t}: query {idx} shed ({e})");
                        }
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            });
        }
    });

    println!("{}", doctor.metrics().summary_line());
}

fn run_serve(args: ServeArgs) {
    let exp = experiment(&args.shared);
    let snapshot = match &args.snapshot {
        // Serving-only boot: the expert optimizer is a pure function of
        // (workload, seed, scale), so the workload build above rebuilt it
        // and the snapshot file supplies every learned weight.
        Some(path) => {
            PlannerSnapshot::load(path, exp.workload.optimizer.clone()).unwrap_or_else(|e| die(e))
        }
        None => train_snapshot(&exp, &args.shared),
    };
    if let Some(path) = &args.save_snapshot {
        snapshot.save(path).unwrap_or_else(|e| die(e));
        println!("plan-doctor: snapshot saved to {path}");
    }
    let doctor = Arc::new(doctor_for(&exp, &args.shared, snapshot));
    let pool = exp.workload.all_queries();
    let server = PlanServer::start(doctor, pool.clone(), &args.addr).unwrap_or_else(|e| die(e));
    println!(
        "plan-doctor: serving workload={} ({} queries) on http://{}",
        args.shared.workload,
        pool.len(),
        server.addr()
    );
    // Serve until killed; connections are handled on their own threads.
    loop {
        std::thread::park();
    }
}

fn run_load(args: LoadArgs) {
    let client = PlanClient::connect(&args.addr).unwrap_or_else(|e| die(e));
    // Await server readiness: `serve` may still be training when the load
    // generator starts (the CI smoke starts both back-to-back).
    let mut pool_len = None;
    for _ in 0..300 {
        if let Ok(health) = client.healthz() {
            pool_len = health.get("queries").and_then(|q| q.as_usize());
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    let pool_len = pool_len
        .filter(|n| *n > 0)
        .unwrap_or_else(|| die(format!("no healthy server at {} after 60s", args.addr)));
    println!(
        "plan-doctor load: target=http://{} pool={pool_len} threads={} requests={}",
        args.addr, args.threads, args.requests
    );

    // Closed loop: each thread keeps exactly one request in flight,
    // drawing the next global index until the budget is spent.
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let mut total = LoadTally::default();
    let tallies: Vec<LoadTally> = std::thread::scope(|scope| {
        (0..args.threads)
            .map(|_| {
                let next = &next;
                let args = &args;
                scope.spawn(move || {
                    let mut tally = LoadTally::default();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= args.requests {
                            return tally;
                        }
                        let mut req = PlanRequest::for_index(idx % pool_len);
                        let low = ((idx % 100) as f64) < args.priority_mix * 100.0;
                        if low {
                            req.priority = Some(Priority::Low);
                        }
                        req.deadline_us = args.deadline_us;
                        req.planning_budget_us = args.budget_us;
                        let sent = Instant::now();
                        match client.plan(&req) {
                            Ok(PlanOutcome::Decision(reply)) => {
                                tally.latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
                                tally.ok += 1;
                                tally.bump_reason(&reply.reason);
                            }
                            Ok(PlanOutcome::Rejected(rej)) if rej.code == "overloaded" => {
                                if low {
                                    tally.shed_low += 1;
                                } else {
                                    tally.shed_high += 1;
                                }
                            }
                            Ok(PlanOutcome::Rejected(_)) => tally.rejected += 1,
                            Err(_) => tally.transport_errors += 1,
                        }
                    }
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    for tally in tallies {
        total.merge(tally);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    // A full-shed run has an empty latency reservoir; the report prints
    // `n/a` percentiles (never a fake 0) while keeping counts/QPS exact.
    println!("{}", summary_line(args.requests, elapsed_s, &total));
    println!("{}", fallback_mix_line(&mut total));
    if total.ok == 0 {
        die("no request succeeded");
    }
}
