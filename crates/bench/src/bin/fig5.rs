//! Regenerates Fig. 5 (training curves of test speedup vs wall time).

fn main() {
    let cfg = foss_bench::run_config_from_env();
    for wl in foss_workloads::WORKLOAD_NAMES {
        let curves =
            foss_harness::curves::run(wl, &cfg, cfg.baseline_rounds.max(2)).expect("curves");
        println!("{}", foss_harness::curves::render(wl, &curves));
    }
}
