//! Regenerates Table II (design-choice ablations on the JOB workload).

fn main() {
    let cfg = foss_bench::run_config_from_env();
    let rows = foss_harness::ablation::run("joblite", &cfg).expect("ablation");
    println!(
        "{}",
        foss_harness::ablation::render_table2("joblite", &rows)
    );
}
