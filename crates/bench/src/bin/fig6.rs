//! Regenerates Fig. 6 (optimisation-time box plots on the JOB workload).

fn main() {
    let cfg = foss_bench::run_config_from_env();
    let boxes = foss_harness::opt_time::run("joblite", &cfg).expect("opt_time");
    println!("{}", foss_harness::opt_time::render("joblite", &boxes));
}
