//! Regenerates Fig. 4 (relative speedup of FOSS vs other methods).

fn main() {
    let cfg = foss_bench::run_config_from_env();
    eprintln!("running Fig.4 (via Table I) with {cfg:?} ...");
    let tables = foss_harness::table1::run(&cfg).expect("table1 run");
    println!("{}", foss_harness::table1::render_fig4(&tables));
}
