//! Regenerates Fig. 8 (known-best-plan time-savings ranking, 3 runs).

fn main() {
    let cfg = foss_bench::run_config_from_env();
    let series = foss_harness::best_plans::run("joblite", &cfg, 3).expect("best_plans");
    println!("{}", foss_harness::best_plans::render("joblite", &series));
}
