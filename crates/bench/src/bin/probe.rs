use foss_executor::CachingExecutor;
use foss_optimizer::{Icp, ALL_JOIN_METHODS};
use foss_workloads::{joblite, WorkloadSpec};

fn perms(n: usize) -> Vec<Vec<usize>> {
    if n == 1 { return vec![vec![0]]; }
    let mut out = Vec::new();
    fn rec(cur: &mut Vec<usize>, rem: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rem.is_empty() { out.push(cur.clone()); return; }
        for i in 0..rem.len() {
            let v = rem.remove(i);
            cur.push(v);
            rec(cur, rem, out);
            cur.pop();
            rem.insert(i, v);
        }
    }
    rec(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

fn main() {
    let wl = joblite::build(WorkloadSpec { seed: 4, scale: 0.15 }).unwrap();
    let exec = CachingExecutor::new(wl.db.clone(), *wl.optimizer.cost_model());
    let mut ratios = Vec::new();
    for q in wl.train.iter().filter(|q| (3..=4).contains(&q.relation_count())).take(12) {
        let expert = wl.optimizer.optimize(q).unwrap();
        let orig = exec.execute(q, &expert, None).unwrap().latency;
        let n = q.relation_count();
        let mut best = orig;
        for order in perms(n) {
            // methods: try all combos for n<=4 → 3^(n-1) ≤ 27
            let m = n - 1;
            for code in 0..3usize.pow(m as u32) {
                let mut methods = Vec::new();
                let mut c = code;
                for _ in 0..m { methods.push(ALL_JOIN_METHODS[c % 3]); c /= 3; }
                let icp = Icp::new(order.clone(), methods).unwrap();
                let plan = wl.optimizer.optimize_with_hint(q, &icp).unwrap();
                if let Ok(o) = exec.execute(q, &plan, Some(best)) {
                    if o.latency < best { best = o.latency; }
                }
            }
        }
        ratios.push(orig / best);
        println!("q{} n={} expert={orig:.0} optimal={best:.0} ratio={:.2}", q.id.0, n, orig / best);
    }
    let gm: f64 = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!("geo-mean expert/optimal = {:.2}", gm.exp());
}
