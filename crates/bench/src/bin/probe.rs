//! Substrate probes.
//!
//! Two modes:
//!
//! * **Bench mode** (`--out <path>`): run the shared micro-benchmark suite
//!   ([`foss_bench::micro_suite`]) and write the `BENCH_<tag>.json` summary
//!   directly — no more hand-assembling the perf trajectory from bench
//!   stdout. `--quick` shrinks sample counts for CI smoke runs;
//!   `--baseline <path>` + `--max-regress <factor>` turn the run into a
//!   regression gate (non-zero exit when a guarded benchmark's median
//!   exceeds `factor ×` its baseline median).
//! * **Headroom mode** (no `--out`): exhaustively search small queries for
//!   the expert-vs-optimal latency headroom that motivates plan doctoring,
//!   on any registered workload (`--workload <name>`, default `joblite`).
//!
//! Examples:
//!
//! ```text
//! cargo run --release --bin probe -- --out BENCH_pr2.json
//! cargo run --release --bin probe -- --quick --out /tmp/ci.json \
//!     --baseline BENCH_pr2.json --max-regress 2.0
//! cargo run --release --bin probe -- --workload dsblite
//! ```

use criterion::Criterion;
use foss_bench::{micro_suite, parse_bench_json};
use foss_executor::CachingExecutor;
use foss_optimizer::{Icp, ALL_JOIN_METHODS};
use foss_workloads::{Workload, WorkloadSpec};
use std::time::Duration;

/// Benchmarks the regression gate guards: the FOSS serving hot path (AAM
/// inference and end-to-end PlanDoctor submits) plus the chunked executor
/// operators — including the heavy-tail skewed hash join, its
/// morsel-driven parallel twins and the tier-2 fused pipeline — and the
/// bounded-cache eviction path.
const GUARDED: &[&str] = &[
    "aam/pair_inference",
    "exec/scan_filter",
    "exec/parallel_scan",
    "exec/hash_join",
    "exec/fused_hot_path",
    "exec/hash_join_skewed",
    "exec/hash_join_partitioned",
    "cache/eviction",
    "service/submit_throughput",
];

struct BenchArgs {
    out: String,
    quick: bool,
    baseline: Option<String>,
    max_regress: f64,
}

enum Mode {
    Bench(BenchArgs),
    Headroom { workload: String },
}

fn parse_args() -> Mode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = None;
    let mut quick = false;
    let mut baseline = None;
    let mut max_regress = 2.0;
    let mut workload: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                out = Some(argv.get(i + 1).expect("--out needs a path").clone());
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--baseline" => {
                baseline = Some(argv.get(i + 1).expect("--baseline needs a path").clone());
                i += 2;
            }
            "--max-regress" => {
                max_regress = argv
                    .get(i + 1)
                    .expect("--max-regress needs a factor")
                    .parse()
                    .expect("--max-regress must be a number");
                i += 2;
            }
            "--workload" => {
                workload = Some(argv.get(i + 1).expect("--workload needs a name").clone());
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    if out.is_none() && (quick || baseline.is_some()) {
        panic!("--quick/--baseline/--max-regress require --out <path> (bench mode)");
    }
    if out.is_some() && workload.is_some() {
        panic!("--workload selects the headroom workload; it has no effect with --out (the bench suite's workloads are fixed)");
    }
    match out {
        Some(out) => Mode::Bench(BenchArgs {
            out,
            quick,
            baseline,
            max_regress,
        }),
        None => Mode::Headroom {
            workload: workload.unwrap_or_else(|| "joblite".to_string()),
        },
    }
}

fn bench_mode(args: BenchArgs) {
    let mut c = if args.quick {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(500))
            .warm_up_time(Duration::from_millis(100))
    } else {
        Criterion::default()
            .sample_size(20)
            .measurement_time(Duration::from_secs(3))
            .warm_up_time(Duration::from_millis(500))
    };
    micro_suite(&mut c);
    c.write_json(&args.out).expect("write bench summary");
    println!("wrote {}", args.out);

    let Some(baseline_path) = args.baseline else {
        return;
    };
    let text = std::fs::read_to_string(&baseline_path).expect("read baseline");
    let baseline = parse_bench_json(&text);
    let mut failed = false;
    for r in c.results() {
        if !GUARDED.contains(&r.name.as_str()) {
            continue;
        }
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == &r.name) else {
            println!("{:<32} not in baseline {baseline_path}, skipping", r.name);
            continue;
        };
        let now = r.median_ns();
        let factor = now / base;
        let verdict = if factor > args.max_regress {
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{:<32} {now:>12.1} ns vs baseline {base:>12.1} ns ({factor:.2}x) {verdict}",
            r.name
        );
        failed |= factor > args.max_regress;
    }
    if failed {
        eprintln!(
            "perf regression gate failed (>{:.1}x baseline)",
            args.max_regress
        );
        std::process::exit(1);
    }
}

fn perms(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    fn rec(cur: &mut Vec<usize>, rem: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rem.is_empty() {
            out.push(cur.clone());
            return;
        }
        for i in 0..rem.len() {
            let v = rem.remove(i);
            cur.push(v);
            rec(cur, rem, out);
            cur.pop();
            rem.insert(i, v);
        }
    }
    rec(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

fn headroom_mode(workload: &str) {
    // Registry lookup: a typo exits with the list of valid names.
    let wl = Workload::by_name(
        workload,
        WorkloadSpec {
            seed: 4,
            scale: 0.15,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let exec = CachingExecutor::new(wl.db.clone(), *wl.optimizer.cost_model());
    let mut ratios = Vec::new();
    for q in wl
        .train
        .iter()
        .filter(|q| (3..=4).contains(&q.relation_count()))
        .take(12)
    {
        let expert = wl.optimizer.optimize(q).unwrap();
        let orig = exec.execute(q, &expert, None).unwrap().latency;
        let n = q.relation_count();
        let mut best = orig;
        for order in perms(n) {
            // methods: try all combos for n<=4 → 3^(n-1) ≤ 27
            let m = n - 1;
            for code in 0..3usize.pow(m as u32) {
                let mut methods = Vec::new();
                let mut c = code;
                for _ in 0..m {
                    methods.push(ALL_JOIN_METHODS[c % 3]);
                    c /= 3;
                }
                let icp = Icp::new(order.clone(), methods).unwrap();
                let plan = wl.optimizer.optimize_with_hint(q, &icp).unwrap();
                if let Ok(o) = exec.execute(q, &plan, Some(best)) {
                    if o.latency < best {
                        best = o.latency;
                    }
                }
            }
        }
        ratios.push(orig / best);
        println!(
            "q{} n={} expert={orig:.0} optimal={best:.0} ratio={:.2}",
            q.id.0,
            n,
            orig / best
        );
    }
    if ratios.is_empty() {
        println!("no 3-4-relation train queries in `{workload}`; nothing to probe");
        return;
    }
    let gm: f64 = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!("geo-mean expert/optimal = {:.2}", gm.exp());
}

fn main() {
    match parse_args() {
        Mode::Bench(args) => bench_mode(args),
        Mode::Headroom { workload } => headroom_mode(&workload),
    }
}
