//! Regenerates Fig. 9 (GMRL training curves per configuration).

fn main() {
    let cfg = foss_bench::run_config_from_env();
    let rows = foss_harness::ablation::run("joblite", &cfg).expect("ablation");
    println!("{}", foss_harness::ablation::render_fig9("joblite", &rows));
}
