//! Regenerates Table I (and prints the render used in EXPERIMENTS.md).

fn main() {
    let cfg = foss_bench::run_config_from_env();
    eprintln!("running Table I with {cfg:?} ...");
    let tables = foss_harness::table1::run(&cfg).expect("table1 run");
    println!("{}", foss_harness::table1::render(&tables));
}
