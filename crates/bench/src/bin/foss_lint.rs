//! `foss-lint` — repo static checks (see [`foss_bench::lint`] for the
//! rules). Prints `file:line: [rule] message` per finding and exits 2 when
//! anything is found, matching the CLI error contract of `plan-doctor`.
//!
//! ```text
//! foss-lint [--root DIR]
//! ```
//!
//! `--root` defaults to the current directory and must be the repo root
//! (the directory containing `crates/`).

use std::path::PathBuf;

use foss_bench::lint;

struct Args {
    root: PathBuf,
}

/// Hand-rolled `--flag value` parsing, same vocabulary rules as
/// `foss_bench::cli`: every flag takes exactly one value, unknown flags are
/// an error.
fn parse(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag {flag} expects a value"))?;
                args.root = PathBuf::from(value);
            }
            other => return Err(format!("unknown flag `{other}` (expected --root DIR)")),
        }
    }
    if !args.root.join("crates").is_dir() {
        return Err(format!(
            "{} does not look like the repo root (no crates/ directory)",
            args.root.display()
        ));
    }
    Ok(args)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse(&argv).unwrap_or_else(|msg| {
        eprintln!("foss-lint: {msg}");
        std::process::exit(2);
    });
    match lint::run(&args.root) {
        Ok(findings) if findings.is_empty() => {
            println!("foss-lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("foss-lint: {} finding(s)", findings.len());
            std::process::exit(2);
        }
        Err(msg) => {
            eprintln!("foss-lint: {msg}");
            std::process::exit(2);
        }
    }
}
