//! Tallying and reporting for the `plan-doctor load` generator.
//!
//! Lives in the library (rather than the binary) so the report format is
//! unit- and integration-testable; the binary only drives sockets and
//! prints what [`summary_line`] / [`fallback_mix_line`] render.
//!
//! The percentile columns print `n/a` when the latency reservoir is empty
//! — a full-shed run completes zero requests, and printing `p50_us=0`
//! there reads as "zero latency" to a CI grep, which is the opposite of
//! what happened. QPS and shed counts stay exact either way.

/// Per-thread tallies folded into the load report.
#[derive(Debug, Default)]
pub struct LoadTally {
    /// Round-trip latencies of successful requests (µs).
    pub latencies_us: Vec<f64>,
    /// Requests answered with a decision.
    pub ok: u64,
    /// Low-priority requests shed by admission control.
    pub shed_low: u64,
    /// High-priority requests shed by admission control.
    pub shed_high: u64,
    /// Non-overload rejections (unknown query, malformed, …).
    pub rejected: u64,
    /// Connection/transport failures.
    pub transport_errors: u64,
    /// (reason string, count) — merged across threads at the end.
    pub fallback_mix: Vec<(String, u64)>,
}

impl LoadTally {
    /// Count one served decision under its fallback-reason label.
    pub fn bump_reason(&mut self, reason: &str) {
        match self.fallback_mix.iter_mut().find(|(r, _)| r == reason) {
            Some((_, n)) => *n += 1,
            None => self.fallback_mix.push((reason.to_string(), 1)),
        }
    }

    /// Fold another thread's tally into this one.
    pub fn merge(&mut self, other: LoadTally) {
        self.latencies_us.extend(other.latencies_us);
        self.ok += other.ok;
        self.shed_low += other.shed_low;
        self.shed_high += other.shed_high;
        self.rejected += other.rejected;
        self.transport_errors += other.transport_errors;
        for (reason, n) in other.fallback_mix {
            match self.fallback_mix.iter_mut().find(|(r, _)| *r == reason) {
                Some((_, total)) => *total += n,
                None => self.fallback_mix.push((reason, n)),
            }
        }
    }
}

/// A percentile column: the value to zero decimals, or `n/a` when there
/// are no samples to take a percentile of.
pub fn percentile_display(samples: &[f64], p: f64) -> String {
    match foss_common::percentile(samples, p) {
        Some(v) => format!("{v:.0}"),
        None => "n/a".to_string(),
    }
}

/// The one-line load report (the binary prints this; tests assert on it).
/// Counts and QPS are exact even when every request was shed.
pub fn summary_line(requests: usize, elapsed_s: f64, total: &LoadTally) -> String {
    let elapsed_s = elapsed_s.max(1e-9);
    format!(
        "plan-doctor load: requests={} ok={} shed={}/{} rejected={} transport_errors={} \
         qps={:.1} p50_us={} p95_us={} p99_us={}",
        requests,
        total.ok,
        total.shed_low,
        total.shed_high,
        total.rejected,
        total.transport_errors,
        total.ok as f64 / elapsed_s,
        percentile_display(&total.latencies_us, 50.0),
        percentile_display(&total.latencies_us, 95.0),
        percentile_display(&total.latencies_us, 99.0),
    )
}

/// The fallback-mix line, most frequent reason first.
pub fn fallback_mix_line(total: &mut LoadTally) -> String {
    total
        .fallback_mix
        .sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let mix = total
        .fallback_mix
        .iter()
        .map(|(r, n)| format!("{r}={n}"))
        .collect::<Vec<_>>()
        .join(" ");
    format!("plan-doctor load: fallback mix: {mix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reservoir_prints_na_not_zero() {
        let total = LoadTally {
            shed_low: 7,
            shed_high: 1,
            ..LoadTally::default()
        };
        let line = summary_line(8, 2.0, &total);
        for needle in [
            "requests=8",
            "ok=0",
            "shed=7/1",
            "qps=0.0",
            "p50_us=n/a",
            "p95_us=n/a",
            "p99_us=n/a",
        ] {
            assert!(line.contains(needle), "`{line}` lacks `{needle}`");
        }
        assert!(
            !line.contains("p50_us=0"),
            "an empty reservoir must never read as zero latency: {line}"
        );
    }

    #[test]
    fn populated_reservoir_prints_exact_percentiles_and_qps() {
        let mut total = LoadTally::default();
        for i in 1..=100 {
            total.latencies_us.push(i as f64);
        }
        total.ok = 100;
        let line = summary_line(100, 10.0, &total);
        assert!(line.contains("qps=10.0"), "{line}");
        assert!(line.contains("p50_us=50"), "{line}");
        assert!(!line.contains("n/a"), "{line}");
    }

    #[test]
    fn merge_and_mix_accumulate_across_threads() {
        let mut a = LoadTally::default();
        a.bump_reason("none");
        a.bump_reason("none");
        a.ok = 2;
        a.latencies_us.extend([10.0, 20.0]);
        let mut b = LoadTally::default();
        b.bump_reason("exec_timeout");
        b.bump_reason("none");
        b.ok = 2;
        b.shed_low = 3;
        a.merge(b);
        assert_eq!(a.ok, 4);
        assert_eq!(a.shed_low, 3);
        assert_eq!(a.latencies_us.len(), 2);
        let line = fallback_mix_line(&mut a);
        assert_eq!(
            line,
            "plan-doctor load: fallback mix: none=3 exec_timeout=1"
        );
    }
}
