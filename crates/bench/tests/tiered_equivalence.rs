//! Differential tests: the tier-2 fused engine is bit-identical to the
//! interpreter across all five workloads.
//!
//! For every held-out query of every workload we execute three ways —
//! fused pipeline (when the plan compiles), chunked interpreter, scalar
//! interpreter — and require identical tuples, tuple order, row counts,
//! and bit-identical simulated latency ([`ExecOutcome`] equality compares
//! the `f64` directly). Timeout accounting must agree too: under a
//! truncated budget all engines must report the same `spent`/`budget`.
//!
//! Two plans per query are tested: the expert's pick (which may decline
//! to compile — merge/index-NL shapes fall back to the interpreter) and a
//! forced left-deep all-hash plan, which the tier must always compile.

use foss_executor::{ExecMode, Executor, FusedPipeline};
use foss_optimizer::{Icp, JoinMethod, PhysicalPlan};
use foss_query::Query;
use foss_workloads::{Workload, WorkloadSpec, WORKLOAD_NAMES};

const SCALE: f64 = 0.05;
const SEED: u64 = 1007;

/// Budget fractions for the truncated-budget (timeout accounting) runs.
const BUDGET_FRACS: [f64; 3] = [0.15, 0.55, 0.95];

struct Tallies {
    compiled: usize,
    declined: usize,
}

/// Run one (query, plan) through all three engines and assert agreement.
/// Returns whether the plan compiled to a fused pipeline.
fn check_plan(wl: &Workload, query: &Query, plan: &PhysicalPlan, label: &str) -> bool {
    let cost = *wl.optimizer.cost_model();
    let chunked = Executor::with_mode(&wl.db, cost, ExecMode::Chunked);
    let scalar = Executor::with_mode(&wl.db, cost, ExecMode::Scalar);

    let (oc, rc) = chunked.execute_rows(query, plan, None).unwrap();
    let (os, rs) = scalar.execute_rows(query, plan, None).unwrap();
    assert_eq!(oc, os, "chunked vs scalar outcome diverged: {label}");
    assert_eq!(rc, rs, "chunked vs scalar tuples diverged: {label}");

    let Some(fused) = FusedPipeline::compile(query, plan) else {
        return false;
    };

    // Full runs: count mode and row mode, against both interpreters.
    let (of, rf) = fused.execute_rows(&wl.db, cost, query, None).unwrap();
    assert_eq!(oc, of, "fused outcome diverged: {label}");
    assert_eq!(
        oc.latency.to_bits(),
        of.latency.to_bits(),
        "fused latency not bit-identical: {label}"
    );
    assert_eq!(rc, rf, "fused tuples diverged: {label}");
    let count_only = fused.execute(&wl.db, cost, query, None).unwrap();
    assert_eq!(
        oc, count_only,
        "fused count mode diverged from interpreter: {label}"
    );

    // Truncated budgets: identical success/timeout decisions and, on
    // timeout, identical spent/budget accounting — across all engines.
    for frac in BUDGET_FRACS {
        let budget = Some(oc.latency * frac);
        let i = chunked.execute(query, plan, budget);
        let s = scalar.execute(query, plan, budget);
        let f = fused.execute(&wl.db, cost, query, budget);
        let fr = fused
            .execute_rows(&wl.db, cost, query, budget)
            .map(|(out, _)| out);
        assert_eq!(
            format!("{i:?}"),
            format!("{f:?}"),
            "timeout accounting diverged (chunked vs fused) at frac={frac}: {label}"
        );
        assert_eq!(
            format!("{i:?}"),
            format!("{s:?}"),
            "timeout accounting diverged (chunked vs scalar) at frac={frac}: {label}"
        );
        assert_eq!(
            format!("{f:?}"),
            format!("{fr:?}"),
            "fused count vs row mode diverged at frac={frac}: {label}"
        );
    }
    true
}

/// A left-deep all-hash hint over relations in textual order — the shape
/// the tier-2 compiler must always accept.
fn all_hash_plan(wl: &Workload, query: &Query) -> Option<PhysicalPlan> {
    let n = query.relation_count();
    if n < 2 {
        return None;
    }
    let icp = Icp::new((0..n).collect(), vec![JoinMethod::Hash; n - 1]).ok()?;
    wl.optimizer.optimize_with_hint(query, &icp).ok()
}

#[test]
fn fused_matches_interpreters_on_all_five_workloads() {
    let mut totals = Tallies {
        compiled: 0,
        declined: 0,
    };
    for name in WORKLOAD_NAMES {
        let wl = Workload::by_name(
            name,
            WorkloadSpec {
                seed: SEED,
                scale: SCALE,
            },
        )
        .unwrap();
        let mut compiled_here = 0usize;
        for query in &wl.test {
            let expert = wl.optimizer.optimize(query).unwrap();
            let label = format!("{name} q{:?} expert", query.id);
            if check_plan(&wl, query, &expert, &label) {
                compiled_here += 1;
                totals.compiled += 1;
            } else {
                totals.declined += 1;
            }
            if let Some(forced) = all_hash_plan(&wl, query) {
                let label = format!("{name} q{:?} forced-hash", query.id);
                assert!(
                    check_plan(&wl, query, &forced, &label),
                    "forced left-deep all-hash plan must compile: {label}"
                );
                compiled_here += 1;
                totals.compiled += 1;
            }
        }
        assert!(
            compiled_here > 0,
            "{name}: no plan compiled — the tier never engaged"
        );
    }
    // The expert mixes join methods, so the graceful-decline path must
    // have been exercised somewhere across the suite.
    assert!(
        totals.declined > 0,
        "every expert plan compiled — unsupported-shape fallback untested"
    );
    assert!(totals.compiled >= 10, "suspiciously few compiled plans");
}

/// Template instances (same template, different constants) share one plan
/// shape: the tier cell can reuse a pipeline compiled for a sibling.
#[test]
fn template_instances_share_a_shape_key() {
    let wl = Workload::by_name(
        "tpcdslite",
        WorkloadSpec {
            seed: SEED,
            scale: SCALE,
        },
    )
    .unwrap();
    let mut shared = 0usize;
    let queries = wl.all_queries();
    'outer: for (i, a) in queries.iter().enumerate() {
        for b in queries.iter().skip(i + 1) {
            if shared >= 20 {
                break 'outer;
            }
            let (pa, pb) = match (all_hash_plan(&wl, a), all_hash_plan(&wl, b)) {
                (Some(pa), Some(pb)) => (pa, pb),
                _ => continue,
            };
            if pa.shape_key(a) == pb.shape_key(b) {
                shared += 1;
                // Same shape ⇒ the pipeline compiled for one must run the
                // other bit-identically (constants are read per-execution).
                let fused = FusedPipeline::compile(a, &pa).unwrap();
                let cost = *wl.optimizer.cost_model();
                let via_sibling = fused.execute(&wl.db, cost, b, None).unwrap();
                let direct = Executor::with_mode(&wl.db, cost, ExecMode::Chunked)
                    .execute(b, &pb, None)
                    .unwrap();
                assert_eq!(via_sibling, direct, "shared-shape reuse diverged");
            }
        }
    }
    assert!(
        shared > 0,
        "no two workload queries shared a plan shape — template reuse untested"
    );
}
