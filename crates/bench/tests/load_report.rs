//! Regression test for the `plan-doctor load` report under full shed.
//!
//! With `--max-in-flight 1` and the single permit pinned by a slow
//! high-priority request, every low-priority request is shed and the
//! latency reservoir stays empty. The report used to print `p50_us=0`
//! (an `unwrap_or(0.0)` on the percentile) — zero latency is the exact
//! opposite of what happened. It must print `n/a` while keeping the
//! shed counts and QPS exact.

use std::sync::Arc;
use std::time::Instant;

use foss_bench::load::{fallback_mix_line, summary_line, LoadTally};
use foss_common::{FaultPlan, FaultSite};
use foss_core::envs::tests_support::TestWorld;
use foss_core::{Foss, FossConfig};
use foss_executor::CachingExecutor;
use foss_service::{
    PlanDoctor, PlanOutcome, PlanRequest, PlanServer, Priority, QueryRequest, ServiceConfig,
};

/// How long the pinned high-priority request stalls in the executor (µs).
/// Generous: the shed round-trips it must outlast are sub-millisecond.
const STALL_US: f64 = 2_000_000.0;

#[test]
fn full_shed_run_reports_na_percentiles_and_exact_shed_counts() {
    let seed = 71;
    let world = TestWorld::new(seed);
    let row_counts: Vec<u64> = world.db.stats().iter().map(|s| s.row_count).collect();

    // Train on a clean executor so only serving feels the stall.
    let clean = Arc::new(CachingExecutor::new(
        world.db.clone(),
        *world.opt.cost_model(),
    ));
    let mut foss = Foss::new(
        Arc::new(world.opt.clone()),
        clean,
        3,
        row_counts,
        FossConfig {
            episodes_per_update: 6,
            seed,
            ..FossConfig::tiny()
        },
    );
    foss.train(std::slice::from_ref(&world.query), 1).unwrap();

    let slow = Arc::new(
        CachingExecutor::new(world.db.clone(), *world.opt.cost_model()).with_fault_plan(Arc::new(
            FaultPlan::builder(seed)
                .fault_param(FaultSite::ExecSlow, 1.0, STALL_US)
                .build(),
        )),
    );
    let doctor = Arc::new(PlanDoctor::new(
        foss.snapshot(),
        slow,
        ServiceConfig {
            max_in_flight: 1,
            ..ServiceConfig::default()
        },
    ));
    let server =
        PlanServer::start(doctor.clone(), vec![world.query.clone()], "127.0.0.1:0").unwrap();
    let client = server.client();

    // Pin the only permit with a high-priority request that stalls in the
    // executor; wait until it is provably in flight.
    let pinned = {
        let doctor = doctor.clone();
        let query = world.query.clone();
        std::thread::spawn(move || doctor.submit(QueryRequest::new(query)))
    };
    let t0 = Instant::now();
    while doctor.metrics().in_flight_high_water < 1 {
        assert!(
            t0.elapsed().as_secs_f64() < 30.0,
            "pinned request never acquired the gate"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // The load-generator loop from `plan-doctor load`, verbatim tallying.
    let requests = 6;
    let t0 = Instant::now();
    let mut tally = LoadTally::default();
    for idx in 0..requests {
        let mut req = PlanRequest::for_index(0);
        req.priority = Some(Priority::Low);
        let sent = Instant::now();
        match client.plan(&req).unwrap() {
            PlanOutcome::Decision(reply) => {
                tally.latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
                tally.ok += 1;
                tally.bump_reason(&reply.reason);
            }
            PlanOutcome::Rejected(rej) if rej.code == "overloaded" => tally.shed_low += 1,
            PlanOutcome::Rejected(rej) => panic!("request {idx}: unexpected rejection {rej:?}"),
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    // All six were shed by admission control, none reached the executor.
    assert_eq!(tally.shed_low, requests as u64);
    assert_eq!(tally.ok, 0);
    assert!(tally.latencies_us.is_empty());

    let line = summary_line(requests, elapsed_s, &tally);
    for needle in [
        "requests=6",
        "ok=0",
        "shed=6/0",
        "rejected=0",
        "transport_errors=0",
        "qps=0.0",
        "p50_us=n/a",
        "p95_us=n/a",
        "p99_us=n/a",
    ] {
        assert!(line.contains(needle), "`{line}` lacks `{needle}`");
    }
    assert_eq!(
        fallback_mix_line(&mut tally),
        "plan-doctor load: fallback mix: "
    );

    // The pinned request eventually completes normally.
    pinned.join().unwrap().unwrap();
    assert_eq!(doctor.metrics().shed_low, requests as u64);
}
