//! Morsel-driven parallel operators for the chunked engine.
//!
//! Modeled on morsel-driven parallelism (Leis et al., HyPer): workers pull
//! [`CHUNK_SIZE`]-aligned morsels off a shared atomic queue
//! ([`foss_common::run_morsels`], which extends `run_sharded`'s
//! shard-boundary discipline), so morsel boundaries depend only on the input
//! size — never on the host's core count — and the merge consumes worker
//! output **in morsel order**.
//!
//! # Bit-identical metering via charge replay
//!
//! The sequential chunked engine accrues its work-unit charges in one fixed
//! floating-point sequence (per chunk: a probe/pair charge, then
//! [`CHUNK_SIZE`]-quantum output charges, then a flush). Workers here never
//! touch the meter; they record *per-chunk emit counts* alongside their
//! output buffers, and the merge replays the canonical charge sequence
//! against the real meter. Since morsel boundaries are multiples of
//! [`CHUNK_SIZE`], the replayed sequence is operation-for-operation the one
//! the sequential engine would have produced — latency and timeout
//! accounting are bit-identical for every worker count.
//!
//! # Skew-aware partitioned hash joins
//!
//! The build side is radix-partitioned on the key's hash (high bits, so the
//! per-partition hash maps keep their low bucket bits diverse) and built in
//! parallel per partition. Keys whose candidate lists cross the hot-key
//! threshold ([`ParallelConfig::hot_key_fraction`] / `hot_key_min`) are
//! moved wholesale into a broadcast table probed first, so a heavy-tail key
//! (the `skewstress` workload plants keys owning ~40% of a fact table) does
//! not serialise one partition. Candidate lists keep the build order, so
//! probe output is byte-identical to the single-map sequential build.
//!
//! # Bounded work on catastrophic plans
//!
//! A perturbed plan can have output charges that exceed any budget by orders
//! of magnitude. The parallel hash probe keeps a shared emitted counter and
//! aborts once the output charges alone guarantee a timeout — the caller
//! falls back to the sequential probe, which reproduces the exact metered
//! timeout after budget-bounded work. The nested-loop path is cheaper to
//! bound: its per-chunk pair charges are known up front, so only chunks the
//! replay can actually reach are executed (f64 addition of non-negative
//! charges is monotone, making the pair-only prefix a true lower bound on
//! the replayed spend).

use foss_common::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use foss_common::{fx_hash_one, run_morsels, FxHashMap, Result};
use foss_query::{JoinEdge, Predicate, Query};

use crate::exec::{
    filter_chunk, refine_selection, Executor, ParallelConfig, RowSet, WorkMeter, CHUNK_SIZE,
};

/// Per-morsel worker output: the emitted tuples plus the emit count of every
/// chunk inside the morsel (the replay's unit of account).
struct MorselOut {
    chunk_emits: Vec<u32>,
    data: Vec<u32>,
}

/// Replay the output charges the sequential engine makes for one chunk that
/// emitted `count` tuples: `BatchCharge` fires a `CHUNK_SIZE`-quantum charge
/// each time a full chunk of units accumulates, then flushes the remainder
/// (including a zero-amount flush) at the chunk boundary.
fn replay_emits(meter: &mut WorkMeter, count: usize, unit: f64) -> Result<()> {
    for _ in 0..count / CHUNK_SIZE {
        meter.charge(CHUNK_SIZE as f64 * unit)?;
    }
    meter.charge((count % CHUNK_SIZE) as f64 * unit)
}

/// Morsel-parallel predicate evaluation for a sequential scan. The scan's
/// whole charge is applied before filtering, so there is nothing to replay:
/// chunk outputs are position-independent row ids that concatenate in chunk
/// order to exactly the sequential output.
pub(crate) fn par_filter_scan(
    par: ParallelConfig,
    preds: &[Predicate],
    cols: &[&[i64]],
    n: usize,
) -> Vec<u32> {
    let morsel_rows = par.morsel_rows();
    let count = n.div_ceil(morsel_rows);
    let parts = run_morsels(par.workers, count, |m| {
        let start = m * morsel_rows;
        let end = ((m + 1) * morsel_rows).min(n);
        let mut out = Vec::new();
        let mut sel: Vec<u32> = Vec::with_capacity(CHUNK_SIZE);
        for cstart in (start..end).step_by(CHUNK_SIZE) {
            let cend = (cstart + CHUNK_SIZE).min(end);
            filter_chunk(&preds[0], cols[0], cstart, cend, &mut sel);
            for (pr, col) in preds.iter().zip(cols).skip(1) {
                refine_selection(pr, col, &mut sel);
            }
            out.extend_from_slice(&sel);
        }
        out
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend_from_slice(&p);
    }
    out
}

/// The partitioned build side of a parallel hash join: a broadcast table for
/// hot keys plus hash-partitioned tables for the rest. A key lives in
/// exactly one of the two, and its candidate list preserves build order, so
/// lookups return byte-identical results to a single sequential map.
pub(crate) struct JoinTable {
    hot: FxHashMap<i64, Vec<u32>>,
    parts: Vec<FxHashMap<i64, Vec<u32>>>,
    mask: usize,
}

impl JoinTable {
    #[inline]
    fn partition_of(&self, key: i64) -> usize {
        // High hash bits select the partition so the per-partition maps (which
        // bucket on the low bits) don't degenerate into collision chains.
        ((fx_hash_one(&key) >> 32) as usize) & self.mask
    }

    #[inline]
    fn get(&self, key: i64) -> Option<&Vec<u32>> {
        if !self.hot.is_empty() {
            if let Some(v) = self.hot.get(&key) {
                return Some(v);
            }
        }
        self.parts[self.partition_of(key)].get(&key)
    }

    /// Number of broadcast (replicated) hot keys — observability for the
    /// skew tests.
    #[cfg(test)]
    pub(crate) fn hot_keys(&self) -> usize {
        self.hot.len()
    }
}

/// Partition `rows` (build-side row ids whose keys are `icol[row]`) and
/// build the per-partition maps in parallel, then pull keys above the
/// hot-key threshold into the broadcast table.
pub(crate) fn build_partitioned(rows: &[u32], icol: &[i64], par: ParallelConfig) -> JoinTable {
    let n = rows.len();
    // Partition count from the build size alone (never host cores).
    let pcount = (n / 4096).clamp(1, 64).next_power_of_two();
    let mask = pcount - 1;
    let part_of = |key: i64| ((fx_hash_one(&key) >> 32) as usize) & mask;

    // Pass 1: morsel-parallel scatter into per-partition row lists. The
    // morsel-ordered concat keeps every partition's rows in build order.
    let morsel_rows = par.morsel_rows();
    let mcount = n.div_ceil(morsel_rows);
    let scattered = run_morsels(par.workers, mcount, |m| {
        let start = m * morsel_rows;
        let end = ((m + 1) * morsel_rows).min(n);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); pcount];
        for &row in &rows[start..end] {
            buckets[part_of(icol[row as usize])].push(row);
        }
        buckets
    });
    let mut part_rows: Vec<Vec<u32>> = vec![Vec::new(); pcount];
    for buckets in &scattered {
        for (pi, bucket) in buckets.iter().enumerate() {
            part_rows[pi].extend_from_slice(bucket);
        }
    }

    // Pass 2: per-partition parallel build (each key's candidates end up in
    // global build order because pass 1 preserved it).
    let mut parts = run_morsels(par.workers, pcount, |pi| {
        let mut map: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
        for &row in &part_rows[pi] {
            map.entry(icol[row as usize]).or_default().push(row);
        }
        map
    });

    // Hot-key extraction: a key's in-partition count is its global count, so
    // the threshold is exact. Moving the Vec wholesale keeps candidate order.
    let threshold = ((n as f64 * par.hot_key_fraction).ceil() as usize)
        .max(par.hot_key_min)
        .max(1);
    let mut hot: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
    for map in &mut parts {
        let hot_keys: Vec<i64> = map
            .iter()
            .filter(|(_, v)| v.len() >= threshold)
            .map(|(&k, _)| k)
            .collect();
        for k in hot_keys {
            let v = map.remove(&k).expect("hot key vanished from partition");
            hot.insert(k, v);
        }
    }
    JoinTable { hot, parts, mask }
}

/// Morsel-parallel hash-join probe. Returns:
///
/// * `Ok(None)` — declined: input below two morsels, or the emitted-output
///   charges alone already guarantee a timeout (the caller's sequential
///   probe reproduces the exact metered behaviour with bounded work);
/// * `Ok(Some(data))` — the joined tuples, with the meter advanced through
///   the replayed charge sequence;
/// * `Err(Timeout)` — the replay crossed the budget exactly where the
///   sequential engine would have.
pub(crate) fn try_hash_join(
    exec: &Executor<'_>,
    query: &Query,
    outer: &RowSet,
    inner: &RowSet,
    edges: &[JoinEdge],
    meter: &mut WorkMeter,
) -> Result<Option<Vec<u32>>> {
    let par = exec.par;
    let n = outer.len();
    if !exec.par_eligible(n) {
        return Ok(None);
    }
    let p = exec.cost.params;
    let key = edges[0];
    let inner_rel = inner.rels[0];
    let icol = exec.column_slice(query, inner_rel, key.right_column);
    let table = build_partitioned(&inner.data, icol, par);
    let lcol = exec.column_slice(query, key.left, key.left_column);
    let extra = exec.extra_edge_columns(query, outer, inner_rel, edges);
    let stride = outer.stride();
    let lslot = outer.slot_of(key.left);

    // Certain-timeout guard: `base + emits * unit` is (approximately) a
    // lower bound on the final spend; once it clears the budget with margin,
    // the outcome is a timeout and materialising more output is wasted work.
    let base = meter.spent;
    let cutoff = if meter.budget.is_finite() {
        Some(meter.budget * 1.05 + 8.0 * CHUNK_SIZE as f64 * p.output_tuple.abs().max(1.0))
    } else {
        None
    };
    let emitted = AtomicU64::new(0);
    let abort = AtomicBool::new(false);
    let note_emits = |local: u64| {
        if local == 0 {
            return;
        }
        let total = emitted.fetch_add(local, Ordering::Relaxed) + local;
        if let Some(c) = cutoff {
            if base + total as f64 * p.output_tuple > c {
                abort.store(true, Ordering::Relaxed);
            }
        }
    };

    let morsel_rows = par.morsel_rows();
    let mcount = n.div_ceil(morsel_rows);
    let parts = run_morsels(par.workers, mcount, |m| {
        let start = m * morsel_rows;
        let end = ((m + 1) * morsel_rows).min(n);
        let mut out = MorselOut {
            chunk_emits: Vec::with_capacity(par.morsel_chunks),
            data: Vec::new(),
        };
        let mut keys: Vec<i64> = Vec::with_capacity(CHUNK_SIZE);
        let mut local = 0u64;
        for cstart in (start..end).step_by(CHUNK_SIZE) {
            if abort.load(Ordering::Relaxed) {
                // Partial output is discarded once any worker aborts.
                return out;
            }
            let cend = (cstart + CHUNK_SIZE).min(end);
            let before = out.data.len();
            keys.clear();
            keys.extend(
                outer.data[cstart * stride..cend * stride]
                    .iter()
                    .skip(lslot)
                    .step_by(stride)
                    .map(|&r| lcol[r as usize]),
            );
            for (off, &lv) in keys.iter().enumerate() {
                let Some(cands) = table.get(lv) else { continue };
                let i = cstart + off;
                let t = &outer.data[i * stride..(i + 1) * stride];
                if extra.is_empty() {
                    for &row in cands {
                        out.data.extend_from_slice(t);
                        out.data.push(row);
                    }
                    local += cands.len() as u64;
                } else {
                    for &row in cands {
                        if extra
                            .iter()
                            .all(|&(slot, lc, rc)| lc[t[slot] as usize] == rc[row as usize])
                        {
                            out.data.extend_from_slice(t);
                            out.data.push(row);
                            local += 1;
                        }
                    }
                }
                if local >= 4096 {
                    note_emits(local);
                    local = 0;
                    if abort.load(Ordering::Relaxed) {
                        return out;
                    }
                }
            }
            out.chunk_emits
                .push(((out.data.len() - before) / (stride + 1)) as u32);
        }
        note_emits(local);
        out
    });
    if abort.load(Ordering::Relaxed) {
        return Ok(None);
    }

    // Morsel-ordered merge: replay the sequential charge sequence, then
    // append each morsel's output.
    let mut out = Vec::with_capacity(parts.iter().map(|pt| pt.data.len()).sum());
    for (m, part) in parts.iter().enumerate() {
        let start = m * morsel_rows;
        let end = ((m + 1) * morsel_rows).min(n);
        for (ci, cstart) in (start..end).step_by(CHUNK_SIZE).enumerate() {
            let cend = (cstart + CHUNK_SIZE).min(end);
            meter.charge((cend - cstart) as f64 * p.hash_probe)?;
            replay_emits(meter, part.chunk_emits[ci] as usize, p.output_tuple)?;
        }
        out.extend_from_slice(&part.data);
    }
    Ok(Some(out))
}

/// Morsel-parallel nested-loop join. Per-chunk pair charges are known before
/// any work happens, so the reachable chunk prefix under the budget is
/// computed first and only those chunks are executed — a catastrophic NL
/// plan does work proportional to its budget, exactly like the sequential
/// engine. Returns `Ok(None)` to decline (small input or no equi-edges).
pub(crate) fn try_nl_join(
    exec: &Executor<'_>,
    query: &Query,
    outer: &RowSet,
    inner: &RowSet,
    edges: &[JoinEdge],
    meter: &mut WorkMeter,
) -> Result<Option<Vec<u32>>> {
    let par = exec.par;
    let n = outer.len();
    if edges.is_empty() || !exec.par_eligible(n) {
        return Ok(None);
    }
    let p = exec.cost.params;
    let inner_rel = inner.rels[0];
    let inner_len = inner.len() as f64;
    let stride = outer.stride();
    let chunk_count = n.div_ceil(CHUNK_SIZE);

    // Reachable prefix: the first chunk whose cumulative pair charge alone
    // exceeds the budget can never replay its emits (f64 addition of
    // non-negative amounts is monotone, so the pair-only prefix is a lower
    // bound on the replayed spend at each pair charge).
    let pair_charge = |ci: usize| {
        let cstart = ci * CHUNK_SIZE;
        let cend = (cstart + CHUNK_SIZE).min(n);
        (cend - cstart) as f64 * inner_len * p.nl_pair
    };
    let mut reach = chunk_count;
    if meter.budget.is_finite() {
        let mut prefix = meter.spent;
        for ci in 0..chunk_count {
            prefix += pair_charge(ci);
            if prefix > meter.budget {
                reach = ci;
                break;
            }
        }
    }
    let reach_rows = (reach * CHUNK_SIZE).min(n);
    if reach_rows < 2 * par.morsel_rows() {
        // Too little reachable work to amortise the pool; the sequential
        // path does the same bounded work inline.
        return Ok(None);
    }

    // Hoisted outer columns and gathered inner key values, exactly as the
    // sequential chunked path hoists them.
    let lcols: Vec<(usize, &[i64])> = edges
        .iter()
        .map(|e| {
            (
                outer.slot_of(e.left),
                exec.column_slice(query, e.left, e.left_column),
            )
        })
        .collect();
    let ivals: Vec<Vec<i64>> = edges
        .iter()
        .map(|e| {
            let icol = exec.column_slice(query, inner_rel, e.right_column);
            inner.data.iter().map(|&row| icol[row as usize]).collect()
        })
        .collect();

    let morsel_rows = par.morsel_rows();
    let mcount = reach_rows.div_ceil(morsel_rows);
    let parts = run_morsels(par.workers, mcount, |m| {
        let start = m * morsel_rows;
        let end = ((m + 1) * morsel_rows).min(reach_rows);
        let mut out = MorselOut {
            chunk_emits: Vec::with_capacity(par.morsel_chunks),
            data: Vec::new(),
        };
        for cstart in (start..end).step_by(CHUNK_SIZE) {
            let cend = (cstart + CHUNK_SIZE).min(end);
            let before = out.data.len();
            for i in cstart..cend {
                let t = &outer.data[i * stride..(i + 1) * stride];
                match &ivals[..] {
                    // Single equi-join edge: stream the gathered inner keys.
                    [only] => {
                        let (slot, lcol) = lcols[0];
                        let lv = lcol[t[slot] as usize];
                        for (j, &rv) in only.iter().enumerate() {
                            if rv == lv {
                                out.data.extend_from_slice(t);
                                out.data.push(inner.data[j]);
                            }
                        }
                    }
                    _ => {
                        let lvs: Vec<i64> = lcols
                            .iter()
                            .map(|&(slot, lc)| lc[t[slot] as usize])
                            .collect();
                        for (j, &row) in inner.data.iter().enumerate() {
                            if ivals.iter().zip(&lvs).all(|(iv, &lv)| iv[j] == lv) {
                                out.data.extend_from_slice(t);
                                out.data.push(row);
                            }
                        }
                    }
                }
            }
            out.chunk_emits
                .push(((out.data.len() - before) / (stride + 1)) as u32);
        }
        out
    });

    // Replay in chunk order; the post-prefix pair charge is guaranteed to
    // cross the budget, closing out the timeout with exact accounting.
    let mut out = Vec::with_capacity(parts.iter().map(|pt| pt.data.len()).sum());
    for (m, part) in parts.iter().enumerate() {
        let start = m * morsel_rows;
        let end = ((m + 1) * morsel_rows).min(reach_rows);
        for (ci, cstart) in (start..end).step_by(CHUNK_SIZE).enumerate() {
            let chunk_idx = cstart / CHUNK_SIZE;
            debug_assert_eq!(chunk_idx, start / CHUNK_SIZE + ci);
            meter.charge(pair_charge(chunk_idx))?;
            replay_emits(meter, part.chunk_emits[ci] as usize, p.output_tuple)?;
        }
        out.extend_from_slice(&part.data);
    }
    if reach < chunk_count {
        meter.charge(pair_charge(reach))?;
        unreachable!("pair-charge prefix predicted a timeout at chunk {reach}");
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize) -> ParallelConfig {
        ParallelConfig {
            workers,
            morsel_chunks: 1,
            ..ParallelConfig::default()
        }
    }

    #[test]
    fn partitioned_build_preserves_candidate_order() {
        // Keys 0..=7 cycling over 40_000 rows: every candidate list must be
        // ascending (build order), whichever partition or table it lands in.
        let icol: Vec<i64> = (0..40_000).map(|i| i % 8).collect();
        let rows: Vec<u32> = (0..40_000).collect();
        let table = build_partitioned(&rows, &icol, cfg(4));
        for k in 0..8 {
            let cands = table.get(k).expect("key must be present");
            assert_eq!(cands.len(), 5_000);
            assert!(cands.windows(2).all(|w| w[0] < w[1]), "order lost for {k}");
        }
        assert!(table.get(99).is_none());
    }

    #[test]
    fn hot_keys_are_broadcast() {
        // One key owns 40% of the build: it must cross the default 1/64
        // threshold and move to the broadcast table.
        let icol: Vec<i64> = (0..10_000)
            .map(|i| if i % 5 < 2 { 7 } else { 10_000 + i } as i64)
            .collect();
        let rows: Vec<u32> = (0..10_000).collect();
        let table = build_partitioned(&rows, &icol, cfg(2));
        assert!(table.hot_keys() >= 1, "the 40% key must be hot");
        assert_eq!(table.get(7).unwrap().len(), 4_000);
        // Cold keys still resolve through their partition.
        assert_eq!(table.get(10_004).unwrap(), &vec![4u32]);
    }

    #[test]
    fn forced_replication_moves_every_key() {
        let icol: Vec<i64> = (0..5_000).map(|i| i % 100).collect();
        let rows: Vec<u32> = (0..5_000).collect();
        let force = ParallelConfig {
            workers: 2,
            morsel_chunks: 1,
            hot_key_fraction: 0.0,
            hot_key_min: 1,
        };
        let table = build_partitioned(&rows, &icol, force);
        assert_eq!(table.hot_keys(), 100, "threshold 1 broadcasts every key");
        for pmap in &table.parts {
            assert!(pmap.is_empty());
        }
        assert_eq!(table.get(3).unwrap().len(), 50);
    }

    #[test]
    fn replay_matches_batch_charge_sequence() {
        // Replay must reproduce BatchCharge's add(1)* + flush sequence
        // bit-for-bit for counts around the quantum boundary.
        for count in [0usize, 1, 1023, 1024, 1025, 5000] {
            let unit = 0.37;
            let mut a = WorkMeter {
                spent: 1.25,
                budget: f64::INFINITY,
            };
            let mut b = WorkMeter {
                spent: 1.25,
                budget: f64::INFINITY,
            };
            replay_emits(&mut a, count, unit).unwrap();
            let mut emits = crate::exec::BatchCharge::new(unit);
            for _ in 0..count {
                emits.emitted(&mut b).unwrap();
            }
            emits.flush(&mut b).unwrap();
            assert_eq!(a.spent.to_bits(), b.spent.to_bits(), "count={count}");
        }
    }
}
