//! Tier-2 execution: hot plan shapes compiled into fused pipelines.
//!
//! The chunked interpreter ([`crate::exec`]) walks the plan tree on every
//! execution: per-node `match` dispatch, per-join slot lookups
//! (`RowSet::slot_of` is a linear scan), a freshly collected
//! `extra_edge_columns` vector, and full materialisation of every
//! intermediate *and* the final result. For the serving path that is pure
//! overhead — `PlanDoctor` sees the same few plan shapes over and over.
//!
//! [`FusedPipeline::compile`] runs that analysis **once** per shape: it
//! flattens a supported plan into a stage program with every slot, key
//! column and emit layout pre-resolved, and rejects (returns `None`)
//! anything else so the caller falls back to the interpreter. Execution
//! then replays the stages with specialised loops and, in count mode
//! ([`FusedPipeline::execute`]), materialises only the row-id columns later
//! stages actually read — the final join emits nothing at all, it only
//! counts.
//!
//! # Supported shapes
//!
//! Left-deep plans whose joins are [`JoinMethod::Hash`] or index
//! nested-loop, each with at least one equi-edge — exactly the two join
//! flavours the DP expert and the steered optimizer emit on the serving
//! workloads. Leaf access paths (`SeqScan`/`IndexScan`) are unrestricted:
//! leaves delegate to the interpreter's own scan, so the two tiers cannot
//! drift. Everything else — merge joins, non-index nested loops, cross
//! joins, bushy trees — stays the interpreter's job.
//!
//! # Bit-identical metering
//!
//! Latency here is deterministic metered work, and floating-point addition
//! is not associative, so "about the same charges" would change trained
//! behaviour. The pipeline therefore replays the interpreter's exact charge
//! sequence: scan charges from the shared scan implementation, one
//! `rows × hash_build` per build side, one `chunk_rows × hash_probe` per
//! probe chunk, one batched output charge per emitted tuple and a flush per
//! chunk — in the same order, against the same meter. Timeout abort points
//! (the `spent`/`budget` pair in [`foss_common::FossError::Timeout`]) are
//! bit-identical too; the differential proptests in
//! `tests/tiered_equivalence.rs` hold all of this across every workload.
//!
//! This module is on the serving path and must stay panic-free
//! (`foss-lint` enforces the no-`unwrap`/`expect`/`panic!` rule here, as it
//! does for `crates/service`).

use foss_common::{FossError, FxHashMap, Result};
use foss_optimizer::{AccessPath, CostModel, JoinMethod, PhysicalPlan, PlanNode};
use foss_query::Query;

use crate::database::Database;
use crate::exec::{BatchCharge, ExecMode, ExecOutcome, Executor, RowSet, WorkMeter, CHUNK_SIZE};

/// The tier key for `(query, plan)` — see [`PhysicalPlan::shape_key`].
/// Re-exported here so tier callers need only the executor crate.
pub fn shape_key(query: &Query, plan: &PhysicalPlan) -> u64 {
    plan.shape_key(query)
}

/// One leaf read, delegated to the interpreter's scan.
#[derive(Debug, Clone, Copy)]
struct ScanStep {
    rel: usize,
    access: AccessPath,
}

/// An extra (non-key) join condition with its outer slot pre-resolved:
/// `(outer tuple slot, outer rel, outer column, inner column)`.
type ExtraEdge = (usize, usize, usize, usize);

/// Per-stage probe/emit layout: where the key and extra-edge columns live
/// in the incoming tuples, which incoming slots survive into the output,
/// and whether the freshly joined inner row id is appended.
#[derive(Debug, Clone)]
struct EmitView {
    /// Slot of the probe key's outer relation in the incoming layout.
    lslot: usize,
    /// Extra equi-edges resolved against the incoming layout.
    extra: Vec<ExtraEdge>,
    /// Incoming slots copied into each emitted tuple, in output order.
    keep: Vec<usize>,
    /// Whether the inner row id is appended after `keep`.
    keep_inner: bool,
    /// Incoming tuple stride.
    stride_in: usize,
}

impl EmitView {
    fn stride_out(&self) -> usize {
        self.keep.len() + usize::from(self.keep_inner)
    }
}

/// How a stage matches inner rows against the running outer pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageKind {
    /// Scan + build a hash table on the inner key, probe per outer chunk.
    Hash,
    /// Probe the inner table's hash index per outer tuple (the inner is
    /// never scanned; its predicates filter the fetched rows).
    IndexNl,
}

/// One join stage: match the inner relation against the running outer
/// pipeline, by hash build+probe or by index nested-loop fetch.
#[derive(Debug, Clone)]
struct JoinStage {
    kind: StageKind,
    inner: ScanStep,
    /// Outer relation and column of the key edge (`edges[0]`).
    key_left_rel: usize,
    key_left_col: usize,
    /// Inner (build-side) column of the key edge.
    key_right_col: usize,
    /// Layout for row-returning execution: full interpreter tuples.
    full: EmitView,
    /// Layout for count-mode execution: only the slots later stages read
    /// (empty for the last stage — it only counts).
    narrow: EmitView,
}

/// A plan shape compiled to a stage program. Immutable and `Send + Sync`;
/// the service publishes these through its tier cell and reuses one
/// instance across every query instance of the shape.
#[derive(Debug, Clone)]
pub struct FusedPipeline {
    /// [`shape_key`] of the `(query, plan)` this was compiled from. The
    /// caller must only run queries whose shape key matches — the tier
    /// cache keys on it, so this holds by construction.
    shape: u64,
    first: ScanStep,
    stages: Vec<JoinStage>,
    /// Full result layout (relation per slot), for `execute_rows`.
    rels: Vec<usize>,
}

impl FusedPipeline {
    /// Compile `(query, plan)` into a fused pipeline, or `None` when the
    /// shape is unsupported (the caller then uses the interpreter).
    pub fn compile(query: &Query, plan: &PhysicalPlan) -> Option<FusedPipeline> {
        // Flatten the left spine; reject anything not left-deep with
        // hash or index-NL joins throughout.
        let mut joins: Vec<(&PlanNode, &PlanNode)> = Vec::new();
        let mut node: &PlanNode = &plan.root;
        let first = loop {
            match node {
                PlanNode::Scan {
                    relation, access, ..
                } => {
                    break ScanStep {
                        rel: *relation,
                        access: *access,
                    }
                }
                PlanNode::Join {
                    method,
                    left,
                    right,
                    edges,
                    index_nl,
                    ..
                } => {
                    let fusable = *index_nl || *method == JoinMethod::Hash;
                    if !fusable || edges.is_empty() {
                        return None;
                    }
                    joins.push((node, right.as_ref()));
                    node = left.as_ref();
                }
            }
        };
        joins.reverse();

        // Resolve slots against the growing full layout; relations must be
        // distinct for slot resolution to be unambiguous.
        let mut layout = vec![first.rel];
        let mut stages = Vec::with_capacity(joins.len());
        for (join, right) in &joins {
            let PlanNode::Scan {
                relation, access, ..
            } = **right
            else {
                return None;
            };
            let PlanNode::Join {
                edges, index_nl, ..
            } = *join
            else {
                return None;
            };
            let kind = if *index_nl {
                StageKind::IndexNl
            } else {
                StageKind::Hash
            };
            if layout.contains(&relation) {
                return None;
            }
            let key = edges[0];
            if key.right != relation {
                return None;
            }
            let lslot = layout.iter().position(|&r| r == key.left)?;
            let mut extra = Vec::with_capacity(edges.len().saturating_sub(1));
            for e in &edges[1..] {
                if e.right != relation {
                    return None;
                }
                let slot = layout.iter().position(|&r| r == e.left)?;
                extra.push((slot, e.left, e.left_column, e.right_column));
            }
            stages.push((
                kind,
                ScanStep {
                    rel: relation,
                    access,
                },
                key,
                lslot,
                extra,
                layout.clone(),
            ));
            layout.push(relation);
        }

        // Liveness for count mode: after stage i, keep only the relations
        // later stages' keys and extra edges read (the last stage keeps
        // nothing — it only counts matches).
        let k = stages.len();
        let mut live_after: Vec<Vec<usize>> = vec![Vec::new(); k];
        for i in (0..k.saturating_sub(1)).rev() {
            let mut live = live_after[i + 1].clone();
            let (_, _, key, _, extra, _) = &stages[i + 1];
            for rel in std::iter::once(key.left).chain(extra.iter().map(|e| e.1)) {
                if !live.contains(&rel) {
                    live.push(rel);
                }
            }
            live_after[i] = live;
        }

        let mut compiled = Vec::with_capacity(k);
        let mut narrow_in = vec![first.rel];
        for (i, (kind, inner, key, lslot_full, extra_full, full_in)) in stages.iter().enumerate() {
            let full = EmitView {
                lslot: *lslot_full,
                extra: extra_full.clone(),
                keep: (0..full_in.len()).collect(),
                keep_inner: true,
                stride_in: full_in.len(),
            };
            let npos = |rel: usize| narrow_in.iter().position(|&r| r == rel);
            // The narrow output preserves full-layout order.
            let narrow_out: Vec<usize> = full_in
                .iter()
                .copied()
                .chain(std::iter::once(inner.rel))
                .filter(|r| live_after[i].contains(r))
                .collect();
            let mut keep = Vec::with_capacity(narrow_out.len());
            let mut keep_inner = false;
            for &rel in &narrow_out {
                if rel == inner.rel {
                    keep_inner = true;
                } else {
                    keep.push(npos(rel)?);
                }
            }
            let narrow = EmitView {
                lslot: npos(key.left)?,
                extra: extra_full
                    .iter()
                    .map(|&(_, lrel, lcol, rcol)| npos(lrel).map(|s| (s, lrel, lcol, rcol)))
                    .collect::<Option<Vec<_>>>()?,
                keep,
                keep_inner,
                stride_in: narrow_in.len(),
            };
            narrow_in = narrow_out;
            compiled.push(JoinStage {
                kind: *kind,
                inner: *inner,
                key_left_rel: key.left,
                key_left_col: key.left_column,
                key_right_col: key.right_column,
                full,
                narrow,
            });
        }

        Some(FusedPipeline {
            shape: shape_key(query, plan),
            first,
            stages: compiled,
            rels: layout,
        })
    }

    /// The [`shape_key`] this pipeline was compiled for.
    pub fn shape(&self) -> u64 {
        self.shape
    }

    /// Execute in count mode: identical charges, row count and timeout
    /// accounting as the interpreter, but intermediate tuples carry only
    /// live slots and the final join materialises nothing.
    pub fn execute(
        &self,
        db: &Database,
        cost: CostModel,
        query: &Query,
        budget: Option<f64>,
    ) -> Result<ExecOutcome> {
        self.run(db, cost, query, budget, false).map(|(out, _)| out)
    }

    /// Execute and materialise the full result tuples (differential-test
    /// mode; the interpreter's `execute_rows` must agree bit-for-bit).
    pub fn execute_rows(
        &self,
        db: &Database,
        cost: CostModel,
        query: &Query,
        budget: Option<f64>,
    ) -> Result<(ExecOutcome, RowSet)> {
        self.run(db, cost, query, budget, true).map(|(out, rows)| {
            (
                out,
                rows.unwrap_or_else(|| RowSet::bare(Vec::new(), Vec::new())),
            )
        })
    }

    fn run(
        &self,
        db: &Database,
        cost: CostModel,
        query: &Query,
        budget: Option<f64>,
        want_rows: bool,
    ) -> Result<(ExecOutcome, Option<RowSet>)> {
        let mut meter = WorkMeter {
            spent: 0.0,
            budget: budget.unwrap_or(f64::INFINITY),
        };
        // Leaf scans share the interpreter's implementation (and therefore
        // its charges) exactly; the fused win lives in the join chain.
        let exec = Executor::with_mode(db, cost, ExecMode::Chunked);
        let p = cost.params;

        let mut current: Vec<u32> =
            exec.exec_scan(query, self.first.rel, &self.first.access, &mut meter)?;
        let mut final_count = current.len() as u64;

        for (si, stage) in self.stages.iter().enumerate() {
            let view = if want_rows {
                &stage.full
            } else {
                &stage.narrow
            };
            let count_only = !want_rows && si + 1 == self.stages.len();
            let lcol = exec.column_slice(query, stage.key_left_rel, stage.key_left_col);
            let extra: Vec<(usize, &[i64], &[i64])> = view
                .extra
                .iter()
                .map(|&(slot, lrel, lc, rc)| {
                    (
                        slot,
                        exec.column_slice(query, lrel, lc),
                        exec.column_slice(query, stage.inner.rel, rc),
                    )
                })
                .collect();

            let stride = view.stride_in.max(1);
            let n = current.len() / stride;
            let mut out: Vec<u32> = Vec::new();
            let mut count: u64 = 0;
            let mut emits = BatchCharge::new(p.output_tuple);

            match stage.kind {
                StageKind::Hash => {
                    let inner_rows =
                        exec.exec_scan(query, stage.inner.rel, &stage.inner.access, &mut meter)?;
                    meter.charge(inner_rows.len() as f64 * p.hash_build)?;
                    let icol = exec.column_slice(query, stage.inner.rel, stage.key_right_col);
                    let mut table: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
                    for &row in &inner_rows {
                        table.entry(icol[row as usize]).or_default().push(row);
                    }
                    drop(inner_rows);

                    let mut keys: Vec<i64> = Vec::with_capacity(CHUNK_SIZE);
                    for start in (0..n).step_by(CHUNK_SIZE) {
                        let end = (start + CHUNK_SIZE).min(n);
                        meter.charge((end - start) as f64 * p.hash_probe)?;
                        keys.clear();
                        keys.extend(
                            current[start * stride..end * stride]
                                .iter()
                                .skip(view.lslot)
                                .step_by(stride)
                                .map(|&r| lcol[r as usize]),
                        );
                        for (off, lv) in keys.iter().enumerate() {
                            let Some(cands) = table.get(lv) else { continue };
                            let i = start + off;
                            let t = &current[i * stride..(i + 1) * stride];
                            for &row in cands {
                                if !extra
                                    .iter()
                                    .all(|&(slot, lc, rc)| lc[t[slot] as usize] == rc[row as usize])
                                {
                                    continue;
                                }
                                if count_only {
                                    count += 1;
                                } else {
                                    for &kslot in &view.keep {
                                        out.push(t[kslot]);
                                    }
                                    if view.keep_inner {
                                        out.push(row);
                                    }
                                }
                                emits.emitted(&mut meter)?;
                            }
                        }
                        emits.flush(&mut meter)?;
                    }
                }
                StageKind::IndexNl => {
                    // The inner is never scanned: rows come out of its hash
                    // index per outer tuple, with the relation's predicates
                    // filtering each fetch — charge-for-charge the
                    // interpreter's `index_nl_join`.
                    let relation = &query.relations[stage.inner.rel];
                    let table = db.table(relation.table);
                    let index = table.hash_index(stage.key_right_col).ok_or_else(|| {
                        FossError::InvalidPlan(format!(
                            "index nested loop on unindexed column {}",
                            stage.key_right_col
                        ))
                    })?;
                    let descent = p.index_probe + 0.3 * (table.row_count() as f64).max(2.0).log2();
                    let preds = &relation.predicates;
                    let pcols: Vec<&[i64]> = preds
                        .iter()
                        .map(|pr| table.column(pr.column()).values())
                        .collect();
                    let mut fetches =
                        BatchCharge::new(p.index_fetch + p.pred_eval * preds.len() as f64);
                    for start in (0..n).step_by(CHUNK_SIZE) {
                        let end = (start + CHUNK_SIZE).min(n);
                        meter.charge((end - start) as f64 * descent)?;
                        for i in start..end {
                            let t = &current[i * stride..(i + 1) * stride];
                            let lv = lcol[t[view.lslot] as usize];
                            let fetched = index.lookup(lv);
                            fetches.add(fetched.len(), &mut meter)?;
                            'fetch: for &row in fetched {
                                for (pr, col) in preds.iter().zip(&pcols) {
                                    if !pr.matches(col[row as usize]) {
                                        continue 'fetch;
                                    }
                                }
                                if !extra
                                    .iter()
                                    .all(|&(slot, lc, rc)| lc[t[slot] as usize] == rc[row as usize])
                                {
                                    continue;
                                }
                                if count_only {
                                    count += 1;
                                } else {
                                    for &kslot in &view.keep {
                                        out.push(t[kslot]);
                                    }
                                    if view.keep_inner {
                                        out.push(row);
                                    }
                                }
                                emits.emitted(&mut meter)?;
                            }
                        }
                        fetches.flush(&mut meter)?;
                        emits.flush(&mut meter)?;
                    }
                }
            }

            if count_only {
                final_count = count;
            } else {
                final_count = (out.len() / view.stride_out().max(1)) as u64;
                current = out;
            }
        }

        let rows = want_rows.then(|| {
            let mut rows = RowSet::bare(self.rels.clone(), current);
            rows.proj = query.projection();
            rows
        });
        Ok((
            ExecOutcome {
                latency: meter.spent,
                rows: final_count,
            },
            rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foss_catalog::{ColumnDef, Schema, TableDef};
    use foss_common::QueryId;
    use foss_optimizer::{CardinalityEstimator, Icp, TraditionalOptimizer};
    use foss_query::{Predicate, QueryBuilder};
    use foss_storage::{Column, Table};
    use std::sync::Arc;

    /// Three chained tables with predicates and duplicate-heavy join keys,
    /// so hash fan-out, chunked emission and filtering are all exercised.
    fn setup() -> (Database, TraditionalOptimizer, Query) {
        let mut schema = Schema::new();
        for name in ["a", "b", "c"] {
            schema
                .add_table(TableDef {
                    name: name.into(),
                    columns: vec![ColumnDef::indexed("k"), ColumnDef::plain("v")],
                })
                .unwrap();
        }
        let schema = Arc::new(schema);
        let col = |rows: usize, modk: i64, shift: i64| {
            Column::new((0..rows as i64).map(|i| (i * 7 + shift) % modk).collect())
        };
        let mk = |name: &str, rows: usize, shift: i64| {
            Table::new(
                name,
                vec![
                    ("k".into(), col(rows, 16, shift)),
                    ("v".into(), col(rows, 8, shift + 3)),
                ],
            )
            .unwrap()
        };
        let db = Database::new(
            schema.clone(),
            vec![mk("a", 600, 0), mk("b", 400, 5), mk("c", 500, 2)],
            8,
        )
        .unwrap();
        let opt = TraditionalOptimizer::new(
            schema.clone(),
            CardinalityEstimator::new(db.stats_vec()),
            CostModel::default(),
        );
        let mut qb = QueryBuilder::new(QueryId::new(7), 0);
        let ra = qb.relation(schema.table_id("a").unwrap(), "a");
        let rb = qb.relation(schema.table_id("b").unwrap(), "b");
        let rc = qb.relation(schema.table_id("c").unwrap(), "c");
        qb.predicate(
            ra,
            Predicate::Range {
                column: 1,
                lo: 0,
                hi: 5,
            },
        );
        qb.predicate(
            rc,
            Predicate::Eq {
                column: 1,
                value: 3,
            },
        );
        qb.join(ra, 0, rb, 0);
        qb.join(rb, 0, rc, 0);
        let q = qb.build(&schema).unwrap();
        (db, opt, q)
    }

    fn all_hash_plan(opt: &TraditionalOptimizer, query: &Query) -> PhysicalPlan {
        let icp = Icp::new(
            (0..query.relation_count()).collect(),
            vec![JoinMethod::Hash; query.relation_count() - 1],
        )
        .unwrap();
        opt.optimize_with_hint(query, &icp).unwrap()
    }

    #[test]
    fn fused_matches_interpreter_exactly() {
        let (db, opt, query) = setup();
        let plan = all_hash_plan(&opt, &query);
        let fused = FusedPipeline::compile(&query, &plan).expect("all-hash left-deep compiles");
        let exec = Executor::new(&db, *opt.cost_model());
        let (io, irows) = exec.execute_rows(&query, &plan, None).unwrap();
        assert!(io.rows > 0, "fixture must produce tuples");
        let (fo, frows) = fused
            .execute_rows(&db, *opt.cost_model(), &query, None)
            .unwrap();
        assert_eq!(io.rows, fo.rows);
        assert_eq!(
            io.latency.to_bits(),
            fo.latency.to_bits(),
            "latency must be bit-identical"
        );
        assert_eq!(irows, frows, "tuples and order must match");
        // Count mode agrees with rows mode on outcome bits.
        let co = fused.execute(&db, *opt.cost_model(), &query, None).unwrap();
        assert_eq!(co, fo);
    }

    #[test]
    fn fused_timeout_accounting_is_bit_identical() {
        let (db, opt, query) = setup();
        let plan = all_hash_plan(&opt, &query);
        let fused = FusedPipeline::compile(&query, &plan).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let full = exec.execute(&query, &plan, None).unwrap().latency;
        for frac in [0.1, 0.45, 0.8, 0.99] {
            let budget = full * frac;
            let a = exec.execute(&query, &plan, Some(budget));
            let b = fused.execute(&db, *opt.cost_model(), &query, Some(budget));
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(ea), Err(eb)) => assert_eq!(
                    format!("{ea:?}"),
                    format!("{eb:?}"),
                    "abort points must agree at budget {budget}"
                ),
                (a, b) => panic!("tier disagreement at {budget}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn unsupported_shapes_decline_to_compile() {
        let (_db, opt, query) = setup();
        let hash = all_hash_plan(&opt, &query);
        assert!(FusedPipeline::compile(&query, &hash).is_some());
        let icp = Icp::new(
            (0..query.relation_count()).collect(),
            vec![JoinMethod::Merge; query.relation_count() - 1],
        )
        .unwrap();
        let merge = opt.optimize_with_hint(&query, &icp).unwrap();
        assert!(
            FusedPipeline::compile(&query, &merge).is_none(),
            "merge joins must fall back to the interpreter"
        );
        // A plain (non-index) nested loop declines; flipping the same node
        // to index-NL compiles — the flag is what the tier keys on.
        let mut plan = hash.clone();
        let PlanNode::Join {
            method, index_nl, ..
        } = &mut plan.root
        else {
            panic!("fixture root must be a join")
        };
        *method = JoinMethod::NestLoop;
        *index_nl = false;
        assert!(
            FusedPipeline::compile(&query, &plan).is_none(),
            "non-index nested loop must fall back to the interpreter"
        );
        let PlanNode::Join { index_nl, .. } = &mut plan.root else {
            panic!("fixture root must be a join")
        };
        *index_nl = true;
        assert!(
            FusedPipeline::compile(&query, &plan).is_some(),
            "index nested loop is a supported tier-2 shape"
        );
    }

    #[test]
    fn fused_index_nl_matches_interpreter_exactly() {
        let (db, opt, query) = setup();
        // The fixture's join keys are indexed, so a NestLoop hint completes
        // to index nested loops — the shape real serving traffic produces.
        let icp = Icp::new(
            (0..query.relation_count()).collect(),
            vec![JoinMethod::NestLoop; query.relation_count() - 1],
        )
        .unwrap();
        let plan = opt.optimize_with_hint(&query, &icp).unwrap();
        let has_inl = format!("{plan:?}").contains("index_nl: true");
        assert!(has_inl, "fixture hinted plan must use index-NL: {plan:?}");
        let fused = FusedPipeline::compile(&query, &plan).expect("index-NL spine compiles");
        let exec = Executor::new(&db, *opt.cost_model());
        let (io, irows) = exec.execute_rows(&query, &plan, None).unwrap();
        assert!(io.rows > 0, "fixture must produce tuples");
        let (fo, frows) = fused
            .execute_rows(&db, *opt.cost_model(), &query, None)
            .unwrap();
        assert_eq!(io.rows, fo.rows);
        assert_eq!(
            io.latency.to_bits(),
            fo.latency.to_bits(),
            "latency must be bit-identical"
        );
        assert_eq!(irows, frows, "tuples and order must match");
        let co = fused.execute(&db, *opt.cost_model(), &query, None).unwrap();
        assert_eq!(co, fo);
        // Timeout abort points agree bit-for-bit across the tiers.
        for frac in [0.1, 0.45, 0.8, 0.99] {
            let budget = io.latency * frac;
            let a = exec.execute(&query, &plan, Some(budget));
            let b = fused.execute(&db, *opt.cost_model(), &query, Some(budget));
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(ea), Err(eb)) => assert_eq!(
                    format!("{ea:?}"),
                    format!("{eb:?}"),
                    "abort points must agree at budget {budget}"
                ),
                (a, b) => panic!("tier disagreement at {budget}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn scan_only_plan_compiles_and_counts() {
        let (db, opt, query) = setup();
        // A bare scan of relation 0 (with its Range predicate).
        let plan = PhysicalPlan {
            root: PlanNode::Scan {
                relation: 0,
                access: AccessPath::SeqScan,
                est_rows: 1.0,
                est_cost: 1.0,
            },
        };
        let fused = FusedPipeline::compile(&query, &plan).unwrap();
        let exec = Executor::new(&db, *opt.cost_model());
        let (io, irows) = exec.execute_rows(&query, &plan, None).unwrap();
        let (fo, frows) = fused
            .execute_rows(&db, *opt.cost_model(), &query, None)
            .unwrap();
        assert_eq!(
            (io.rows, io.latency.to_bits()),
            (fo.rows, fo.latency.to_bits())
        );
        assert_eq!(irows, frows);
        assert_eq!(
            fused.execute(&db, *opt.cost_model(), &query, None).unwrap(),
            fo
        );
    }

    #[test]
    fn shape_key_is_the_plan_shape_key() {
        let (_db, opt, query) = setup();
        let plan = all_hash_plan(&opt, &query);
        assert_eq!(shape_key(&query, &plan), plan.shape_key(&query));
        let fused = FusedPipeline::compile(&query, &plan).unwrap();
        assert_eq!(fused.shape(), plan.shape_key(&query));
    }
}
